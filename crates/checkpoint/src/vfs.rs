//! The virtual filesystem every checkpoint/report byte flows through.
//!
//! This module is the **only** place in the workspace allowed to call
//! `std::fs` (lint rule D13 enforces it; tests are exempt). Routing all
//! durable I/O through one trait buys two things:
//!
//! * **A real fsync contract.** [`RealVfs::write_atomic`] is
//!   write-tmp → fsync file → rename → fsync directory, so once it
//!   returns `Ok` the bytes survive power loss — not just process death.
//! * **A deterministic fault domain.** [`FaultVfs`] wraps the real thing
//!   and injects torn writes, short writes, bit-rot, `ENOSPC` and rename
//!   failures from a dedicated registered RNG stream
//!   (`("checkpoint", "disk")` in `STREAM_REGISTRY`), exactly the way
//!   `simnet::fault` injects network faults. A campaign run under
//!   `--disk-fault torn` damages its own checkpoint chain on a schedule
//!   that replays bit-identically — which is what lets the crash-storm
//!   suite prove chain recovery rebuilds the same report bytes.
//!
//! The fault order on a write is fixed (`no-space`, `torn-write`,
//! `short-write`, `rename-fail`) and each kind with a zero rate consumes
//! no RNG draws, so the `calm` profile is byte-identical to using
//! [`RealVfs`] directly.

use crate::error::CheckpointError;
use chatlens_simnet::fault::{DiskFaultKind, DiskFaultRates};
use chatlens_simnet::rng::Rng;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// The filesystem surface checkpoint and report code is allowed to use.
///
/// Implementations take `&mut self` because the faulty implementation
/// advances an RNG; callers thread one `Vfs` through a whole save/load
/// sequence so the injection schedule is a deterministic function of the
/// operation order.
pub trait Vfs {
    /// Read a whole file.
    fn read(&mut self, path: &Path) -> Result<Vec<u8>, CheckpointError>;

    /// Write a whole file durably and atomically: the bytes land under a
    /// `.tmp` sibling first, are fsynced, renamed into place, and the
    /// parent directory is fsynced. `Ok` means the file survives a crash
    /// *and* a power cut — except under injected faults, where a torn
    /// write may lie (that is the point of the fault model).
    fn write_atomic(&mut self, path: &Path, bytes: &[u8]) -> Result<(), CheckpointError>;

    /// Create a directory and all missing ancestors.
    fn create_dir_all(&mut self, dir: &Path) -> Result<(), CheckpointError>;

    /// Rename `from` to `to` (same filesystem).
    fn rename(&mut self, from: &Path, to: &Path) -> Result<(), CheckpointError>;

    /// Delete a file.
    fn remove_file(&mut self, path: &Path) -> Result<(), CheckpointError>;

    /// List the entries of a directory, sorted by path (deterministic
    /// regardless of readdir order).
    fn list_dir(&mut self, dir: &Path) -> Result<Vec<PathBuf>, CheckpointError>;

    /// Whether a path exists.
    fn exists(&mut self, path: &Path) -> bool;
}

fn io_err(path: &Path, e: std::io::Error) -> CheckpointError {
    CheckpointError::Io(format!("{}: {e}", path.display()))
}

/// The `.tmp` sibling a [`Vfs::write_atomic`] stages its bytes under.
pub fn tmp_sibling(path: &Path) -> PathBuf {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    PathBuf::from(tmp)
}

/// The production filesystem: real `std::fs`, full fsync discipline.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealVfs;

impl RealVfs {
    /// Fsync a directory so a rename inside it is durable. On non-Unix
    /// platforms directory handles cannot be fsynced; the rename itself
    /// is still atomic there.
    fn sync_dir(dir: &Path) -> Result<(), CheckpointError> {
        #[cfg(unix)]
        {
            let d = std::fs::File::open(dir).map_err(|e| io_err(dir, e))?;
            d.sync_all().map_err(|e| io_err(dir, e))?;
        }
        #[cfg(not(unix))]
        let _ = dir;
        Ok(())
    }

    /// Stage `bytes` under the `.tmp` sibling and fsync it, without the
    /// final rename. Shared by the real and faulty write paths.
    fn stage_tmp(path: &Path, bytes: &[u8]) -> Result<PathBuf, CheckpointError> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(|e| io_err(parent, e))?;
            }
        }
        let tmp = tmp_sibling(path);
        let mut f = std::fs::File::create(&tmp).map_err(|e| io_err(&tmp, e))?;
        f.write_all(bytes).map_err(|e| io_err(&tmp, e))?;
        f.sync_all().map_err(|e| io_err(&tmp, e))?;
        Ok(tmp)
    }
}

impl Vfs for RealVfs {
    fn read(&mut self, path: &Path) -> Result<Vec<u8>, CheckpointError> {
        std::fs::read(path).map_err(|e| io_err(path, e))
    }

    fn write_atomic(&mut self, path: &Path, bytes: &[u8]) -> Result<(), CheckpointError> {
        let tmp = RealVfs::stage_tmp(path, bytes)?;
        std::fs::rename(&tmp, path).map_err(|e| io_err(path, e))?;
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                RealVfs::sync_dir(parent)?;
            }
        }
        Ok(())
    }

    fn create_dir_all(&mut self, dir: &Path) -> Result<(), CheckpointError> {
        std::fs::create_dir_all(dir).map_err(|e| io_err(dir, e))
    }

    fn rename(&mut self, from: &Path, to: &Path) -> Result<(), CheckpointError> {
        std::fs::rename(from, to).map_err(|e| io_err(from, e))
    }

    fn remove_file(&mut self, path: &Path) -> Result<(), CheckpointError> {
        std::fs::remove_file(path).map_err(|e| io_err(path, e))
    }

    fn list_dir(&mut self, dir: &Path) -> Result<Vec<PathBuf>, CheckpointError> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(dir).map_err(|e| io_err(dir, e))? {
            out.push(entry.map_err(|e| io_err(dir, e))?.path());
        }
        out.sort();
        Ok(out)
    }

    fn exists(&mut self, path: &Path) -> bool {
        path.exists()
    }
}

/// A deterministic storm of storage faults over the real filesystem.
///
/// Every injected fault is recorded in [`FaultVfs::injected`] so tests
/// (and the crash-storm suite) can reconcile the damage against what the
/// recovery ledger later reports.
#[derive(Debug)]
pub struct FaultVfs {
    real: RealVfs,
    rng: Rng,
    rates: DiskFaultRates,
    injected: Vec<(DiskFaultKind, PathBuf)>,
}

impl FaultVfs {
    /// Build the fault domain from a campaign seed and an injection-rate
    /// schedule. The RNG is the registered `("checkpoint", "disk")`
    /// stream forked off the campaign seed, so the same `(seed, rates)`
    /// always damages the same operations.
    pub fn new(seed: u64, rates: DiskFaultRates) -> FaultVfs {
        FaultVfs {
            real: RealVfs,
            rng: Rng::new(seed).fork("disk"),
            rates,
            injected: Vec::new(),
        }
    }

    /// Every fault injected so far, in operation order.
    pub fn injected(&self) -> &[(DiskFaultKind, PathBuf)] {
        &self.injected
    }

    /// One conditional draw: a zero rate consumes nothing.
    fn roll(&mut self, rate: f64) -> bool {
        rate > 0.0 && self.rng.chance(rate)
    }
}

impl Vfs for FaultVfs {
    fn read(&mut self, path: &Path) -> Result<Vec<u8>, CheckpointError> {
        let mut bytes = self.real.read(path)?;
        if !bytes.is_empty() && self.roll(self.rates.bit_rot) {
            let bit = self.rng.below(bytes.len() as u64 * 8) as usize;
            bytes[bit / 8] ^= 1 << (bit % 8);
            self.injected.push((DiskFaultKind::BitRot, path.into()));
        }
        Ok(bytes)
    }

    fn write_atomic(&mut self, path: &Path, bytes: &[u8]) -> Result<(), CheckpointError> {
        if self.roll(self.rates.no_space) {
            self.injected.push((DiskFaultKind::NoSpace, path.into()));
            return Err(CheckpointError::Io(format!(
                "{}: injected ENOSPC (no space left on device)",
                path.display()
            )));
        }
        if self.roll(self.rates.torn_write) {
            // The crash-between-write-and-rename: the tmp sibling lands,
            // the destination never appears — and the caller is told the
            // save succeeded, because that is what a machine that loses
            // power after acking the write would have believed.
            RealVfs::stage_tmp(path, bytes)?;
            self.injected.push((DiskFaultKind::TornWrite, path.into()));
            return Ok(());
        }
        if self.roll(self.rates.short_write) {
            let cut = self.rng.below(bytes.len().max(1) as u64) as usize;
            self.real.write_atomic(path, &bytes[..cut])?;
            self.injected.push((DiskFaultKind::ShortWrite, path.into()));
            return Ok(());
        }
        if self.roll(self.rates.rename_fail) {
            RealVfs::stage_tmp(path, bytes)?;
            self.injected.push((DiskFaultKind::RenameFail, path.into()));
            return Err(CheckpointError::Io(format!(
                "{}: injected rename failure (tmp staged, destination untouched)",
                path.display()
            )));
        }
        self.real.write_atomic(path, bytes)
    }

    fn create_dir_all(&mut self, dir: &Path) -> Result<(), CheckpointError> {
        self.real.create_dir_all(dir)
    }

    fn rename(&mut self, from: &Path, to: &Path) -> Result<(), CheckpointError> {
        self.real.rename(from, to)
    }

    fn remove_file(&mut self, path: &Path) -> Result<(), CheckpointError> {
        self.real.remove_file(path)
    }

    fn list_dir(&mut self, dir: &Path) -> Result<Vec<PathBuf>, CheckpointError> {
        self.real.list_dir(dir)
    }

    fn exists(&mut self, path: &Path) -> bool {
        self.real.exists(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("chatlens-vfs-{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn real_vfs_round_trips_and_leaves_no_tmp() {
        let dir = scratch("real");
        let path = dir.join("nested").join("file.bin");
        let mut vfs = RealVfs;
        vfs.write_atomic(&path, b"hello disk").unwrap();
        assert_eq!(vfs.read(&path).unwrap(), b"hello disk");
        assert!(!vfs.exists(&tmp_sibling(&path)));
        assert_eq!(vfs.list_dir(path.parent().unwrap()).unwrap(), vec![path]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn calm_fault_vfs_is_byte_identical_to_real_and_draws_nothing() {
        let dir = scratch("calm");
        let path = dir.join("file.bin");
        let mut vfs = FaultVfs::new(11, DiskFaultRates::none());
        let rng_before = format!("{:?}", vfs.rng);
        vfs.write_atomic(&path, b"payload").unwrap();
        assert_eq!(vfs.read(&path).unwrap(), b"payload");
        assert_eq!(format!("{:?}", vfs.rng), rng_before, "calm must not draw");
        assert!(vfs.injected().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_write_stages_tmp_lies_ok_and_never_lands() {
        let dir = scratch("torn");
        let path = dir.join("file.bin");
        let mut vfs = FaultVfs::new(
            0,
            DiskFaultRates {
                torn_write: 1.0,
                ..DiskFaultRates::none()
            },
        );
        assert!(
            vfs.write_atomic(&path, b"doomed").is_ok(),
            "torn writes lie"
        );
        assert!(!vfs.exists(&path), "destination must never appear");
        assert!(
            vfs.exists(&tmp_sibling(&path)),
            "tmp sibling is the evidence"
        );
        assert_eq!(vfs.injected(), &[(DiskFaultKind::TornWrite, path)]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn short_write_truncates_the_destination() {
        let dir = scratch("short");
        let path = dir.join("file.bin");
        let mut vfs = FaultVfs::new(
            3,
            DiskFaultRates {
                short_write: 1.0,
                ..DiskFaultRates::none()
            },
        );
        vfs.write_atomic(&path, b"0123456789").unwrap();
        let got = vfs.read(&path).unwrap();
        assert!(got.len() < 10, "short write must truncate");
        assert_eq!(got, b"0123456789"[..got.len()]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn no_space_fails_before_any_mutation() {
        let dir = scratch("nospace");
        let path = dir.join("file.bin");
        let mut vfs = FaultVfs::new(
            0,
            DiskFaultRates {
                no_space: 1.0,
                ..DiskFaultRates::none()
            },
        );
        assert!(matches!(
            vfs.write_atomic(&path, b"x"),
            Err(CheckpointError::Io(_))
        ));
        assert!(!vfs.exists(&path));
        assert!(!vfs.exists(&tmp_sibling(&path)));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rename_fail_stages_tmp_and_reports() {
        let dir = scratch("renamefail");
        let path = dir.join("file.bin");
        let mut vfs = FaultVfs::new(
            0,
            DiskFaultRates {
                rename_fail: 1.0,
                ..DiskFaultRates::none()
            },
        );
        assert!(matches!(
            vfs.write_atomic(&path, b"x"),
            Err(CheckpointError::Io(_))
        ));
        assert!(!vfs.exists(&path));
        assert!(vfs.exists(&tmp_sibling(&path)));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_rot_flips_exactly_one_bit_deterministically() {
        let dir = scratch("bitrot");
        let path = dir.join("file.bin");
        RealVfs.write_atomic(&path, &[0u8; 64]).unwrap();
        let rates = DiskFaultRates {
            bit_rot: 1.0,
            ..DiskFaultRates::none()
        };
        let a = FaultVfs::new(9, rates).read(&path).unwrap();
        let b = FaultVfs::new(9, rates).read(&path).unwrap();
        assert_eq!(a, b, "same seed, same rot");
        let flipped: u32 = a.iter().map(|byte| byte.count_ones()).sum();
        assert_eq!(flipped, 1, "exactly one bit flips");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fault_sequence_is_a_pure_function_of_seed_and_rates() {
        let dir = scratch("determinism");
        let rates = chatlens_simnet::fault::DiskFaultProfile::Torn.rates();
        let mut runs = Vec::new();
        for run in 0..2 {
            let sub = dir.join(format!("run{run}"));
            std::fs::create_dir_all(&sub).unwrap();
            let mut vfs = FaultVfs::new(77, rates);
            for i in 0..40 {
                let _ = vfs.write_atomic(&sub.join(format!("f{i:02}")), &[i; 16]);
            }
            let kinds: Vec<_> = vfs.injected().iter().map(|(k, _)| *k).collect();
            assert!(!kinds.is_empty(), "torn profile must injure something");
            runs.push(kinds);
        }
        assert_eq!(runs[0], runs[1]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
