//! The byte codec: [`Writer`], bounds-checked [`Reader`], and the
//! [`Persist`] trait with impls for the primitive and standard types
//! snapshots are built from.
//!
//! Design rules:
//!
//! * Multi-byte integers are canonical LEB128 varints (`u16`/`u32`/`u64`/
//!   `usize` direct, `i32`/`i64` zigzag-mapped first); `u8` stays a raw
//!   byte and `f64` is its fixed 8-byte IEEE-754 bit pattern
//!   (`to_bits`/`from_bits`), so floating state round-trips exactly.
//!   Varints are the format-v5 change: most persisted values (lengths,
//!   day numbers, counters, sizes) are small, so snapshots shrink.
//!   Decoding rejects non-canonical (overlong) varints, keeping the
//!   codec bijective: equal values always encode to equal bytes.
//! * Length prefixes are varints and are validated against the remaining
//!   input *before* any allocation — a corrupt length cannot trigger a
//!   huge `Vec::with_capacity`.
//! * Enums encode as a `u8` index into a stable variant order; unknown
//!   tags decode to [`CheckpointError::Malformed`].
//! * Decoding never panics on bad input; every failure is a
//!   [`CheckpointError`].

use crate::error::CheckpointError;
use std::collections::BTreeMap;

/// Append-only byte sink for encoding.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// Consume the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append raw bytes.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a LEB128 varint: seven value bits per byte, low bits first,
    /// high bit set on every byte except the last. The encoding is
    /// minimal-length by construction, so it is canonical.
    pub fn put_varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }
}

/// Bounds-checked cursor over encoded bytes.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Consume exactly `n` bytes, or fail with `Truncated`.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        if n > self.remaining() {
            return Err(CheckpointError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Consume one byte.
    pub fn get_u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    /// Consume a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CheckpointError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4-byte slice")))
    }

    /// Consume a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CheckpointError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    /// Consume a LEB128 varint, rejecting overlong encodings so that
    /// decode(encode(v)) consumes exactly the bytes encode wrote and no
    /// other byte sequence decodes to the same value.
    pub fn get_varint(&mut self) -> Result<u64, CheckpointError> {
        let mut value: u64 = 0;
        for i in 0..10u32 {
            let byte = self.get_u8()?;
            // The 10th byte carries bit 63 only; anything above overflows.
            if i == 9 && byte > 0x01 {
                return Err(CheckpointError::Malformed("varint overflows u64".into()));
            }
            value |= u64::from(byte & 0x7f) << (7 * i);
            if byte & 0x80 == 0 {
                if i > 0 && byte == 0 {
                    return Err(CheckpointError::Malformed(
                        "non-canonical varint (overlong encoding)".into(),
                    ));
                }
                return Ok(value);
            }
        }
        Err(CheckpointError::Malformed(
            "varint longer than 10 bytes".into(),
        ))
    }

    /// Consume a varint length prefix and validate it against the remaining
    /// input (each encoded element occupies at least one byte, so a length
    /// exceeding `remaining` can never be satisfied). This is the
    /// allocation guard: call it before any `with_capacity`.
    pub fn get_len(&mut self) -> Result<usize, CheckpointError> {
        let len = self.get_varint()?;
        let len = usize::try_from(len)
            .map_err(|_| CheckpointError::Malformed("length prefix overflows usize".into()))?;
        if len > self.remaining() {
            return Err(CheckpointError::Truncated);
        }
        Ok(len)
    }
}

/// A type that can write itself to a [`Writer`] and read itself back from
/// a [`Reader`]. The contract: `load(save(x)) == x` exactly, and `load` on
/// arbitrary bytes returns an error rather than panicking.
pub trait Persist: Sized {
    /// Append this value's encoding.
    fn save(&self, w: &mut Writer);
    /// Decode one value, consuming exactly what `save` wrote.
    fn load(r: &mut Reader<'_>) -> Result<Self, CheckpointError>;
}

/// Implement [`Persist`] for a struct with all-public fields by encoding
/// each named field in declaration order. The field list *is* the wire
/// format — reordering it is a format change and needs a
/// [`FORMAT_VERSION`](crate::FORMAT_VERSION) bump.
#[macro_export]
macro_rules! persist_struct {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::Persist for $ty {
            fn save(&self, w: &mut $crate::Writer) {
                $($crate::Persist::save(&self.$field, w);)+
            }
            fn load(
                r: &mut $crate::Reader<'_>,
            ) -> Result<Self, $crate::CheckpointError> {
                Ok(Self { $($field: $crate::Persist::load(r)?),+ })
            }
        }
    };
}

// `u8` stays a raw byte: a varint would cost a second byte for values
// ≥ 128, and single bytes are already as small as it gets.
impl Persist for u8 {
    fn save(&self, w: &mut Writer) {
        w.put_u8(*self);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        r.get_u8()
    }
}

macro_rules! persist_uvarint {
    ($($ty:ty => $what:literal),+ $(,)?) => {
        $(impl Persist for $ty {
            fn save(&self, w: &mut Writer) {
                w.put_varint(u64::from(*self));
            }
            fn load(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
                <$ty>::try_from(r.get_varint()?)
                    .map_err(|_| CheckpointError::Malformed(concat!("varint overflows ", $what).into()))
            }
        })+
    };
}

persist_uvarint!(u16 => "u16", u32 => "u32", u64 => "u64");

/// Zigzag map: small-magnitude signed values (of either sign) become
/// small unsigned varints (`0, -1, 1, -2, 2, …` → `0, 1, 2, 3, 4, …`).
macro_rules! persist_ivarint {
    ($($ty:ty => $un:ty, $bits:literal, $what:literal);+ $(;)?) => {
        $(impl Persist for $ty {
            fn save(&self, w: &mut Writer) {
                let zig = ((*self << 1) ^ (*self >> ($bits - 1))) as $un;
                w.put_varint(u64::from(zig));
            }
            fn load(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
                let zig = <$un>::try_from(r.get_varint()?)
                    .map_err(|_| CheckpointError::Malformed(concat!("varint overflows ", $what).into()))?;
                Ok(((zig >> 1) as $ty) ^ -((zig & 1) as $ty))
            }
        })+
    };
}

persist_ivarint!(i32 => u32, 32, "i32"; i64 => u64, 64, "i64");

impl Persist for usize {
    fn save(&self, w: &mut Writer) {
        w.put_varint(*self as u64);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        usize::try_from(r.get_varint()?)
            .map_err(|_| CheckpointError::Malformed("usize value overflows this platform".into()))
    }
}

impl Persist for bool {
    fn save(&self, w: &mut Writer) {
        w.put_u8(u8::from(*self));
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        match r.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            n => Err(CheckpointError::Malformed(format!("bool byte {n}"))),
        }
    }
}

impl Persist for f64 {
    fn save(&self, w: &mut Writer) {
        w.put_u64(self.to_bits());
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        Ok(f64::from_bits(r.get_u64()?))
    }
}

impl Persist for String {
    fn save(&self, w: &mut Writer) {
        w.put_varint(self.len() as u64);
        w.put_bytes(self.as_bytes());
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        let len = r.get_len()?;
        let bytes = r.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| CheckpointError::Malformed("string is not valid UTF-8".into()))
    }
}

impl Persist for std::borrow::Cow<'static, str> {
    // Byte-identical to the `String` encoding: the wire format cannot see
    // whether the live value borrowed a `'static` literal or owned its
    // bytes, and loading always produces an owned value.
    fn save(&self, w: &mut Writer) {
        w.put_varint(self.len() as u64);
        w.put_bytes(self.as_bytes());
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        Ok(std::borrow::Cow::Owned(String::load(r)?))
    }
}

impl<T: Persist> Persist for Option<T> {
    fn save(&self, w: &mut Writer) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.save(w);
            }
        }
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        match r.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::load(r)?)),
            n => Err(CheckpointError::Malformed(format!("Option tag {n}"))),
        }
    }
}

impl<T: Persist> Persist for Vec<T> {
    fn save(&self, w: &mut Writer) {
        w.put_varint(self.len() as u64);
        for item in self {
            item.save(w);
        }
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        let len = r.get_len()?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::load(r)?);
        }
        Ok(out)
    }
}

impl<T: Persist, const N: usize> Persist for [T; N] {
    fn save(&self, w: &mut Writer) {
        for item in self {
            item.save(w);
        }
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        let mut out = Vec::with_capacity(N);
        for _ in 0..N {
            out.push(T::load(r)?);
        }
        out.try_into()
            .map_err(|_| CheckpointError::Malformed("array length".into()))
    }
}

impl<A: Persist, B: Persist> Persist for (A, B) {
    fn save(&self, w: &mut Writer) {
        self.0.save(w);
        self.1.save(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        Ok((A::load(r)?, B::load(r)?))
    }
}

impl<A: Persist, B: Persist, C: Persist> Persist for (A, B, C) {
    fn save(&self, w: &mut Writer) {
        self.0.save(w);
        self.1.save(w);
        self.2.save(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        Ok((A::load(r)?, B::load(r)?, C::load(r)?))
    }
}

impl<K: Persist + Ord, V: Persist> Persist for BTreeMap<K, V> {
    fn save(&self, w: &mut Writer) {
        w.put_varint(self.len() as u64);
        for (k, v) in self {
            k.save(w);
            v.save(w);
        }
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        let len = r.get_len()?;
        let mut out = BTreeMap::new();
        for _ in 0..len {
            let k = K::load(r)?;
            let v = V::load(r)?;
            // Keys must arrive in strictly ascending order: the encoding of
            // a map is canonical, so equal maps always yield equal bytes.
            match out.last_key_value() {
                Some((last, _)) if *last >= k => {
                    return Err(CheckpointError::Malformed(
                        "map keys out of order or duplicated".into(),
                    ))
                }
                _ => {}
            }
            out.insert(k, v);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Persist + PartialEq + std::fmt::Debug>(value: T) {
        let mut w = Writer::new();
        value.save(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(T::load(&mut r).unwrap(), value);
        assert!(r.is_empty(), "decoder left trailing bytes");
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u8);
        round_trip(u8::MAX);
        round_trip(u16::MAX);
        round_trip(u32::MAX);
        round_trip(u64::MAX);
        round_trip(i64::MIN);
        round_trip(usize::MAX);
        round_trip(true);
        round_trip(false);
        round_trip(1.5f64);
        round_trip(f64::NEG_INFINITY);
        round_trip(String::from("héllo"));
        round_trip(String::new());
    }

    #[test]
    fn nan_round_trips_bit_exact() {
        let nan = f64::from_bits(0x7ff8_0000_0000_1234);
        let mut w = Writer::new();
        nan.save(&mut w);
        let bytes = w.into_bytes();
        let back = f64::load(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(back.to_bits(), nan.to_bits());
    }

    #[test]
    fn containers_round_trip() {
        round_trip(vec![1u32, 2, 3]);
        round_trip(Vec::<String>::new());
        round_trip(Some(7u64));
        round_trip(Option::<u64>::None);
        round_trip([1u8, 2, 3]);
        round_trip((1u32, String::from("x")));
        round_trip((1u32, 2u64, false));
        let mut m = BTreeMap::new();
        m.insert(String::from("a"), 1u64);
        m.insert(String::from("b"), 2u64);
        round_trip(m);
    }

    #[test]
    fn truncation_errors_never_panic() {
        let mut w = Writer::new();
        vec![String::from("abc"), String::from("defg")].save(&mut w);
        let bytes = w.into_bytes();
        for len in 0..bytes.len() {
            let err = Vec::<String>::load(&mut Reader::new(&bytes[..len]));
            assert!(err.is_err(), "prefix of {len} bytes decoded successfully");
        }
    }

    #[test]
    fn hostile_length_prefix_is_rejected_before_allocation() {
        // A Vec claiming u64::MAX elements (the 10-byte varint) with a
        // one-byte body.
        let mut w = Writer::new();
        w.put_varint(u64::MAX);
        let mut bytes = w.into_bytes();
        assert_eq!(bytes.len(), 10);
        bytes.push(0);
        assert_eq!(
            Vec::<u8>::load(&mut Reader::new(&bytes)),
            Err(CheckpointError::Truncated)
        );
    }

    #[test]
    fn varint_boundaries_round_trip_at_minimal_width() {
        for (value, width) in [
            (0u64, 1usize),
            (0x7f, 1),
            (0x80, 2),
            (0x3fff, 2),
            (0x4000, 3),
            (u64::from(u32::MAX), 5),
            (u64::MAX, 10),
        ] {
            let mut w = Writer::new();
            w.put_varint(value);
            let bytes = w.into_bytes();
            assert_eq!(bytes.len(), width, "width of {value:#x}");
            let mut r = Reader::new(&bytes);
            assert_eq!(r.get_varint().unwrap(), value);
            assert!(r.is_empty());
        }
    }

    #[test]
    fn overlong_varints_are_malformed() {
        // 0x80 0x00 decodes to 0, but 0 must encode as the single byte
        // 0x00: the canonical codec rejects the overlong form.
        for bytes in [&[0x80, 0x00][..], &[0xff, 0x80, 0x00][..]] {
            assert!(matches!(
                Reader::new(bytes).get_varint(),
                Err(CheckpointError::Malformed(_))
            ));
        }
        // An 11-byte continuation chain can never fit in u64.
        let too_long = [0xffu8; 10];
        assert!(matches!(
            Reader::new(&too_long).get_varint(),
            Err(CheckpointError::Malformed(_))
        ));
    }

    #[test]
    fn zigzag_keeps_small_magnitudes_small() {
        for value in [-1i64, 1, -63, 63] {
            let mut w = Writer::new();
            value.save(&mut w);
            assert_eq!(w.len(), 1, "encoding width of {value}");
        }
        round_trip(i64::MIN);
        round_trip(i64::MAX);
        round_trip(i32::MIN);
        round_trip(i32::MAX);
        round_trip(-1i32);
    }

    #[test]
    fn bad_enum_tags_are_malformed() {
        assert!(matches!(
            bool::load(&mut Reader::new(&[9])),
            Err(CheckpointError::Malformed(_))
        ));
        assert!(matches!(
            Option::<u8>::load(&mut Reader::new(&[7])),
            Err(CheckpointError::Malformed(_))
        ));
    }

    #[test]
    fn out_of_order_map_keys_are_malformed() {
        let mut w = Writer::new();
        w.put_varint(2);
        String::from("b").save(&mut w);
        1u64.save(&mut w);
        String::from("a").save(&mut w);
        2u64.save(&mut w);
        let bytes = w.into_bytes();
        assert!(matches!(
            BTreeMap::<String, u64>::load(&mut Reader::new(&bytes)),
            Err(CheckpointError::Malformed(_))
        ));
    }

    #[test]
    fn invalid_utf8_is_malformed() {
        let mut w = Writer::new();
        w.put_varint(2);
        w.put_bytes(&[0xff, 0xfe]);
        let bytes = w.into_bytes();
        assert!(matches!(
            String::load(&mut Reader::new(&bytes)),
            Err(CheckpointError::Malformed(_))
        ));
    }
}
