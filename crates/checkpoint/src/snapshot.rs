//! The snapshot envelope (magic, version, checksum) and atomic file I/O.

use crate::codec::{Persist, Reader, Writer};
use crate::error::CheckpointError;
use crate::vfs::{RealVfs, Vfs};
use chatlens_simnet::hash::sha256;
use std::path::Path;

/// First eight bytes of every snapshot. Includes a `0x1A` (DOS EOF) byte,
/// PNG-style, so text-mode transfer damage fails loudly as [`BadMagic`]
/// instead of corrupting the payload.
///
/// [`BadMagic`]: CheckpointError::BadMagic
pub const MAGIC: [u8; 8] = *b"CLCKPT\x1a\x01";

/// The snapshot format generation this build reads and writes. Any change
/// to the encoded layout of the campaign state must bump this.
///
/// * v1 — initial format.
/// * v2 — correlated-failure resilience: client state grew the breaker
///   map, burst-chain phase/RNG and rate clock; traces carry breaker
///   transitions; discovery and monitor state carry the backfill queues
///   and the per-group gap ledger; the campaign config gained the fault
///   profile and per-service outage specs.
/// * v3 — Byzantine-payload hardening: client state grew the corruption
///   RNG position, the last clean body (cross-splice source) and the
///   corrupted-response counter; discovery, monitor and joiner state
///   carry their quarantine ledgers; the campaign config gained the
///   corruption profile.
/// * v4 — interned group ids and columnar timelines: discovery state
///   carries the group-key symbol table; monitor timelines, terminal set
///   and gap ledger are keyed by dense group slot (`u32`) instead of
///   dedup-key strings, and each timeline encodes as parallel day/status
///   columns instead of an observation-struct list.
/// * v5 — incremental analysis folds: multi-byte integers and length
///   prefixes became canonical LEB128 varints (zigzag for signed; `f64`
///   and the envelope header stay fixed-width), the campaign state
///   carries per-day collection cursor marks (`DayMark`) and an optional
///   fold ledger (`FoldLedger`) of per-analysis folded state, so resumed
///   incremental runs never replay raw history.
/// * v6 — memory budget and cold-partition spill: discovery state splits
///   the tweet/control logs into a spilled prefix count (`tweets_base`,
///   `control_base`) plus the resident tail, and the campaign state
///   carries an optional `BudgetState` (limit, accounting floor, per-day
///   encoded sizes, spill-partition manifest with per-file SHA-256, and
///   the budget counters) so a kill/resume under `--mem-budget` replays
///   to byte-identical reports. Spill partitions themselves reuse this
///   envelope (one snapshot file per evicted day).
pub const FORMAT_VERSION: u32 = 6;

/// Envelope overhead before the payload: magic + version + payload length.
const HEADER_LEN: usize = 8 + 4 + 8;
/// SHA-256 trailer length.
const CHECKSUM_LEN: usize = 32;

/// Encode `value` into a complete snapshot: header, payload, checksum.
pub fn encode_snapshot<T: Persist>(value: &T) -> Vec<u8> {
    let mut payload = Writer::new();
    value.save(&mut payload);
    let payload = payload.into_bytes();

    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + CHECKSUM_LEN);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&payload);
    let digest = sha256(&out);
    out.extend_from_slice(&digest);
    out
}

/// Read the format version out of a snapshot header without decoding the
/// payload (useful for diagnostics on version-skewed files). Only the
/// magic is validated.
pub fn snapshot_version(bytes: &[u8]) -> Result<u32, CheckpointError> {
    if bytes.len() < 8 {
        return Err(CheckpointError::Truncated);
    }
    if bytes[..8] != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    if bytes.len() < 12 {
        return Err(CheckpointError::Truncated);
    }
    Ok(u32::from_le_bytes(
        bytes[8..12].try_into().expect("4 bytes"),
    ))
}

/// Decode a complete snapshot produced by [`encode_snapshot`].
///
/// Checks run in diagnosability order: magic first (is this a checkpoint
/// at all?), then version (is it *our* generation? — checked before the
/// checksum so skewed files report skew, not corruption), then length and
/// checksum, and only then is the payload decoded. Never panics on bad
/// input.
pub fn decode_snapshot<T: Persist>(bytes: &[u8]) -> Result<T, CheckpointError> {
    let version = snapshot_version(bytes)?;
    if version != FORMAT_VERSION {
        return Err(CheckpointError::VersionMismatch {
            found: version,
            expected: FORMAT_VERSION,
        });
    }
    if bytes.len() < HEADER_LEN {
        return Err(CheckpointError::Truncated);
    }
    let payload_len = u64::from_le_bytes(bytes[12..HEADER_LEN].try_into().expect("8 bytes"));
    let payload_len = usize::try_from(payload_len)
        .map_err(|_| CheckpointError::Malformed("payload length overflows usize".into()))?;
    let total = HEADER_LEN
        .checked_add(payload_len)
        .and_then(|n| n.checked_add(CHECKSUM_LEN))
        .ok_or_else(|| CheckpointError::Malformed("payload length overflows usize".into()))?;
    if bytes.len() < total {
        return Err(CheckpointError::Truncated);
    }
    if bytes.len() > total {
        return Err(CheckpointError::Malformed(format!(
            "{} trailing byte(s) after the checksum",
            bytes.len() - total
        )));
    }
    let body = &bytes[..HEADER_LEN + payload_len];
    let recorded = &bytes[HEADER_LEN + payload_len..];
    if sha256(body) != *recorded {
        return Err(CheckpointError::ChecksumMismatch);
    }
    let mut r = Reader::new(&bytes[HEADER_LEN..HEADER_LEN + payload_len]);
    let value = T::load(&mut r)?;
    if !r.is_empty() {
        return Err(CheckpointError::Malformed(format!(
            "{} undecoded byte(s) inside the payload",
            r.remaining()
        )));
    }
    Ok(value)
}

/// Write `value` as a snapshot file through `vfs`, durably and
/// atomically: the bytes are staged under a `.tmp` sibling, fsynced,
/// renamed into place, and the parent directory is fsynced (see
/// [`Vfs::write_atomic`]). A crash mid-write can never leave a torn file
/// at `path`, and once this returns `Ok` on the real filesystem the
/// snapshot survives power loss. The parent directory is created if
/// missing.
pub fn save_to_file_with<T: Persist>(
    vfs: &mut dyn Vfs,
    path: &Path,
    value: &T,
) -> Result<(), CheckpointError> {
    vfs.write_atomic(path, &encode_snapshot(value))
}

/// Read and decode a snapshot file through `vfs`.
pub fn load_from_file_with<T: Persist>(
    vfs: &mut dyn Vfs,
    path: &Path,
) -> Result<T, CheckpointError> {
    decode_snapshot(&vfs.read(path)?)
}

/// [`save_to_file_with`] on the production filesystem ([`RealVfs`]).
pub fn save_to_file<T: Persist>(path: &Path, value: &T) -> Result<(), CheckpointError> {
    save_to_file_with(&mut RealVfs, path, value)
}

/// [`load_from_file_with`] on the production filesystem ([`RealVfs`]).
pub fn load_from_file<T: Persist>(path: &Path) -> Result<T, CheckpointError> {
    load_from_file_with(&mut RealVfs, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_round_trips() {
        let value = (42u64, String::from("state"), vec![1u32, 2, 3]);
        let bytes = encode_snapshot(&value);
        let back: (u64, String, Vec<u32>) = decode_snapshot(&bytes).unwrap();
        assert_eq!(back, value);
        assert_eq!(snapshot_version(&bytes).unwrap(), FORMAT_VERSION);
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let bytes = encode_snapshot(&(7u64, String::from("x")));
        for byte in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[byte] ^= 0x01;
            let res: Result<(u64, String), _> = decode_snapshot(&bad);
            assert!(res.is_err(), "flip at byte {byte} went unnoticed");
        }
    }

    #[test]
    fn every_truncation_is_an_error() {
        let bytes = encode_snapshot(&vec![String::from("abc"); 4]);
        for len in 0..bytes.len() {
            let res: Result<Vec<String>, _> = decode_snapshot(&bytes[..len]);
            assert!(res.is_err(), "prefix of {len} bytes decoded");
        }
    }

    #[test]
    fn version_skew_reports_skew_not_corruption() {
        let mut bytes = encode_snapshot(&1u64);
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert_eq!(
            decode_snapshot::<u64>(&bytes),
            Err(CheckpointError::VersionMismatch {
                found: 99,
                expected: FORMAT_VERSION
            })
        );
    }

    #[test]
    fn foreign_bytes_are_bad_magic() {
        assert_eq!(
            decode_snapshot::<u64>(b"definitely not a snapshot"),
            Err(CheckpointError::BadMagic)
        );
    }

    #[test]
    fn trailing_garbage_is_malformed() {
        let mut bytes = encode_snapshot(&1u64);
        bytes.push(0);
        assert!(matches!(
            decode_snapshot::<u64>(&bytes),
            Err(CheckpointError::Malformed(_))
        ));
    }

    #[test]
    fn checksum_catches_payload_corruption() {
        let mut bytes = encode_snapshot(&(1u64, 2u64));
        let mid = HEADER_LEN + 3;
        bytes[mid] ^= 0xff;
        assert_eq!(
            decode_snapshot::<(u64, u64)>(&bytes),
            Err(CheckpointError::ChecksumMismatch)
        );
    }

    #[test]
    fn file_save_and_load_round_trip() {
        let dir = std::env::temp_dir().join("chatlens-ckpt-test");
        let path = dir.join("nested").join("snap.ckpt");
        let value = (9u64, String::from("file"));
        save_to_file(&path, &value).unwrap();
        let back: (u64, String) = load_from_file(&path).unwrap();
        assert_eq!(back, value);
        // Atomic write leaves no temp file behind.
        assert!(!path.with_extension("ckpt.tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_is_io_error() {
        let res: Result<u64, _> = load_from_file(Path::new("/nonexistent/chatlens/snap.ckpt"));
        assert!(matches!(res, Err(CheckpointError::Io(_))));
    }
}
