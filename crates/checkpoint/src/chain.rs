//! Self-healing checkpoint chains: walk a per-day snapshot directory
//! backwards past damaged files to the newest valid state, and keep an
//! auditable ledger of everything that was skipped.
//!
//! A checkpointed campaign leaves a *chain* of `dayNNN.ckpt` files. Under
//! a healthy disk the newest one is always loadable; under the injected
//! (or real) fault taxonomy any link can be torn (only the `.tmp` sibling
//! landed), truncated, bit-rotten, or missing outright. Recovery policy:
//!
//! 1. [`recover_latest`] walks the chain from the newest day down,
//!    attempting each snapshot in turn. The first one that decodes wins;
//!    every rejected link becomes a typed [`RecoveryEntry`].
//! 2. The skips are appended to a persisted [`RecoveryLedger`]
//!    (`recovery.ledger`, itself a checksummed snapshot) so `repro
//!    checkpoint inspect` can show the damage history after the fact.
//! 3. The caller replays the lost days from the recovered state — the
//!    campaign is a pure function of `(seed, config)`, so the final
//!    report is byte-identical to a fault-free run.
//!
//! [`verify_chain`] and [`repair_chain`] are the operator surface behind
//! `repro checkpoint verify --all` / `repair`: verification classifies
//! every link without touching it; repair moves invalid links and orphan
//! `.tmp` files into a `quarantine/` subdirectory so the directory again
//! contains only loadable snapshots.
//!
//! The ledger is always written through [`RealVfs`]: the fault domain
//! must not be able to erase its own audit trail.

use crate::codec::Persist;
use crate::error::CheckpointError;
use crate::persist_struct;
use crate::snapshot::{load_from_file_with, save_to_file_with};
use crate::vfs::{tmp_sibling, RealVfs, Vfs};
use std::path::Path;

/// File name of the persisted recovery ledger inside a checkpoint
/// directory.
pub const LEDGER_FILE: &str = "recovery.ledger";

/// Directory name invalid snapshots are moved into by [`repair_chain`].
pub const QUARANTINE_DIR: &str = "quarantine";

/// The canonical snapshot file name for a campaign day.
pub fn snapshot_file_name(day: u32) -> String {
    format!("day{day:03}.ckpt")
}

/// Parse a campaign day out of a `dayNNN.ckpt` file name.
fn parse_snapshot_day(name: &str) -> Option<u32> {
    let digits = name.strip_prefix("day")?.strip_suffix(".ckpt")?;
    if digits.len() != 3 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Why a chain link was passed over during recovery — the ledger-facing
/// mirror of [`CheckpointError`], plus `Missing` for links that left only
/// a `.tmp` sibling (the torn-write signature).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SkipReason {
    /// No snapshot file at all — typically a torn write (only the `.tmp`
    /// sibling landed) or an `ENOSPC` save that never started.
    Missing,
    /// The file does not start with the snapshot magic.
    BadMagic,
    /// The file was written by a different format generation.
    VersionMismatch,
    /// The checksum does not match — bit-rot or a mangled transfer.
    ChecksumMismatch,
    /// The file ends mid-structure — a short write.
    Truncated,
    /// The bytes decoded structurally but described an impossible value.
    Malformed,
    /// The filesystem refused the read.
    Io,
}

impl SkipReason {
    /// Every skip reason, in tag order.
    pub const ALL: [SkipReason; 7] = [
        SkipReason::Missing,
        SkipReason::BadMagic,
        SkipReason::VersionMismatch,
        SkipReason::ChecksumMismatch,
        SkipReason::Truncated,
        SkipReason::Malformed,
        SkipReason::Io,
    ];

    /// Stable label for ledgers and diagnostics.
    pub fn label(self) -> &'static str {
        match self {
            SkipReason::Missing => "missing",
            SkipReason::BadMagic => "bad-magic",
            SkipReason::VersionMismatch => "version-mismatch",
            SkipReason::ChecksumMismatch => "checksum-mismatch",
            SkipReason::Truncated => "truncated",
            SkipReason::Malformed => "malformed",
            SkipReason::Io => "io",
        }
    }

    /// Classify a decode/read failure.
    pub fn of(err: &CheckpointError) -> SkipReason {
        match err {
            CheckpointError::BadMagic => SkipReason::BadMagic,
            CheckpointError::VersionMismatch { .. } => SkipReason::VersionMismatch,
            CheckpointError::ChecksumMismatch => SkipReason::ChecksumMismatch,
            CheckpointError::Truncated => SkipReason::Truncated,
            CheckpointError::Malformed(_) => SkipReason::Malformed,
            CheckpointError::Io(_) => SkipReason::Io,
        }
    }
}

impl Persist for SkipReason {
    fn save(&self, w: &mut crate::Writer) {
        let tag = SkipReason::ALL
            .iter()
            .position(|r| r == self)
            .expect("every variant is in ALL") as u8;
        w.put_u8(tag);
    }
    fn load(r: &mut crate::Reader<'_>) -> Result<Self, CheckpointError> {
        let tag = r.get_u8()?;
        SkipReason::ALL
            .get(tag as usize)
            .copied()
            .ok_or_else(|| CheckpointError::Malformed(format!("SkipReason tag {tag}")))
    }
}

/// What recovery (or repair) did about a damaged link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryAction {
    /// The link was passed over during a resume; the file (if any) was
    /// left where it was.
    Skipped,
    /// `repro checkpoint repair` moved the file into `quarantine/`.
    Quarantined,
}

impl RecoveryAction {
    /// Stable label for ledgers and diagnostics.
    pub fn label(self) -> &'static str {
        match self {
            RecoveryAction::Skipped => "skipped",
            RecoveryAction::Quarantined => "quarantined",
        }
    }
}

impl Persist for RecoveryAction {
    fn save(&self, w: &mut crate::Writer) {
        w.put_u8(match self {
            RecoveryAction::Skipped => 0,
            RecoveryAction::Quarantined => 1,
        });
    }
    fn load(r: &mut crate::Reader<'_>) -> Result<Self, CheckpointError> {
        match r.get_u8()? {
            0 => Ok(RecoveryAction::Skipped),
            1 => Ok(RecoveryAction::Quarantined),
            n => Err(CheckpointError::Malformed(format!(
                "RecoveryAction tag {n}"
            ))),
        }
    }
}

/// One damaged chain link: which day, which file, what was wrong, and
/// what was done about it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryEntry {
    /// Campaign day the snapshot covered.
    pub day: u32,
    /// File name (relative to the checkpoint directory).
    pub file: String,
    /// Why the snapshot was unusable.
    pub reason: SkipReason,
    /// What recovery did about it.
    pub action: RecoveryAction,
}

persist_struct!(RecoveryEntry {
    day,
    file,
    reason,
    action,
});

/// The persisted history of every snapshot recovery has skipped or
/// quarantined in a checkpoint directory.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryLedger {
    /// Entries in append order (deduplicated on append).
    pub entries: Vec<RecoveryEntry>,
}

persist_struct!(RecoveryLedger { entries });

/// Load the recovery ledger of a checkpoint directory. A missing or
/// unreadable ledger is an empty one: the ledger is an audit trail, and
/// its own corruption must never block a resume.
pub fn load_ledger(dir: &Path) -> RecoveryLedger {
    load_from_file_with(&mut RealVfs, &dir.join(LEDGER_FILE)).unwrap_or_default()
}

/// Append `entries` to the directory's recovery ledger, skipping exact
/// duplicates (recovering twice from the same damage must not double the
/// audit trail). Always writes through [`RealVfs`] — the fault domain
/// cannot erase its own evidence.
pub fn append_ledger(dir: &Path, entries: &[RecoveryEntry]) -> Result<(), CheckpointError> {
    if entries.is_empty() {
        return Ok(());
    }
    let mut ledger = load_ledger(dir);
    let mut grew = false;
    for e in entries {
        if !ledger.entries.contains(e) {
            ledger.entries.push(e.clone());
            grew = true;
        }
    }
    if grew {
        save_to_file_with(&mut RealVfs, &dir.join(LEDGER_FILE), &ledger)?;
    }
    Ok(())
}

/// The days with on-disk evidence of a snapshot attempt: either the
/// `dayNNN.ckpt` file itself or its orphaned `.tmp` sibling (the torn
/// write signature). Sorted ascending.
pub fn chain_days(vfs: &mut dyn Vfs, dir: &Path) -> Result<Vec<u32>, CheckpointError> {
    let mut days = Vec::new();
    for path in vfs.list_dir(dir)? {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let day =
            parse_snapshot_day(name).or_else(|| parse_snapshot_day(name.strip_suffix(".tmp")?));
        if let Some(day) = day {
            if !days.contains(&day) {
                days.push(day);
            }
        }
    }
    days.sort_unstable();
    Ok(days)
}

/// The result of walking a chain backwards: the newest valid state (or
/// `None` if every link was damaged — the caller starts fresh), the day
/// it covers, and every link skipped on the way down.
#[derive(Debug)]
pub struct Recovered<T> {
    /// Day of the recovered snapshot (0 when starting fresh).
    pub day: u32,
    /// The recovered state, or `None` when no valid snapshot survived.
    pub state: Option<T>,
    /// Links rejected on the way down, newest first.
    pub skipped: Vec<RecoveryEntry>,
}

/// Walk the chain in `dir` from the newest day (or `up_to`, if given)
/// downwards, returning the first snapshot that decodes. Every rejected
/// link — damaged file or torn-write `.tmp` orphan — becomes a
/// [`RecoveryEntry`] with action [`RecoveryAction::Skipped`]. The caller
/// is responsible for persisting the skips via [`append_ledger`] (kept
/// separate so a read-only `verify` can reuse this walk).
pub fn recover_latest<T: Persist>(
    vfs: &mut dyn Vfs,
    dir: &Path,
    up_to: Option<u32>,
) -> Result<Recovered<T>, CheckpointError> {
    let mut days = chain_days(vfs, dir)?;
    if let Some(limit) = up_to {
        days.retain(|&d| d <= limit);
    }
    let mut skipped = Vec::new();
    for &day in days.iter().rev() {
        let file = snapshot_file_name(day);
        let path = dir.join(&file);
        if !vfs.exists(&path) {
            skipped.push(RecoveryEntry {
                day,
                file,
                reason: SkipReason::Missing,
                action: RecoveryAction::Skipped,
            });
            continue;
        }
        match load_from_file_with::<T>(vfs, &path) {
            Ok(state) => {
                return Ok(Recovered {
                    day,
                    state: Some(state),
                    skipped,
                });
            }
            Err(err) => skipped.push(RecoveryEntry {
                day,
                file,
                reason: SkipReason::of(&err),
                action: RecoveryAction::Skipped,
            }),
        }
    }
    Ok(Recovered {
        day: 0,
        state: None,
        skipped,
    })
}

/// One link's verification outcome.
#[derive(Debug)]
pub struct ChainEntry {
    /// Campaign day the link covers.
    pub day: u32,
    /// File name (relative to the checkpoint directory).
    pub file: String,
    /// `Ok` if the snapshot decodes; the decode/read error otherwise.
    pub outcome: Result<(), CheckpointError>,
}

/// Verify every link of the chain in `dir`, newest last. Read-only: no
/// file is touched, no ledger entry is written.
pub fn verify_chain<T: Persist>(
    vfs: &mut dyn Vfs,
    dir: &Path,
) -> Result<Vec<ChainEntry>, CheckpointError> {
    let days = chain_days(vfs, dir)?;
    let mut out = Vec::with_capacity(days.len());
    for day in days {
        let file = snapshot_file_name(day);
        let path = dir.join(&file);
        let outcome = if !vfs.exists(&path) {
            Err(CheckpointError::Io(format!(
                "{}: missing (only the .tmp sibling landed — torn write)",
                path.display()
            )))
        } else {
            load_from_file_with::<T>(vfs, &path).map(|_| ())
        };
        out.push(ChainEntry { day, file, outcome });
    }
    Ok(out)
}

/// What [`repair_chain`] did.
#[derive(Debug)]
pub struct RepairReport {
    /// Invalid links and orphan `.tmp` files moved into `quarantine/`.
    pub quarantined: Vec<RecoveryEntry>,
    /// Valid snapshots left in place.
    pub kept: u32,
}

/// Quarantine every invalid link: damaged `dayNNN.ckpt` files and all
/// orphaned `.tmp` siblings move into `dir/quarantine/`, the moves are
/// recorded in the recovery ledger, and the remaining directory contains
/// only loadable snapshots.
pub fn repair_chain<T: Persist>(
    vfs: &mut dyn Vfs,
    dir: &Path,
) -> Result<RepairReport, CheckpointError> {
    let quarantine = dir.join(QUARANTINE_DIR);
    let mut report = RepairReport {
        quarantined: Vec::new(),
        kept: 0,
    };
    for day in chain_days(vfs, dir)? {
        let file = snapshot_file_name(day);
        let path = dir.join(&file);
        if vfs.exists(&path) {
            match load_from_file_with::<T>(vfs, &path) {
                Ok(_) => report.kept += 1,
                Err(err) => {
                    vfs.create_dir_all(&quarantine)?;
                    vfs.rename(&path, &quarantine.join(&file))?;
                    report.quarantined.push(RecoveryEntry {
                        day,
                        file: file.clone(),
                        reason: SkipReason::of(&err),
                        action: RecoveryAction::Quarantined,
                    });
                }
            }
        }
        // A .tmp orphan is quarantine-worthy whether or not the real file
        // was valid: it is dead weight from an interrupted save.
        let tmp = tmp_sibling(&path);
        if vfs.exists(&tmp) {
            vfs.create_dir_all(&quarantine)?;
            let tmp_name = format!("{file}.tmp");
            vfs.rename(&tmp, &quarantine.join(&tmp_name))?;
            if !vfs.exists(&path) {
                report.quarantined.push(RecoveryEntry {
                    day,
                    file: tmp_name,
                    reason: SkipReason::Missing,
                    action: RecoveryAction::Quarantined,
                });
            }
        }
    }
    append_ledger(dir, &report.quarantined)?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{encode_snapshot, save_to_file};
    use std::path::PathBuf;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("chatlens-chain-{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_day(dir: &Path, day: u32, value: u64) {
        save_to_file(&dir.join(snapshot_file_name(day)), &value).unwrap();
    }

    #[test]
    fn skip_reason_persist_round_trips_every_variant() {
        for reason in SkipReason::ALL {
            let mut w = crate::Writer::new();
            reason.save(&mut w);
            let bytes = w.into_bytes();
            let mut r = crate::Reader::new(&bytes);
            assert_eq!(SkipReason::load(&mut r).unwrap(), reason);
        }
    }

    #[test]
    fn recover_walks_past_damage_to_newest_valid() {
        let dir = scratch("walk");
        write_day(&dir, 1, 100);
        write_day(&dir, 2, 200);
        write_day(&dir, 3, 300);
        // Day 3: truncate. Day 2 stays valid.
        let p3 = dir.join(snapshot_file_name(3));
        let bytes = std::fs::read(&p3).unwrap();
        std::fs::write(&p3, &bytes[..bytes.len() / 2]).unwrap();
        let rec = recover_latest::<u64>(&mut RealVfs, &dir, None).unwrap();
        assert_eq!(rec.day, 2);
        assert_eq!(rec.state, Some(200));
        assert_eq!(rec.skipped.len(), 1);
        assert_eq!(rec.skipped[0].day, 3);
        assert_eq!(rec.skipped[0].reason, SkipReason::Truncated);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tmp_orphan_counts_as_a_missing_link() {
        let dir = scratch("torn");
        write_day(&dir, 1, 100);
        // Day 2 tore: only the tmp sibling landed.
        let tmp = tmp_sibling(&dir.join(snapshot_file_name(2)));
        std::fs::write(&tmp, encode_snapshot(&200u64)).unwrap();
        let rec = recover_latest::<u64>(&mut RealVfs, &dir, None).unwrap();
        assert_eq!(rec.day, 1);
        assert_eq!(rec.state, Some(100));
        assert_eq!(rec.skipped.len(), 1);
        assert_eq!(rec.skipped[0].reason, SkipReason::Missing);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn whole_chain_damaged_means_fresh_start() {
        let dir = scratch("fresh");
        write_day(&dir, 1, 100);
        let p1 = dir.join(snapshot_file_name(1));
        std::fs::write(&p1, b"definitely not a snapshot").unwrap();
        let rec = recover_latest::<u64>(&mut RealVfs, &dir, None).unwrap();
        assert_eq!(rec.day, 0);
        assert!(rec.state.is_none());
        assert_eq!(rec.skipped[0].reason, SkipReason::BadMagic);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn up_to_limits_the_walk() {
        let dir = scratch("upto");
        write_day(&dir, 1, 100);
        write_day(&dir, 2, 200);
        write_day(&dir, 3, 300);
        let rec = recover_latest::<u64>(&mut RealVfs, &dir, Some(2)).unwrap();
        assert_eq!(rec.day, 2);
        assert_eq!(rec.state, Some(200));
        assert!(rec.skipped.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ledger_appends_persist_and_dedup() {
        let dir = scratch("ledger");
        let entry = RecoveryEntry {
            day: 7,
            file: snapshot_file_name(7),
            reason: SkipReason::ChecksumMismatch,
            action: RecoveryAction::Skipped,
        };
        append_ledger(&dir, std::slice::from_ref(&entry)).unwrap();
        append_ledger(&dir, std::slice::from_ref(&entry)).unwrap();
        let ledger = load_ledger(&dir);
        assert_eq!(ledger.entries, vec![entry]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn verify_classifies_every_link() {
        let dir = scratch("verify");
        write_day(&dir, 1, 100);
        write_day(&dir, 2, 200);
        let p2 = dir.join(snapshot_file_name(2));
        let mut bytes = std::fs::read(&p2).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&p2, &bytes).unwrap();
        let entries = verify_chain::<u64>(&mut RealVfs, &dir).unwrap();
        assert_eq!(entries.len(), 2);
        assert!(entries[0].outcome.is_ok());
        assert_eq!(entries[1].outcome, Err(CheckpointError::ChecksumMismatch));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn repair_quarantines_damage_and_orphans() {
        let dir = scratch("repair");
        write_day(&dir, 1, 100);
        write_day(&dir, 2, 200);
        let p2 = dir.join(snapshot_file_name(2));
        std::fs::write(&p2, b"junk").unwrap();
        let tmp3 = tmp_sibling(&dir.join(snapshot_file_name(3)));
        std::fs::write(&tmp3, b"half a snapshot").unwrap();
        let report = repair_chain::<u64>(&mut RealVfs, &dir).unwrap();
        assert_eq!(report.kept, 1);
        assert_eq!(report.quarantined.len(), 2);
        assert!(!p2.exists());
        assert!(!tmp3.exists());
        assert!(dir
            .join(QUARANTINE_DIR)
            .join(snapshot_file_name(2))
            .exists());
        // The damage is in the persisted ledger, marked quarantined.
        let ledger = load_ledger(&dir);
        assert!(ledger
            .entries
            .iter()
            .all(|e| e.action == RecoveryAction::Quarantined));
        assert_eq!(ledger.entries.len(), 2);
        // The chain now verifies clean.
        let entries = verify_chain::<u64>(&mut RealVfs, &dir).unwrap();
        assert!(entries.iter().all(|e| e.outcome.is_ok()));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
