//! # chatlens-checkpoint — crash-safe campaign snapshots
//!
//! The collection campaign is a pure function of `(seed, config)`, but a
//! 38-day run interrupted on day 23 used to mean starting over. This crate
//! defines the snapshot format and machinery that make a campaign
//! *resumable*: everything the orchestrator mutates — RNG stream
//! positions, the virtual clock, the pending event queue, token-bucket
//! fill levels, the discovery/monitor/join ledgers, metrics — is captured
//! into a versioned, self-describing, checksummed byte format, and a
//! resumed run is **bit-identical** to an uninterrupted one (the
//! `tests/checkpoint.rs` suite kills a campaign at every day boundary and
//! proves it, at 1, 2 and 8 worker threads).
//!
//! ## Format
//!
//! A snapshot file is a fixed envelope around a [`Persist`]-encoded
//! payload:
//!
//! ```text
//! +---------------------+----------------+---------------------+---------+----------------+
//! | magic (8 bytes)     | version (u32)  | payload length (u64)| payload | SHA-256 (32 B) |
//! +---------------------+----------------+---------------------+---------+----------------+
//! ```
//!
//! * The magic ([`MAGIC`]) includes a `0x1A` byte so text-mode mangling is
//!   caught immediately, PNG-style.
//! * The version ([`FORMAT_VERSION`]) is checked *before* the checksum, so
//!   a snapshot from a different format generation fails with
//!   [`CheckpointError::VersionMismatch`] rather than a checksum error.
//! * The checksum covers everything before it; any bit flip yields
//!   [`CheckpointError::ChecksumMismatch`]. Corrupt or truncated input
//!   always produces an error — never a panic, never a partial load.
//!
//! ## Encoding
//!
//! [`Persist`] is a deliberately boring, hand-written binary codec:
//! little-endian fixed-width integers, `f64` via its IEEE-754 bit pattern
//! (exact round-trip — bucket fill levels and histogram sums must survive
//! to the bit), length-prefixed strings and sequences, index-tagged enums.
//! Containers with nondeterministic iteration order (`HashSet`) are
//! serialized sorted by the state-capture layer, so the same logical state
//! always encodes to the same bytes — which is what lets the resume tests
//! compare snapshots with `==` on `Vec<u8>`.
//!
//! The decoder is bounds-checked end to end: every length prefix is
//! validated against the remaining input before any allocation, so a
//! hostile or damaged file cannot request absurd allocations.
//!
//! ## Who writes files
//!
//! This crate is one of the two sanctioned filesystem writers in the
//! workspace (the other is `chatlens-report`); lint rule D6 enforces
//! that, and rule D13 narrows it further: every `std::fs` call lives in
//! the [`vfs`] module, and all snapshot/report I/O flows through the
//! [`Vfs`] trait — [`RealVfs`] in production, [`FaultVfs`] under an
//! injected disk-fault profile.
//!
//! ## Durability
//!
//! [`save_to_file`] writes durably and atomically: the bytes are staged
//! under a `.tmp` sibling, fsynced, renamed into place, and the parent
//! directory is fsynced — so `Ok` means the snapshot survives power
//! loss, not just process death. When a disk does lose or damage a
//! snapshot anyway, the [`chain`] module walks the per-day checkpoint
//! chain backwards to the newest valid link, records every skip in a
//! persisted [`RecoveryLedger`], and lets the campaign replay the lost
//! days — the full recovery story is in ARCHITECTURE.md "Durability &
//! the fault VFS".

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod chain;
pub mod codec;
mod error;
mod impls;
mod snapshot;
pub mod vfs;

pub use chain::{
    recover_latest, repair_chain, verify_chain, ChainEntry, Recovered, RecoveryAction,
    RecoveryEntry, RecoveryLedger, RepairReport, SkipReason,
};
pub use codec::{Persist, Reader, Writer};
pub use error::CheckpointError;
pub use snapshot::{
    decode_snapshot, encode_snapshot, load_from_file, load_from_file_with, save_to_file,
    save_to_file_with, snapshot_version, FORMAT_VERSION, MAGIC,
};
pub use vfs::{FaultVfs, RealVfs, Vfs};
