//! [`Persist`] implementations for the workspace types a campaign
//! snapshot contains: simnet runtime state, platform identifiers, tweets,
//! and the scenario configuration tree.
//!
//! Field order in every `persist_struct!` invocation is the wire format;
//! changing it requires a [`FORMAT_VERSION`](crate::FORMAT_VERSION) bump.
//! Enums encode as a `u8` index into their declared variant order (or
//! their `ALL` table where the type provides one), with payload-carrying
//! variants writing the payload after the tag.

use crate::codec::{Persist, Reader, Writer};
use crate::error::CheckpointError;
use crate::persist_struct;
use chatlens_platforms::id::{GroupId, PlatformKind, UserId};
use chatlens_platforms::invite::{InviteCode, UrlPattern};
use chatlens_platforms::message::{Message, MessageKind};
use chatlens_platforms::platform::AccountState;
use chatlens_simnet::fault::{
    CorruptionProfile, FaultInjector, FaultProfile, OutageSpec, TokenBucketState,
};
use chatlens_simnet::metrics::{Histogram, Metrics};
use chatlens_simnet::time::{SimDuration, SimTime};
use chatlens_simnet::trace::{BreakerPhase, BreakerTransition, TraceEntry, TraceState};
use chatlens_simnet::transport::{BreakerState, ClientState, Status};
use chatlens_twitter::Tweet;
use chatlens_workload::config::{
    ActivityParams, ControlParams, PlatformParams, RevocationParams, ScenarioConfig,
    ShareCountParams, SizeParams, StalenessParams, TweetFeatureParams,
};
use chatlens_workload::ecosystem::EcosystemDelta;
use std::collections::BTreeMap;

// ---- simnet: time ---------------------------------------------------------

impl Persist for SimTime {
    fn save(&self, w: &mut Writer) {
        self.0.save(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        Ok(SimTime(u64::load(r)?))
    }
}

impl Persist for SimDuration {
    fn save(&self, w: &mut Writer) {
        self.0.save(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        Ok(SimDuration(u64::load(r)?))
    }
}

// ---- simnet: transport & faults ------------------------------------------

persist_struct!(TokenBucketState {
    capacity,
    tokens,
    rate,
    last
});

persist_struct!(FaultInjector {
    drop_chance,
    error_chance
});

impl Persist for FaultProfile {
    fn save(&self, w: &mut Writer) {
        w.put_u8(match self {
            FaultProfile::Calm => 0,
            FaultProfile::Bursty => 1,
            FaultProfile::Outage => 2,
        });
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        match r.get_u8()? {
            0 => Ok(FaultProfile::Calm),
            1 => Ok(FaultProfile::Bursty),
            2 => Ok(FaultProfile::Outage),
            n => Err(CheckpointError::Malformed(format!("FaultProfile tag {n}"))),
        }
    }
}

impl Persist for CorruptionProfile {
    fn save(&self, w: &mut Writer) {
        w.put_u8(match self {
            CorruptionProfile::Calm => 0,
            CorruptionProfile::Noisy => 1,
            CorruptionProfile::Hostile => 2,
        });
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        match r.get_u8()? {
            0 => Ok(CorruptionProfile::Calm),
            1 => Ok(CorruptionProfile::Noisy),
            2 => Ok(CorruptionProfile::Hostile),
            n => Err(CheckpointError::Malformed(format!(
                "CorruptionProfile tag {n}"
            ))),
        }
    }
}

persist_struct!(OutageSpec {
    start_day,
    days,
    ban
});

impl Persist for BreakerPhase {
    fn save(&self, w: &mut Writer) {
        w.put_u8(match self {
            BreakerPhase::Closed => 0,
            BreakerPhase::Open => 1,
            BreakerPhase::HalfOpen => 2,
        });
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        match r.get_u8()? {
            0 => Ok(BreakerPhase::Closed),
            1 => Ok(BreakerPhase::Open),
            2 => Ok(BreakerPhase::HalfOpen),
            n => Err(CheckpointError::Malformed(format!("BreakerPhase tag {n}"))),
        }
    }
}

persist_struct!(BreakerTransition {
    at,
    prefix,
    from,
    to
});

impl Persist for BreakerState {
    fn save(&self, w: &mut Writer) {
        match self {
            BreakerState::Closed {
                consecutive_failures,
            } => {
                w.put_u8(0);
                consecutive_failures.save(w);
            }
            BreakerState::Open { until } => {
                w.put_u8(1);
                until.save(w);
            }
            BreakerState::HalfOpen => w.put_u8(2),
        }
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        match r.get_u8()? {
            0 => Ok(BreakerState::Closed {
                consecutive_failures: u32::load(r)?,
            }),
            1 => Ok(BreakerState::Open {
                until: SimTime::load(r)?,
            }),
            2 => Ok(BreakerState::HalfOpen),
            n => Err(CheckpointError::Malformed(format!("BreakerState tag {n}"))),
        }
    }
}

impl Persist for Status {
    fn save(&self, w: &mut Writer) {
        match self {
            Status::Ok => w.put_u8(0),
            Status::NotFound => w.put_u8(1),
            Status::Gone => w.put_u8(2),
            Status::RateLimited(secs) => {
                w.put_u8(3);
                secs.save(w);
            }
            Status::Forbidden => w.put_u8(4),
            Status::ServerError => w.put_u8(5),
        }
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        match r.get_u8()? {
            0 => Ok(Status::Ok),
            1 => Ok(Status::NotFound),
            2 => Ok(Status::Gone),
            3 => Ok(Status::RateLimited(u32::load(r)?)),
            4 => Ok(Status::Forbidden),
            5 => Ok(Status::ServerError),
            n => Err(CheckpointError::Malformed(format!("Status tag {n}"))),
        }
    }
}

persist_struct!(TraceEntry {
    at,
    endpoint,
    status,
    latency,
    attempt
});

persist_struct!(TraceState {
    capacity,
    total,
    dropped_attempts,
    by_status,
    by_endpoint,
    entries,
    transitions,
    breaker_fast_fails
});

persist_struct!(ClientState {
    bucket,
    rng,
    waited,
    trace,
    rate_clock,
    burst_rng,
    burst_bad,
    breakers,
    corrupt_rng,
    last_ok_body,
    corrupted
});

// ---- simnet: metrics ------------------------------------------------------

// lint:allow(D9) `counts` is saved through the bucket_counts() accessor; load rebuilds every field via from_parts
impl Persist for Histogram {
    fn save(&self, w: &mut Writer) {
        self.bounds().to_vec().save(w);
        self.bucket_counts().to_vec().save(w);
        self.count().save(w);
        self.sum().save(w);
        self.min().save(w);
        self.max().save(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        let bounds = Vec::<f64>::load(r)?;
        let counts = Vec::<u64>::load(r)?;
        let count = u64::load(r)?;
        let sum = f64::load(r)?;
        let min = Option::<f64>::load(r)?;
        let max = Option::<f64>::load(r)?;
        // Pre-validate Histogram::new / from_parts contracts so malformed
        // input surfaces as an error, not a panic.
        if bounds.is_empty() {
            return Err(CheckpointError::Malformed(
                "histogram with no bounds".into(),
            ));
        }
        if !bounds.iter().all(|b| b.is_finite()) || !bounds.windows(2).all(|w| w[0] < w[1]) {
            return Err(CheckpointError::Malformed(
                "histogram bounds not finite and strictly ascending".into(),
            ));
        }
        if counts.len() != bounds.len() + 1 {
            return Err(CheckpointError::Malformed(
                "histogram bucket count mismatch".into(),
            ));
        }
        Ok(Histogram::from_parts(bounds, counts, count, sum, min, max))
    }
}

impl Persist for Metrics {
    fn save(&self, w: &mut Writer) {
        let counters: BTreeMap<String, u64> =
            self.counters().map(|(k, v)| (k.to_string(), v)).collect();
        counters.save(w);
        let histograms: BTreeMap<String, Histogram> = self
            .histograms()
            .map(|(k, h)| (k.to_string(), h.clone()))
            .collect();
        histograms.save(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        let counters = BTreeMap::<String, u64>::load(r)?;
        let histograms = BTreeMap::<String, Histogram>::load(r)?;
        Ok(Metrics::from_parts(counters, histograms))
    }
}

// ---- platforms ------------------------------------------------------------

impl Persist for PlatformKind {
    fn save(&self, w: &mut Writer) {
        w.put_u8(self.index() as u8);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        let i = r.get_u8()? as usize;
        PlatformKind::ALL
            .get(i)
            .copied()
            .ok_or_else(|| CheckpointError::Malformed(format!("PlatformKind index {i}")))
    }
}

impl Persist for GroupId {
    fn save(&self, w: &mut Writer) {
        self.0.save(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        Ok(GroupId(u32::load(r)?))
    }
}

impl Persist for UserId {
    fn save(&self, w: &mut Writer) {
        self.0.save(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        Ok(UserId(u32::load(r)?))
    }
}

persist_struct!(AccountState { joined, banned });

impl Persist for UrlPattern {
    fn save(&self, w: &mut Writer) {
        let i = UrlPattern::ALL
            .iter()
            .position(|p| p == self)
            .expect("pattern present in ALL");
        w.put_u8(i as u8);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        let i = r.get_u8()? as usize;
        UrlPattern::ALL
            .get(i)
            .copied()
            .ok_or_else(|| CheckpointError::Malformed(format!("UrlPattern index {i}")))
    }
}

persist_struct!(InviteCode { pattern, code });

impl Persist for MessageKind {
    fn save(&self, w: &mut Writer) {
        w.put_u8(self.index() as u8);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        let i = r.get_u8()? as usize;
        MessageKind::ALL
            .get(i)
            .copied()
            .ok_or_else(|| CheckpointError::Malformed(format!("MessageKind index {i}")))
    }
}

persist_struct!(Message { sender, at, kind });

// ---- twitter --------------------------------------------------------------

/// Tweets reuse the wire codec the simulated APIs already speak
/// ([`Tweet::encode`]/[`Tweet::decode`]) rather than a second field-level
/// layout; only `is_control` rides alongside, since the wire form does not
/// carry it.
// lint:allow(D9) Tweet rides the wire codec (encode/decode), whose field coverage the codec round-trip tests pin
impl Persist for Tweet {
    fn save(&self, w: &mut Writer) {
        self.encode().save(w);
        self.is_control.save(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        let wire = String::load(r)?;
        let is_control = bool::load(r)?;
        let mut tweet = Tweet::decode(&wire)
            .ok_or_else(|| CheckpointError::Malformed("undecodable tweet record".into()))?;
        tweet.is_control = is_control;
        Ok(tweet)
    }
}

// ---- workload: ecosystem delta -------------------------------------------

persist_struct!(EcosystemDelta {
    accounts,
    api_buckets,
    materialized
});

// ---- workload: scenario configuration -------------------------------------

persist_struct!(TweetFeatureParams {
    p_hashtag,
    p_hashtag2,
    p_mention,
    p_mention2,
    p_retweet
});

persist_struct!(ShareCountParams {
    p_once,
    alpha,
    x_min,
    cap
});

persist_struct!(StalenessParams {
    p_same_day,
    tail_median_days,
    tail_sigma
});

persist_struct!(RevocationParams {
    p_ttl,
    ttl_days,
    p_instant,
    instant_mean_days,
    p_slow,
    slow_mean_days
});

persist_struct!(SizeParams {
    median,
    sigma,
    cap,
    p_grow,
    p_shrink,
    drift_median,
    drift_sigma,
    online_mean,
    online_sd
});

persist_struct!(ActivityParams {
    msgs_per_day_median,
    msgs_per_day_sigma,
    max_messages_per_group,
    sender_zipf,
    poster_fraction,
    msgs_size_exponent,
    poster_churn_per_year,
    kind_weights
});

persist_struct!(PlatformParams {
    n_group_urls,
    n_tweets_target,
    n_tweet_authors,
    join_budget,
    creators_per_group,
    p_channel,
    p_member_list_hidden,
    p_phone_visible,
    p_linked_any,
    features,
    shares,
    staleness,
    revocation,
    size,
    activity
});

persist_struct!(ControlParams {
    n_tweets,
    n_authors,
    features
});

persist_struct!(ScenarioConfig {
    seed,
    scale,
    platforms,
    control,
    search_miss,
    stream_miss,
    p_noise_url,
    p_cross_platform
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{decode_snapshot, encode_snapshot};

    fn round_trip<T: Persist + PartialEq + std::fmt::Debug>(value: T) {
        let back: T = decode_snapshot(&encode_snapshot(&value)).unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn simnet_state_round_trips() {
        round_trip(SimTime(123_456));
        round_trip(SimDuration(789));
        round_trip(TokenBucketState {
            capacity: 2_000.0,
            tokens: 137.25,
            rate: 400.0,
            last: SimTime(99),
        });
        round_trip(FaultInjector::new(0.01, 0.005));
        for s in [
            Status::Ok,
            Status::NotFound,
            Status::Gone,
            Status::RateLimited(30),
            Status::Forbidden,
            Status::ServerError,
        ] {
            round_trip(Some(s));
        }
    }

    #[test]
    fn client_state_round_trips() {
        let mut by_status = BTreeMap::new();
        by_status.insert("ok".to_string(), 10u64);
        let state = ClientState {
            bucket: TokenBucketState {
                capacity: 200.0,
                tokens: 3.5,
                rate: 50.0,
                last: SimTime(7),
            },
            rng: [1, 2, 3, 4],
            waited: SimDuration(60),
            trace: TraceState {
                capacity: 8,
                total: 11,
                dropped_attempts: 1,
                by_status,
                by_endpoint: BTreeMap::new(),
                entries: vec![TraceEntry {
                    at: SimTime(5),
                    endpoint: "twitter/search".into(),
                    status: Some(Status::RateLimited(15)),
                    latency: SimDuration(2),
                    attempt: 3,
                }],
                transitions: vec![BreakerTransition {
                    at: SimTime(6),
                    prefix: "twitter".into(),
                    from: BreakerPhase::Closed,
                    to: BreakerPhase::Open,
                }],
                breaker_fast_fails: 2,
            },
            rate_clock: SimTime(9),
            burst_rng: [5, 6, 7, 8],
            burst_bad: true,
            breakers: [
                (
                    "twitter".to_string(),
                    BreakerState::Open { until: SimTime(99) },
                ),
                (
                    "whatsapp".to_string(),
                    BreakerState::Closed {
                        consecutive_failures: 3,
                    },
                ),
            ]
            .into_iter()
            .collect(),
            corrupt_rng: [9, 10, 11, 12],
            last_ok_body: Some("tw-search\nn: 0".into()),
            corrupted: 4,
        };
        round_trip(state);
    }

    #[test]
    fn resilience_types_round_trip() {
        for p in [
            FaultProfile::Calm,
            FaultProfile::Bursty,
            FaultProfile::Outage,
        ] {
            round_trip(p);
        }
        for p in [
            CorruptionProfile::Calm,
            CorruptionProfile::Noisy,
            CorruptionProfile::Hostile,
        ] {
            round_trip(p);
        }
        round_trip(Some(OutageSpec {
            start_day: 5,
            days: 3,
            ban: true,
        }));
        round_trip(BreakerState::HalfOpen);
        for phase in [
            BreakerPhase::Closed,
            BreakerPhase::Open,
            BreakerPhase::HalfOpen,
        ] {
            round_trip(phase);
        }
        assert!(matches!(
            BreakerState::load(&mut Reader::new(&[7])),
            Err(CheckpointError::Malformed(_))
        ));
        assert!(matches!(
            FaultProfile::load(&mut Reader::new(&[3])),
            Err(CheckpointError::Malformed(_))
        ));
    }

    #[test]
    fn metrics_round_trip_exactly() {
        let mut m = Metrics::new();
        m.add("a.count", 7);
        m.incr("b.count");
        m.observe("lat", 0.5, &[0.1, 1.0, 10.0]);
        m.observe("lat", 25.0, &[0.1, 1.0, 10.0]);
        round_trip(m);
        round_trip(Metrics::new());
    }

    #[test]
    fn corrupt_histogram_is_error_not_panic() {
        // Encode a histogram, then re-encode a payload with unsorted bounds.
        let mut w = Writer::new();
        vec![5.0f64, 1.0].save(&mut w); // descending bounds
        vec![0u64, 0, 0].save(&mut w);
        0u64.save(&mut w);
        0.0f64.save(&mut w);
        Option::<f64>::None.save(&mut w);
        Option::<f64>::None.save(&mut w);
        let bytes = w.into_bytes();
        assert!(matches!(
            Histogram::load(&mut Reader::new(&bytes)),
            Err(CheckpointError::Malformed(_))
        ));
    }

    #[test]
    fn platform_types_round_trip() {
        for kind in PlatformKind::ALL {
            round_trip(kind);
        }
        round_trip(GroupId(42));
        round_trip(UserId(7));
        for pattern in UrlPattern::ALL {
            round_trip(InviteCode {
                pattern,
                code: "AbC123".into(),
            });
        }
        for kind in MessageKind::ALL {
            round_trip(Message {
                sender: UserId(1),
                at: SimTime(2),
                kind,
            });
        }
        round_trip(AccountState {
            joined: vec![(GroupId(1), SimTime(10)), (GroupId(2), SimTime(20))],
            banned: true,
        });
    }

    #[test]
    fn bad_enum_indexes_are_malformed() {
        assert!(matches!(
            PlatformKind::load(&mut Reader::new(&[3])),
            Err(CheckpointError::Malformed(_))
        ));
        assert!(matches!(
            UrlPattern::load(&mut Reader::new(&[6])),
            Err(CheckpointError::Malformed(_))
        ));
        assert!(matches!(
            MessageKind::load(&mut Reader::new(&[9])),
            Err(CheckpointError::Malformed(_))
        ));
        assert!(matches!(
            Status::load(&mut Reader::new(&[6])),
            Err(CheckpointError::Malformed(_))
        ));
    }

    #[test]
    fn tweets_round_trip_via_wire_codec() {
        use chatlens_simnet::time::SimTime;
        use chatlens_twitter::{Lang, TweetId, TwitterUserId};
        let tweet = Tweet {
            id: TweetId(31337),
            author: TwitterUserId(99),
            at: SimTime(1000),
            lang: Lang::Pt,
            hashtags: 2,
            mentions: 1,
            retweet_of: Some(TweetId(5)),
            urls: vec!["https://chat.whatsapp.com/AAAAAAAAAAAAAAAAAAAAAA".into()],
            tokens: vec![1, 2, 3],
            is_control: false,
        };
        round_trip(tweet.clone());
        let mut control = tweet;
        control.is_control = true;
        control.urls.clear();
        round_trip(control);
    }

    #[test]
    fn scenario_config_round_trips() {
        round_trip(ScenarioConfig::tiny());
        round_trip(ScenarioConfig::paper());
    }

    #[test]
    fn ecosystem_delta_round_trips() {
        let delta = EcosystemDelta {
            accounts: [
                vec![AccountState {
                    joined: vec![(GroupId(3), SimTime(4))],
                    banned: false,
                }],
                vec![],
                vec![AccountState::default()],
            ],
            api_buckets: [
                None,
                Some(TokenBucketState {
                    capacity: 1.0,
                    tokens: 0.25,
                    rate: 0.5,
                    last: SimTime(77),
                }),
                None,
            ],
            materialized: [vec![GroupId(1), GroupId(9)], vec![], vec![GroupId(0)]],
        };
        round_trip(delta);
    }
}
