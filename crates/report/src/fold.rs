//! Rendering of the incremental-analysis fold summary (`repro run
//! --analysis incremental`).

use crate::table::{fmt_bytes, fmt_count, Table};

/// One row of the fold summary: a fold's accounting as reported by the
/// driver after `finish`.
#[derive(Debug, Clone, PartialEq)]
pub struct FoldSummaryRow {
    /// Fold name (registration order is preserved by the caller).
    pub name: String,
    /// Final encoded state size in bytes.
    pub state_bytes: u64,
    /// Total microseconds spent folding days into this analysis.
    pub fold_micros: u64,
    /// Microseconds spent rendering the final fragment.
    pub finish_micros: u64,
    /// Short digest of the rendered fragment (parity spot-check against
    /// a batch run's fragment digest).
    pub digest: String,
}

/// Render the per-fold summary table: state sizes, per-stage timings and
/// fragment digests, with a peak-state/days headline.
pub fn fold_summary(rows: &[FoldSummaryRow], peak_state_bytes: u64, days_folded: u32) -> Table {
    let mut t = Table::new(format!(
        "Incremental analysis folds — {days_folded} day(s) folded, peak state {}",
        fmt_bytes(peak_state_bytes)
    ))
    .header([
        "fold",
        "state",
        "fold \u{b5}s",
        "finish \u{b5}s",
        "fragment",
    ]);
    for r in rows {
        t.row([
            r.name.clone(),
            fmt_bytes(r.state_bytes),
            fmt_count(r.fold_micros),
            fmt_count(r.finish_micros),
            r.digest.clone(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_lists_every_fold_with_headline() {
        let rows = vec![
            FoldSummaryRow {
                name: "discovery".into(),
                state_bytes: 2048,
                fold_micros: 1500,
                finish_micros: 90,
                digest: "ab12cd34ef56".into(),
            },
            FoldSummaryRow {
                name: "stats".into(),
                state_bytes: 64,
                fold_micros: 12,
                finish_micros: 5,
                digest: "0011223344aa".into(),
            },
        ];
        let s = fold_summary(&rows, 4096, 38).render();
        assert!(s.contains("38 day(s) folded"));
        assert!(s.contains("4.0 KiB"));
        assert!(s.contains("discovery"));
        assert!(s.contains("ab12cd34ef56"));
        assert!(s.contains("1,500"));
        // Byte columns are lossless: the exact counts round-trip out of
        // the rendered table (no float approximation in accounting).
        assert!(s.contains("(4,096 B)"), "headline peak must be exact");
        assert!(s.contains("(2,048 B)"), "state column must be exact");
        assert_eq!(crate::table::parse_bytes("4.0 KiB (4,096 B)"), Some(4096));
    }
}
