//! Terminal CDF plots: the figures of the paper, rendered as text.
//!
//! Multiple series share one axis; x can be logarithmic (member counts and
//! share counts span five orders of magnitude, exactly why the paper's
//! CDF figures use log axes).

use chatlens_analysis::Ecdf;

/// Markers assigned to series in order.
const MARKERS: [char; 5] = ['*', '+', 'o', 'x', '#'];

/// Render one or more ECDFs as an ASCII plot of `width`×`height`
/// characters (plus axes). `log_x` plots x on a log10 scale (values < 1
/// are clamped to 1).
pub fn plot_cdfs(
    title: &str,
    series: &[(&str, &Ecdf)],
    width: usize,
    height: usize,
    log_x: bool,
) -> String {
    let width = width.clamp(16, 200);
    let height = height.clamp(4, 60);
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let nonempty: Vec<&(&str, &Ecdf)> = series.iter().filter(|(_, e)| !e.is_empty()).collect();
    if nonempty.is_empty() {
        out.push_str("(no data)\n");
        return out;
    }
    let xmax = nonempty
        .iter()
        .map(|(_, e)| e.max().unwrap_or(1.0))
        .fold(1.0f64, f64::max);
    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, ecdf)) in nonempty.iter().enumerate() {
        let marker = MARKERS[si % MARKERS.len()];
        let mut marks: Vec<(usize, usize)> = Vec::with_capacity(width);
        for col in 0..width {
            // Invert: which value reaches this x position?
            let xfrac = col as f64 / (width - 1) as f64;
            let value = if log_x {
                10f64.powf(xfrac * xmax.max(1.0).log10())
            } else {
                xfrac * xmax
            };
            let f = ecdf.fraction_at_most(value);
            let row = ((1.0 - f) * (height - 1) as f64).round() as usize;
            marks.push((row.min(height - 1), col));
        }
        for (row, col) in marks {
            grid[row][col] = marker;
        }
    }
    for (r, row) in grid.iter().enumerate() {
        let y = 1.0 - r as f64 / (height - 1) as f64;
        out.push_str(&format!("{y:5.2} |"));
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("      +{}\n", "-".repeat(width)));
    let xlabel = if log_x {
        format!("x: 1 .. {xmax:.0} (log scale)")
    } else {
        format!("x: 0 .. {xmax:.0}")
    };
    out.push_str(&format!("       {xlabel}\n"));
    for (si, (name, _)) in nonempty.iter().enumerate() {
        out.push_str(&format!(
            "       {} {}\n",
            MARKERS[si % MARKERS.len()],
            name
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ecdf(range: std::ops::RangeInclusive<u64>) -> Ecdf {
        Ecdf::from_ints(range)
    }

    #[test]
    fn renders_axes_and_legend() {
        let a = ecdf(1..=100);
        let b = ecdf(1..=10_000);
        let s = plot_cdfs("demo", &[("small", &a), ("large", &b)], 40, 10, true);
        assert!(s.starts_with("demo\n"));
        assert!(s.contains(" 1.00 |"));
        assert!(s.contains(" 0.00 |"));
        assert!(s.contains("log scale"));
        assert!(s.contains("* small"));
        assert!(s.contains("+ large"));
        // Every plot row has the axis prefix.
        assert_eq!(s.lines().filter(|l| l.contains('|')).count(), 10);
    }

    #[test]
    fn smaller_distribution_sits_left_of_larger() {
        // At mid-plot the small series should already be near 1.0 while
        // the large one is still climbing: find the row containing '*' at
        // the top region.
        let a = ecdf(1..=10);
        let b = ecdf(1..=10_000);
        let s = plot_cdfs("d", &[("a", &a), ("b", &b)], 60, 12, true);
        let top_rows: Vec<&str> = s.lines().skip(1).take(3).collect();
        assert!(
            top_rows.iter().any(|l| l.contains('*')),
            "small series reaches the top early:\n{s}"
        );
    }

    #[test]
    fn empty_series_handled() {
        let e = chatlens_analysis::Ecdf::new(vec![]);
        let s = plot_cdfs("empty", &[("none", &e)], 30, 8, false);
        assert!(s.contains("(no data)"));
    }

    #[test]
    fn linear_scale_label() {
        let a = ecdf(1..=50);
        let s = plot_cdfs("d", &[("a", &a)], 30, 8, false);
        assert!(s.contains("x: 0 .. 50"));
        assert!(!s.contains("log"));
    }

    #[test]
    fn dimensions_clamped() {
        let a = ecdf(1..=5);
        let s = plot_cdfs("d", &[("a", &a)], 1, 1, false);
        // Clamped to minimums, still well-formed.
        assert!(s.lines().count() >= 6);
    }
}
