//! ASCII table rendering with width-aware alignment.

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A new table with a title.
    pub fn new(title: impl Into<String>) -> Table {
        Table {
            title: title.into(),
            header: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Set the column headers.
    pub fn header<I, S>(mut self, cols: I) -> Table
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.header = cols.into_iter().map(Into::into).collect();
        self
    }

    /// Append a row (shorter rows are right-padded with empty cells).
    pub fn row<I, S>(&mut self, cells: I) -> &mut Table
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to text. The first column is left-aligned, the rest right-
    /// aligned (the usual look of numeric tables).
    pub fn render(&self) -> String {
        let ncols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.header.len()))
            .max()
            .unwrap_or(0);
        fn cell(row: &[String], c: usize) -> &str {
            row.get(c).map(String::as_str).unwrap_or("")
        }
        let widths: Vec<usize> = (0..ncols)
            .map(|c| {
                let header_w = self.header.get(c).map(|h| h.chars().count()).unwrap_or(0);
                self.rows
                    .iter()
                    .map(|row| cell(row, c).chars().count())
                    .fold(header_w, usize::max)
            })
            .collect();
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&self.title);
            out.push('\n');
        }
        let render_row = |cells: &Vec<String>| -> String {
            let mut line = String::new();
            for (c, width) in widths.iter().enumerate() {
                if c > 0 {
                    line.push_str("  ");
                }
                let text = cell(cells, c);
                let pad = width.saturating_sub(text.chars().count());
                if c == 0 {
                    line.push_str(text);
                    line.push_str(&" ".repeat(pad));
                } else {
                    line.push_str(&" ".repeat(pad));
                    line.push_str(text);
                }
            }
            line.trim_end().to_string()
        };
        if !self.header.is_empty() {
            out.push_str(&render_row(&self.header));
            out.push('\n');
            out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
            out.push('\n');
        }
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }
}

/// Format a count with thousands separators (`1234567` → `1,234,567`).
pub fn fmt_count(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, ch) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(ch);
    }
    out
}

/// Format a fraction as a percentage with one decimal (`0.273` → `27.3%`).
pub fn fmt_pct(f: f64) -> String {
    format!("{:.1}%", f * 100.0)
}

/// Format a byte count losslessly: a human-readable binary unit
/// followed by the exact count (`4096` → `4.0 KiB (4,096 B)`); exact
/// counts below 1 KiB stand alone (`512` → `512 B`). The parenthesized
/// count round-trips the input byte-for-byte — memory-budget accounting
/// must never be reported through lossy float formatting.
pub fn fmt_bytes(n: u64) -> String {
    const UNITS: [&str; 4] = ["KiB", "MiB", "GiB", "TiB"];
    if n < 1024 {
        return format!("{n} B");
    }
    let mut value = n as f64 / 1024.0;
    let mut unit = 0usize;
    while value >= 1024.0 && unit + 1 < UNITS.len() {
        value /= 1024.0;
        unit += 1;
    }
    format!("{value:.1} {} ({} B)", UNITS[unit], fmt_count(n))
}

/// Parse the exact byte count back out of a [`fmt_bytes`] rendering.
/// The inverse of `fmt_bytes` for every `u64` — the round-trip law the
/// unit tests pin down.
pub fn parse_bytes(s: &str) -> Option<u64> {
    let digits: String = match (s.rfind('('), s.rfind(" B)")) {
        // "4.0 KiB (4,096 B)" — exact count inside the parentheses.
        (Some(open), Some(close)) if open < close => s[open + 1..close]
            .chars()
            .filter(|c| c.is_ascii_digit())
            .collect(),
        // "512 B" — already exact.
        _ => s
            .strip_suffix(" B")?
            .chars()
            .filter(|c| c.is_ascii_digit())
            .collect(),
    };
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new("Demo").header(["name", "count"]);
        t.row(["alpha", "1"]);
        t.row(["b", "1000"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "Demo");
        assert!(lines[1].contains("name"));
        assert!(lines[2].chars().all(|c| c == '-'));
        assert!(lines[3].starts_with("alpha"));
        assert!(lines[4].ends_with("1000"));
        // Right-aligned numeric column: the "1" lines up with "1000"'s end.
        assert_eq!(lines[3].len(), lines[1].len());
    }

    #[test]
    fn tolerates_ragged_rows() {
        let mut t = Table::new("").header(["a", "b", "c"]);
        t.row(["x"]);
        t.row(["y", "2", "3"]);
        let s = t.render();
        assert!(s.contains('y'));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = Table::new("T").header(["h"]);
        let s = t.render();
        assert!(s.contains('h'));
        assert!(t.is_empty());
    }

    #[test]
    fn count_formatting() {
        assert_eq!(fmt_count(0), "0");
        assert_eq!(fmt_count(999), "999");
        assert_eq!(fmt_count(1_000), "1,000");
        assert_eq!(fmt_count(351_535), "351,535");
        assert_eq!(fmt_count(8_255_069), "8,255,069");
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(fmt_pct(0.273), "27.3%");
        assert_eq!(fmt_pct(1.0), "100.0%");
        assert_eq!(fmt_pct(0.0068), "0.7%");
    }

    #[test]
    fn byte_formatting_is_lossless() {
        assert_eq!(fmt_bytes(0), "0 B");
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(1023), "1023 B");
        assert_eq!(fmt_bytes(4096), "4.0 KiB (4,096 B)");
        assert_eq!(fmt_bytes(1_048_576), "1.0 MiB (1,048,576 B)");
        assert_eq!(fmt_bytes(753_901_573_241), "702.1 GiB (753,901,573,241 B)");
    }

    #[test]
    fn byte_formatting_round_trips_exactly() {
        // The parenthesized count is the law: parse_bytes ∘ fmt_bytes
        // is the identity, including where the float approximation
        // collides (consecutive counts rendering the same "4.0 KiB").
        for n in [
            0u64,
            1,
            512,
            1023,
            1024,
            1025,
            4095,
            4096,
            4097,
            1_048_575,
            1_048_577,
            u64::MAX,
        ] {
            assert_eq!(parse_bytes(&fmt_bytes(n)), Some(n), "n={n}");
        }
    }
}
