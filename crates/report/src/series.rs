//! Series rendering: CDF plots as text, CSV export, sparklines.

/// Render `(x, y)` points as CSV with the given column names.
pub fn to_csv(columns: (&str, &str), points: &[(f64, f64)]) -> String {
    let mut out = String::with_capacity(points.len() * 16 + 16);
    out.push_str(columns.0);
    out.push(',');
    out.push_str(columns.1);
    out.push('\n');
    for (x, y) in points {
        out.push_str(&format!("{x},{y}\n"));
    }
    out
}

/// Render several named series over a shared day axis as CSV
/// (`day,name1,name2,...`). All series must be the same length.
///
/// # Panics
/// Panics if series lengths differ.
pub fn days_csv(names: &[&str], series: &[Vec<u64>]) -> String {
    assert_eq!(names.len(), series.len(), "one name per series");
    let len = series.first().map(Vec::len).unwrap_or(0);
    for s in series {
        assert_eq!(s.len(), len, "all series share the day axis");
    }
    let mut out = String::from("day");
    for n in names {
        out.push(',');
        out.push_str(n);
    }
    out.push('\n');
    for day in 0..len {
        out.push_str(&day.to_string());
        for s in series {
            out.push(',');
            out.push_str(&s[day].to_string());
        }
        out.push('\n');
    }
    out
}

/// A one-line unicode sparkline of a series (8 levels).
pub fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let max = values.iter().cloned().fold(f64::MIN, f64::max);
    let min = values.iter().cloned().fold(f64::MAX, f64::min);
    let span = (max - min).max(1e-12);
    values
        .iter()
        .map(|v| {
            let level = (((v - min) / span) * 7.0).round() as usize;
            BARS[level.min(7)]
        })
        .collect()
}

/// Summarise a CDF at the quantile grid the paper's figures are read at.
pub fn cdf_summary(label: &str, ecdf: &chatlens_analysis::Ecdf) -> String {
    if ecdf.is_empty() {
        return format!("{label}: (no samples)\n");
    }
    format!(
        "{label}: n={} min={:.1} p25={:.1} median={:.1} p75={:.1} p90={:.1} p99={:.1} max={:.1}\n",
        ecdf.len(),
        ecdf.min().unwrap_or(0.0),
        ecdf.quantile(0.25).unwrap_or(0.0),
        ecdf.median().unwrap_or(0.0),
        ecdf.quantile(0.75).unwrap_or(0.0),
        ecdf.quantile(0.90).unwrap_or(0.0),
        ecdf.quantile(0.99).unwrap_or(0.0),
        ecdf.max().unwrap_or(0.0),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_points() {
        let csv = to_csv(("x", "F"), &[(1.0, 0.5), (2.0, 1.0)]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines, vec!["x,F", "1,0.5", "2,1"]);
    }

    #[test]
    fn day_series_csv() {
        let csv = days_csv(&["all", "new"], &[vec![5, 6], vec![1, 2]]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines, vec!["day,all,new", "0,5,1", "1,6,2"]);
    }

    #[test]
    #[should_panic(expected = "share the day axis")]
    fn day_series_length_mismatch_panics() {
        let _ = days_csv(&["a", "b"], &[vec![1], vec![1, 2]]);
    }

    #[test]
    fn sparkline_shape() {
        let s = sparkline(&[0.0, 0.5, 1.0]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
        assert_eq!(sparkline(&[]), "");
        // Constant series doesn't panic (zero span guarded).
        assert_eq!(sparkline(&[3.0, 3.0]).chars().count(), 2);
    }

    #[test]
    fn cdf_summary_line() {
        let e = chatlens_analysis::Ecdf::from_ints(1..=100);
        let s = cdf_summary("demo", &e);
        assert!(s.contains("n=100"));
        assert!(s.contains("median=50.0"));
        let empty = chatlens_analysis::Ecdf::new(vec![]);
        assert!(cdf_summary("e", &empty).contains("no samples"));
    }
}
