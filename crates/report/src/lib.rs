//! # chatlens-report — rendering of tables, series, and comparisons
//!
//! Small, dependency-free presentation layer: ASCII tables ([`table`]),
//! CDF/series rendering and CSV export ([`series`]), and structured
//! paper-vs-measured comparison records ([`compare`]) used to fill
//! EXPERIMENTS.md.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod compare;
pub mod fold;
pub mod plot;
pub mod series;
pub mod table;

pub use compare::{Comparison, Direction};
pub use fold::{fold_summary, FoldSummaryRow};
pub use table::Table;
