//! Paper-vs-measured comparison records — the raw material of
//! EXPERIMENTS.md.
//!
//! The reproduction is not expected to match the paper's absolute numbers
//! (the substrate is a simulator, §2 of DESIGN.md), but the *shape* must
//! hold: who wins, by roughly what factor, where the thresholds fall. A
//! [`Comparison`] captures one published value, the measured value, and a
//! verdict under a relative tolerance.

use std::fmt;

/// How a measured value may be compared to the paper's.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Measured should be close to the paper's value (relative band).
    Near,
    /// Measured should be at least the paper's value.
    AtLeast,
    /// Measured should be at most the paper's value.
    AtMost,
}

/// One paper-vs-measured record.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Which table/figure this belongs to (e.g. `"Fig 6"`).
    pub artifact: String,
    /// Human description (e.g. `"Discord revoked URLs"`).
    pub quantity: String,
    /// The paper's published value.
    pub paper: f64,
    /// What this run measured.
    pub measured: f64,
    /// Comparison mode.
    pub direction: Direction,
    /// Relative tolerance for [`Direction::Near`] (e.g. 0.25 = ±25%).
    pub tolerance: f64,
}

impl Comparison {
    /// A `Near` comparison.
    pub fn near(
        artifact: impl Into<String>,
        quantity: impl Into<String>,
        paper: f64,
        measured: f64,
        tolerance: f64,
    ) -> Comparison {
        Comparison {
            artifact: artifact.into(),
            quantity: quantity.into(),
            paper,
            measured,
            direction: Direction::Near,
            tolerance,
        }
    }

    /// Whether the measured value satisfies the comparison.
    pub fn holds(&self) -> bool {
        match self.direction {
            Direction::Near => {
                if self.paper == 0.0 {
                    return self.measured.abs() <= self.tolerance;
                }
                let rel = (self.measured - self.paper).abs() / self.paper.abs();
                rel <= self.tolerance
            }
            Direction::AtLeast => self.measured >= self.paper,
            Direction::AtMost => self.measured <= self.paper,
        }
    }

    /// Relative deviation from the paper value (0 when paper is 0).
    pub fn deviation(&self) -> f64 {
        if self.paper == 0.0 {
            0.0
        } else {
            (self.measured - self.paper) / self.paper.abs()
        }
    }
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let verdict = if self.holds() { "OK" } else { "DRIFT" };
        write!(
            f,
            "[{verdict}] {} | {}: paper {:.4}, measured {:.4} ({:+.1}%)",
            self.artifact,
            self.quantity,
            self.paper,
            self.measured,
            self.deviation() * 100.0
        )
    }
}

/// Render a set of comparisons as a markdown table (EXPERIMENTS.md rows).
pub fn markdown_table(comparisons: &[Comparison]) -> String {
    let mut out = String::from("| Artifact | Quantity | Paper | Measured | Δ | Verdict |\n");
    out.push_str("|---|---|---|---|---|---|\n");
    for c in comparisons {
        out.push_str(&format!(
            "| {} | {} | {:.4} | {:.4} | {:+.1}% | {} |\n",
            c.artifact,
            c.quantity,
            c.paper,
            c.measured,
            c.deviation() * 100.0,
            if c.holds() { "ok" } else { "drift" }
        ));
    }
    out
}

/// Count of comparisons that hold.
pub fn holding(comparisons: &[Comparison]) -> usize {
    comparisons.iter().filter(|c| c.holds()).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn near_within_band() {
        let c = Comparison::near("Fig 6", "revoked", 0.684, 0.70, 0.10);
        assert!(c.holds());
        let c = Comparison::near("Fig 6", "revoked", 0.684, 0.30, 0.10);
        assert!(!c.holds());
    }

    #[test]
    fn near_zero_paper_value() {
        let c = Comparison::near("X", "q", 0.0, 0.005, 0.01);
        assert!(c.holds());
        let c = Comparison::near("X", "q", 0.0, 0.5, 0.01);
        assert!(!c.holds());
        assert_eq!(c.deviation(), 0.0);
    }

    #[test]
    fn directional_comparisons() {
        let c = Comparison {
            artifact: "T".into(),
            quantity: "q".into(),
            paper: 10.0,
            measured: 12.0,
            direction: Direction::AtLeast,
            tolerance: 0.0,
        };
        assert!(c.holds());
        let c = Comparison {
            direction: Direction::AtMost,
            ..c
        };
        assert!(!c.holds());
    }

    #[test]
    fn display_and_markdown() {
        let cs = vec![
            Comparison::near("Fig 2", "share-once", 0.50, 0.52, 0.10),
            Comparison::near("Fig 2", "share-once DC", 0.62, 0.10, 0.10),
        ];
        assert!(cs[0].to_string().starts_with("[OK]"));
        assert!(cs[1].to_string().starts_with("[DRIFT]"));
        let md = markdown_table(&cs);
        assert_eq!(md.lines().count(), 4);
        assert!(md.contains("| ok |"));
        assert!(md.contains("| drift |"));
        assert_eq!(holding(&cs), 1);
    }
}
