//! The serialization half of the serde data model: `Serialize`,
//! `Serializer`, the seven compound-serializer traits, `Impossible`, and
//! `Error` — everything a hand-written format writer needs.

use std::fmt::Display;
use std::marker::PhantomData;

/// Trait for serialization errors; `custom` builds one from any message.
pub trait Error: Sized + std::error::Error {
    /// Constructs an error from a displayable message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A data structure that can be serialized into any serde data format.
pub trait Serialize {
    /// Serialize `self` with the given serializer.
    fn serialize<S>(&self, serializer: S) -> Result<S::Ok, S::Error>
    where
        S: Serializer;
}

/// A data format that can serialize the serde data model.
pub trait Serializer: Sized {
    /// Output produced on success.
    type Ok;
    /// Error produced on failure.
    type Error: Error;
    /// Compound serializer for sequences.
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for tuples.
    type SerializeTuple: SerializeTuple<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for tuple structs.
    type SerializeTupleStruct: SerializeTupleStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for tuple enum variants.
    type SerializeTupleVariant: SerializeTupleVariant<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for maps.
    type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for structs.
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for struct enum variants.
    type SerializeStructVariant: SerializeStructVariant<Ok = Self::Ok, Error = Self::Error>;

    /// Serialize a `bool`.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `i8`.
    fn serialize_i8(self, v: i8) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `i16`.
    fn serialize_i16(self, v: i16) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `i32`.
    fn serialize_i32(self, v: i32) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `i64`.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    /// Serialize a `u8`.
    fn serialize_u8(self, v: u8) -> Result<Self::Ok, Self::Error>;
    /// Serialize a `u16`.
    fn serialize_u16(self, v: u16) -> Result<Self::Ok, Self::Error>;
    /// Serialize a `u32`.
    fn serialize_u32(self, v: u32) -> Result<Self::Ok, Self::Error>;
    /// Serialize a `u64`.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `f32`.
    fn serialize_f32(self, v: f32) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `f64`.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    /// Serialize a `char`.
    fn serialize_char(self, v: char) -> Result<Self::Ok, Self::Error>;
    /// Serialize a string slice.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    /// Serialize raw bytes.
    fn serialize_bytes(self, v: &[u8]) -> Result<Self::Ok, Self::Error>;
    /// Serialize `None`.
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    /// Serialize `Some(value)`.
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error>;
    /// Serialize `()`.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    /// Serialize a unit struct like `struct Unit;`.
    fn serialize_unit_struct(self, name: &'static str) -> Result<Self::Ok, Self::Error>;
    /// Serialize a unit enum variant.
    fn serialize_unit_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serialize a newtype struct like `struct Wrapper(T);`.
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serialize a newtype enum variant.
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    /// Begin a variable-length sequence.
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    /// Begin a fixed-length tuple.
    fn serialize_tuple(self, len: usize) -> Result<Self::SerializeTuple, Self::Error>;
    /// Begin a tuple struct.
    fn serialize_tuple_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleStruct, Self::Error>;
    /// Begin a tuple enum variant.
    fn serialize_tuple_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleVariant, Self::Error>;
    /// Begin a map.
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
    /// Begin a struct.
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
    /// Begin a struct enum variant.
    fn serialize_struct_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStructVariant, Self::Error>;
}

/// Returned by `Serializer::serialize_seq`.
pub trait SerializeSeq {
    /// Output produced on success.
    type Ok;
    /// Error produced on failure.
    type Error: Error;
    /// Serialize one element.
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finish the sequence.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Returned by `Serializer::serialize_tuple`.
pub trait SerializeTuple {
    /// Output produced on success.
    type Ok;
    /// Error produced on failure.
    type Error: Error;
    /// Serialize one element.
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finish the tuple.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Returned by `Serializer::serialize_tuple_struct`.
pub trait SerializeTupleStruct {
    /// Output produced on success.
    type Ok;
    /// Error produced on failure.
    type Error: Error;
    /// Serialize one field.
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finish the tuple struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Returned by `Serializer::serialize_tuple_variant`.
pub trait SerializeTupleVariant {
    /// Output produced on success.
    type Ok;
    /// Error produced on failure.
    type Error: Error;
    /// Serialize one field.
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finish the variant.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Returned by `Serializer::serialize_map`.
pub trait SerializeMap {
    /// Output produced on success.
    type Ok;
    /// Error produced on failure.
    type Error: Error;
    /// Serialize one key.
    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), Self::Error>;
    /// Serialize one value.
    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finish the map.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Returned by `Serializer::serialize_struct`.
pub trait SerializeStruct {
    /// Output produced on success.
    type Ok;
    /// Error produced on failure.
    type Error: Error;
    /// Serialize one named field.
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Finish the struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Returned by `Serializer::serialize_struct_variant`.
pub trait SerializeStructVariant {
    /// Output produced on success.
    type Ok;
    /// Error produced on failure.
    type Error: Error;
    /// Serialize one named field.
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Finish the variant.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

enum Void {}

/// An uninhabited compound serializer for formats that reject a category
/// of the data model (`type SerializeMap = Impossible<Ok, Error>`).
pub struct Impossible<Ok, E> {
    void: Void,
    _marker: PhantomData<(Ok, E)>,
}

macro_rules! impossible_impl {
    ($trait_:ident, $($method:ident ( $($arg:ident : $ty:ty),* )),+) => {
        impl<Ok, E: Error> $trait_ for Impossible<Ok, E> {
            type Ok = Ok;
            type Error = E;
            $(fn $method<T: Serialize + ?Sized>(&mut self, $($arg: $ty,)* _value: &T)
                -> Result<(), E>
            {
                match self.void {}
            })+
            fn end(self) -> Result<Ok, E> {
                match self.void {}
            }
        }
    };
}

impossible_impl!(SerializeSeq, serialize_element());
impossible_impl!(SerializeTuple, serialize_element());
impossible_impl!(SerializeTupleStruct, serialize_field());
impossible_impl!(SerializeTupleVariant, serialize_field());
impossible_impl!(SerializeStruct, serialize_field(_key: &'static str));
impossible_impl!(SerializeStructVariant, serialize_field(_key: &'static str));

impl<Ok, E: Error> SerializeMap for Impossible<Ok, E> {
    type Ok = Ok;
    type Error = E;
    fn serialize_key<T: Serialize + ?Sized>(&mut self, _key: &T) -> Result<(), E> {
        match self.void {}
    }
    fn serialize_value<T: Serialize + ?Sized>(&mut self, _value: &T) -> Result<(), E> {
        match self.void {}
    }
    fn end(self) -> Result<Ok, E> {
        match self.void {}
    }
}

// ---- Serialize impls for the primitive/std types the workspace uses ----

macro_rules! serialize_primitive {
    ($($ty:ty => $method:ident),+ $(,)?) => {
        $(impl Serialize for $ty {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.$method(*self)
            }
        })+
    };
}

serialize_primitive!(
    bool => serialize_bool,
    i8 => serialize_i8,
    i16 => serialize_i16,
    i32 => serialize_i32,
    i64 => serialize_i64,
    u8 => serialize_u8,
    u16 => serialize_u16,
    u32 => serialize_u32,
    u64 => serialize_u64,
    f32 => serialize_f32,
    f64 => serialize_f64,
    char => serialize_char,
);

impl Serialize for isize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_i64(*self as i64)
    }
}

impl Serialize for usize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_u64(*self as u64)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_some(v),
            None => serializer.serialize_none(),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut tup = serializer.serialize_tuple(N)?;
        for item in self {
            tup.serialize_element(item)?;
        }
        tup.end()
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (key, value) in self {
            map.serialize_key(key)?;
            map.serialize_value(value)?;
        }
        map.end()
    }
}

macro_rules! serialize_tuple_impl {
    ($len:expr => $(($idx:tt $name:ident)),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let mut tup = serializer.serialize_tuple($len)?;
                $(tup.serialize_element(&self.$idx)?;)+
                tup.end()
            }
        }
    };
}

serialize_tuple_impl!(1 => (0 A));
serialize_tuple_impl!(2 => (0 A), (1 B));
serialize_tuple_impl!(3 => (0 A), (1 B), (2 C));
serialize_tuple_impl!(4 => (0 A), (1 B), (2 C), (3 D));
