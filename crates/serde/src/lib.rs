//! Vendored offline shim of the `serde` serialization data model.
//!
//! Only the `ser` half is implemented — the workspace's hand-written JSON
//! writer (`chatlens-workload::config_io`) drives `Serialize` impls through
//! the standard `Serializer` trait surface, and the `derive` feature wires
//! up the companion `serde_derive` proc-macro for plain named-field
//! structs. Deserialization is declared (so `#[derive(Deserialize)]`
//! compiles) but intentionally generates nothing: no code in this
//! workspace deserializes.

pub mod ser;

pub use ser::{Serialize, Serializer};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring serde's `Deserialize`. The derive expands to an
/// empty impl set, so this trait exists purely so `use serde::Deserialize`
/// resolves in both the type and macro namespaces, as with real serde.
pub trait Deserialize<'de>: Sized {}
