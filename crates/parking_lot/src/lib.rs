//! Vendored offline shim exposing the subset of the `parking_lot` API this
//! workspace uses, implemented over `std::sync`. The signature difference
//! that matters is that locks never poison: `lock()` returns a guard
//! directly instead of a `Result`.

use std::sync::PoisonError;

/// A mutual-exclusion primitive with parking_lot's non-poisoning `lock()`.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex wrapping `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available. Never poisons:
    /// if a previous holder panicked the data is returned as-is.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (no locking
    /// needed: the `&mut self` receiver guarantees exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

/// A reader-writer lock with parking_lot's non-poisoning API.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock wrapping `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(Vec::new());
        m.lock().push(1);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(5u32);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(l.into_inner(), 6);
    }
}
