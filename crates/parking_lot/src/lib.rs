//! Vendored offline shim exposing the subset of the `parking_lot` API this
//! workspace uses, implemented over `std::sync`. The signature difference
//! that matters is that locks never poison: `lock()` returns a guard
//! directly instead of a `Result`.
//!
//! # Debug-mode lock-order (deadlock) detection
//!
//! Under `cfg(debug_assertions)` every `Mutex`/`RwLock` carries a unique
//! id and each acquisition is run through a lockdep-style order graph:
//!
//! * a **per-thread held-lock stack** records which locks this thread
//!   currently holds and where (`#[track_caller]` acquisition sites);
//! * a **global edge set** records every observed ordering "B acquired
//!   while A held" together with both acquisition sites;
//! * before a thread blocks on a lock, a **cycle check** asks whether the
//!   new edges would close a directed cycle — if so it panics immediately
//!   (instead of deadlocking) with a diagnostic naming the current
//!   acquisition site and the previously recorded opposite-order site.
//!
//! `cargo test` therefore doubles as a deadlock detector: any two code
//! paths that ever acquire the same pair of locks in opposite orders will
//! panic the first time both orders have been seen, even if the unlucky
//! interleaving never fires. Release builds compile all of this out —
//! the structs lose the id field and the guards are plain wrappers.

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

#[cfg(debug_assertions)]
mod order {
    //! The lock-order graph. Only compiled in debug builds.

    use std::cell::RefCell;
    use std::collections::BTreeMap;
    use std::panic::Location;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Mutex, OnceLock};

    /// A `#[track_caller]` acquisition site.
    pub type Site = &'static Location<'static>;

    /// An observed ordering fact: lock pair `(a, b)` plus both sites.
    type Edge = ((u64, u64), (Site, Site));

    /// The full ordering graph: `(a, b) -> (site_a, site_b)`.
    type EdgeMap = BTreeMap<(u64, u64), (Site, Site)>;

    static NEXT_ID: AtomicU64 = AtomicU64::new(1);

    /// A fresh id for a newly constructed lock.
    pub fn next_id() -> u64 {
        NEXT_ID.fetch_add(1, Ordering::Relaxed)
    }

    /// Directed ordering facts: `(a, b) -> (site_a, site_b)` means lock
    /// `b` was acquired at `site_b` while `a` (acquired at `site_a`) was
    /// held. Guarded by a std mutex — never by one of our own locks.
    fn edges() -> &'static Mutex<EdgeMap> {
        static EDGES: OnceLock<Mutex<EdgeMap>> = OnceLock::new();
        EDGES.get_or_init(|| Mutex::new(BTreeMap::new()))
    }

    thread_local! {
        /// Locks this thread currently holds, in acquisition order.
        static HELD: RefCell<Vec<(u64, Site)>> = const { RefCell::new(Vec::new()) };
    }

    /// Is `to` reachable from `from` in the edge graph? Returns the first
    /// edge of a witnessing path (whose sites name a previously seen
    /// acquisition in the opposite order).
    fn reach(g: &EdgeMap, from: u64, to: u64) -> Option<Edge> {
        if let Some(&sites) = g.get(&(from, to)) {
            return Some(((from, to), sites));
        }
        let mut stack = vec![from];
        let mut seen = vec![from];
        let mut first_hop: BTreeMap<u64, Edge> = BTreeMap::new();
        while let Some(node) = stack.pop() {
            for (&(a, b), &sites) in g.range((node, 0)..=(node, u64::MAX)) {
                let hop = *first_hop.get(&node).unwrap_or(&((a, b), sites));
                if b == to {
                    return Some(hop);
                }
                if !seen.contains(&b) {
                    seen.push(b);
                    first_hop.insert(b, hop);
                    stack.push(b);
                }
            }
        }
        None
    }

    /// Run the cycle check and record ordering edges for acquiring `id`
    /// at `site`, **before** blocking on the lock itself — a potential
    /// deadlock becomes an immediate panic, never a hang.
    pub fn before_acquire(id: u64, site: Site) {
        HELD.with(|h| {
            let held = h.borrow();
            if held.is_empty() {
                return;
            }
            let mut g = edges().lock().unwrap_or_else(PoisonErrorExt::recover);
            for &(held_id, held_site) in held.iter() {
                if held_id == id {
                    continue;
                }
                // Adding edge held_id -> id closes a cycle iff held_id is
                // already reachable from id.
                if let Some((_, (prev_a, prev_b))) = reach(&g, id, held_id) {
                    drop(g);
                    panic!(
                        "lock-order cycle detected: acquiring lock #{id} at {site} while \
                         holding lock #{held_id} (acquired at {held_site}), but the \
                         opposite order was previously seen (lock held at {prev_a}, \
                         then acquired at {prev_b})"
                    );
                }
                g.entry((held_id, id)).or_insert((held_site, site));
            }
        });
    }

    /// Record that this thread now holds `id` (acquired at `site`).
    pub fn acquired(id: u64, site: Site) {
        HELD.with(|h| h.borrow_mut().push((id, site)));
    }

    /// Record that this thread released `id` (guards may drop in any
    /// order, so remove the most recent matching entry).
    pub fn released(id: u64) {
        HELD.with(|h| {
            let mut held = h.borrow_mut();
            if let Some(pos) = held.iter().rposition(|&(i, _)| i == id) {
                held.remove(pos);
            }
        });
    }

    /// `unwrap_or_else(PoisonError::into_inner)` for the edge-graph map:
    /// a detector panic mid-check poisons the std mutex; later checks
    /// must keep working.
    trait PoisonErrorExt<G> {
        fn recover(self) -> G;
    }

    impl<G> PoisonErrorExt<G> for std::sync::PoisonError<G> {
        fn recover(self) -> G {
            self.into_inner()
        }
    }
}

/// A mutual-exclusion primitive with parking_lot's non-poisoning `lock()`.
pub struct Mutex<T: ?Sized> {
    #[cfg(debug_assertions)]
    id: u64,
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`]. In debug builds, dropping it pops
/// the lock from the thread's held stack.
pub struct MutexGuard<'a, T: ?Sized> {
    #[cfg(debug_assertions)]
    id: u64,
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(debug_assertions)]
impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        order::released(self.id);
    }
}

impl<T> Mutex<T> {
    /// Creates a new mutex wrapping `value`.
    pub fn new(value: T) -> Self {
        Self {
            #[cfg(debug_assertions)]
            id: order::next_id(),
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available. Never poisons:
    /// if a previous holder panicked the data is returned as-is. In debug
    /// builds a lock-order cycle panics *before* blocking.
    #[track_caller]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(debug_assertions)]
        let site = std::panic::Location::caller();
        #[cfg(debug_assertions)]
        order::before_acquire(self.id, site);
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        #[cfg(debug_assertions)]
        order::acquired(self.id, site);
        MutexGuard {
            #[cfg(debug_assertions)]
            id: self.id,
            inner,
        }
    }

    /// Attempts to acquire the lock without blocking. No cycle check —
    /// a non-blocking attempt cannot deadlock — but a successful guard
    /// still joins the held stack so locks taken while it is held get
    /// ordering edges.
    #[track_caller]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let inner = match self.inner.try_lock() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return None,
        };
        #[cfg(debug_assertions)]
        order::acquired(self.id, std::panic::Location::caller());
        Some(MutexGuard {
            #[cfg(debug_assertions)]
            id: self.id,
            inner,
        })
    }

    /// Returns a mutable reference to the underlying data (no locking
    /// needed: the `&mut self` receiver guarantees exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

/// A reader-writer lock with parking_lot's non-poisoning API.
pub struct RwLock<T: ?Sized> {
    #[cfg(debug_assertions)]
    id: u64,
    inner: std::sync::RwLock<T>,
}

/// Guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    #[cfg(debug_assertions)]
    id: u64,
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    #[cfg(debug_assertions)]
    id: u64,
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(debug_assertions)]
impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        order::released(self.id);
    }
}

#[cfg(debug_assertions)]
impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        order::released(self.id);
    }
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock wrapping `value`.
    pub fn new(value: T) -> Self {
        Self {
            #[cfg(debug_assertions)]
            id: order::next_id(),
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock. Participates in debug lock-order
    /// checking like [`Mutex::lock`] (reader/reader ordering is checked
    /// conservatively: opposite-order read pairs can still deadlock with
    /// a queued writer in between).
    #[track_caller]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(debug_assertions)]
        let site = std::panic::Location::caller();
        #[cfg(debug_assertions)]
        order::before_acquire(self.id, site);
        let inner = self.inner.read().unwrap_or_else(PoisonError::into_inner);
        #[cfg(debug_assertions)]
        order::acquired(self.id, site);
        RwLockReadGuard {
            #[cfg(debug_assertions)]
            id: self.id,
            inner,
        }
    }

    /// Acquires an exclusive write lock, with the same debug lock-order
    /// checking as [`Mutex::lock`].
    #[track_caller]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(debug_assertions)]
        let site = std::panic::Location::caller();
        #[cfg(debug_assertions)]
        order::before_acquire(self.id, site);
        let inner = self.inner.write().unwrap_or_else(PoisonError::into_inner);
        #[cfg(debug_assertions)]
        order::acquired(self.id, site);
        RwLockWriteGuard {
            #[cfg(debug_assertions)]
            id: self.id,
            inner,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(Vec::new());
        m.lock().push(1);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(5u32);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(l.into_inner(), 6);
    }

    #[test]
    fn try_lock_contended_returns_none() {
        let m = Mutex::new(0u8);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    // ---- lock-order detector regression tests (debug builds only) ------

    /// Runs `f` on a fresh thread and returns its panic message, if any.
    #[cfg(debug_assertions)]
    fn panic_message_of(f: impl FnOnce() + Send + 'static) -> Option<String> {
        let err = std::thread::Builder::new()
            .spawn(f)
            .expect("spawn")
            .join()
            .err()?;
        Some(match err.downcast::<String>() {
            Ok(s) => *s,
            Err(err) => err
                .downcast::<&'static str>()
                .map(|s| s.to_string())
                .unwrap_or_else(|_| "<non-string panic>".to_string()),
        })
    }

    #[cfg(debug_assertions)]
    #[test]
    fn opposite_order_acquisition_panics_naming_both_sites() {
        use std::sync::Arc;
        let a = Arc::new(Mutex::new(0u32));
        let b = Arc::new(Mutex::new(0u32));
        // First thread: a then b — records the edge a -> b.
        {
            let (a, b) = (Arc::clone(&a), Arc::clone(&b));
            std::thread::spawn(move || {
                let _ga = a.lock();
                let _gb = b.lock();
            })
            .join()
            .expect("forward order is fine");
        }
        // Second thread: b then a — must panic *before* blocking on `a`
        // (there is no contention here; only the order graph can object).
        let (a, b) = (Arc::clone(&a), Arc::clone(&b));
        let msg = panic_message_of(move || {
            let _gb = b.lock();
            let _ga = a.lock();
        })
        .expect("reverse order must panic");
        assert!(msg.contains("lock-order cycle"), "{msg}");
        // The diagnostic names both acquisition sites (this file).
        assert!(msg.matches(file!()).count() >= 2, "{msg}");
    }

    #[cfg(debug_assertions)]
    #[test]
    fn same_order_acquisition_passes() {
        use std::sync::Arc;
        let a = Arc::new(Mutex::new(0u32));
        let b = Arc::new(Mutex::new(0u32));
        for _ in 0..2 {
            let (a, b) = (Arc::clone(&a), Arc::clone(&b));
            std::thread::spawn(move || {
                let _ga = a.lock();
                let _gb = b.lock();
            })
            .join()
            .expect("consistent order never panics");
        }
    }

    #[cfg(debug_assertions)]
    #[test]
    fn transitive_cycle_is_detected() {
        use std::sync::Arc;
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let c = Arc::new(Mutex::new(()));
        // a -> b, then b -> c; acquiring a while holding c closes the
        // 3-cycle even though (c, a) was never directly seen.
        {
            let (a1, b1) = (Arc::clone(&a), Arc::clone(&b));
            std::thread::spawn(move || {
                let _g = a1.lock();
                let _h = b1.lock();
            })
            .join()
            .unwrap();
            let (b2, c2) = (Arc::clone(&b), Arc::clone(&c));
            std::thread::spawn(move || {
                let _g = b2.lock();
                let _h = c2.lock();
            })
            .join()
            .unwrap();
        }
        let (a, c) = (Arc::clone(&a), Arc::clone(&c));
        let msg = panic_message_of(move || {
            let _g = c.lock();
            let _h = a.lock();
        })
        .expect("transitive reverse order must panic");
        assert!(msg.contains("lock-order cycle"), "{msg}");
    }

    #[cfg(debug_assertions)]
    #[test]
    fn rwlock_participates_in_order_checking() {
        use std::sync::Arc;
        let m = Arc::new(Mutex::new(0u32));
        let l = Arc::new(RwLock::new(0u32));
        {
            let (m, l) = (Arc::clone(&m), Arc::clone(&l));
            std::thread::spawn(move || {
                let _g = m.lock();
                let _h = l.read();
            })
            .join()
            .unwrap();
        }
        let (m, l) = (Arc::clone(&m), Arc::clone(&l));
        let msg = panic_message_of(move || {
            let _h = l.write();
            let _g = m.lock();
        })
        .expect("reverse mutex/rwlock order must panic");
        assert!(msg.contains("lock-order cycle"), "{msg}");
    }

    #[cfg(debug_assertions)]
    #[test]
    fn guards_dropped_out_of_order_unwind_cleanly() {
        let a = Mutex::new(1u32);
        let b = Mutex::new(2u32);
        let ga = a.lock();
        let gb = b.lock();
        drop(ga); // release in non-stack order
        drop(gb);
        // Held stack must be empty again: a fresh nested acquisition in
        // the recorded order works.
        let _ga = a.lock();
        let _gb = b.lock();
    }
}
