//! Lightweight named counters and fixed-bucket histograms.
//!
//! The collector and monitor use a [`Metrics`] registry to keep campaign
//! health numbers (requests issued, revocations observed, joins denied…)
//! without threading bespoke counters through every call path.

use std::collections::BTreeMap;
use std::fmt;

/// A histogram over fixed, caller-supplied bucket upper bounds, plus an
/// overflow bucket. Also tracks exact count/sum/min/max.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// A histogram with the given ascending bucket upper bounds.
    ///
    /// # Panics
    /// Panics if `bounds` is empty or not strictly ascending.
    pub fn new(bounds: &[f64]) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bounds must be strictly ascending"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation.
    pub fn observe(&mut self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of observations, or 0 for an empty histogram.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Minimum observation, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum observation, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Count of observations in the bucket ending at `bounds[i]` (the last
    /// index is the overflow bucket).
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// `(upper_bound, count)` pairs; the final pair uses `f64::INFINITY`.
    pub fn buckets(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.bounds
            .iter()
            .copied()
            .chain(std::iter::once(f64::INFINITY))
            .zip(self.counts.iter().copied())
    }

    /// The configured bucket upper bounds (checkpoint export).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Raw per-bucket counts, overflow bucket last (checkpoint export).
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Exact sum of all observations (checkpoint export).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Rebuild a histogram from exported parts (the restore half of
    /// checkpointing). `min`/`max` use the [`Histogram::min`] /
    /// [`Histogram::max`] convention: `None` for an empty histogram.
    ///
    /// # Panics
    /// Panics if `counts` does not have exactly `bounds.len() + 1` slots or
    /// the bounds are invalid (same contract as [`Histogram::new`]).
    pub fn from_parts(
        bounds: Vec<f64>,
        counts: Vec<u64>,
        count: u64,
        sum: f64,
        min: Option<f64>,
        max: Option<f64>,
    ) -> Histogram {
        let mut h = Histogram::new(&bounds);
        assert_eq!(counts.len(), bounds.len() + 1, "bucket count mismatch");
        h.counts = counts;
        h.count = count;
        h.sum = sum;
        h.min = min.unwrap_or(f64::INFINITY);
        h.max = max.unwrap_or(f64::NEG_INFINITY);
        h
    }
}

/// The declared metric- and trace-key registry.
///
/// Every counter, histogram, and stage-timer key used on the artifact
/// path is a named constant here; the lint's D12 rule rejects ad-hoc
/// string literals at `Metrics` call sites so a key family can't fork
/// via typo (`transport.breaker_opend`). The *values* are part of the
/// golden output — renaming one changes report bytes — so add, don't
/// edit. The lint also rejects two constants declaring the same value.
pub mod keys {
    // Name tables document themselves: each constant name mirrors its
    // key string, and the module doc above carries the contract.
    #![allow(missing_docs)]

    // Transport-layer counters.
    pub const TRANSPORT_ATTEMPTS: &str = "transport.attempts";
    pub const TRANSPORT_BREAKER_OPENED: &str = "transport.breaker_opened";
    pub const TRANSPORT_BREAKER_FAST_FAILS: &str = "transport.breaker_fast_fails";
    pub const TRANSPORT_CORRUPTED: &str = "transport.corrupted";
    // Discovery / monitoring / joining counters.
    pub const DISCOVERY_UNRECOVERED_WINDOWS: &str = "discovery.unrecovered_windows";
    pub const DISCOVERY_TWEETS_COLLECTED: &str = "discovery.tweets_collected";
    pub const DISCOVERY_GROUPS_DISCOVERED: &str = "discovery.groups_discovered";
    pub const DISCOVERY_FAILED_REQUESTS: &str = "discovery.failed_requests";
    pub const DISCOVERY_GROUPS_KNOWN: &str = "discovery.groups_known";
    pub const MONITOR_GAP_DAYS: &str = "monitor.gap_days";
    pub const JOIN_DEAD_AT_JOIN: &str = "join.dead_at_join";
    pub const JOIN_JOINED_GROUPS: &str = "join.joined_groups";
    pub const JOIN_FAILED_FETCHES: &str = "join.failed_fetches";
    pub const QUARANTINE_ENTRIES: &str = "quarantine.entries";
    // Campaign round counters.
    pub const CAMPAIGN_SEARCH_ROUNDS: &str = "campaign.search_rounds";
    pub const CAMPAIGN_STREAM_DRAINS: &str = "campaign.stream_drains";
    pub const CAMPAIGN_SAMPLE_DRAINS: &str = "campaign.sample_drains";
    pub const CAMPAIGN_MONITOR_ROUNDS: &str = "campaign.monitor_rounds";
    pub const CAMPAIGN_BACKFILL_ROUNDS: &str = "campaign.backfill_rounds";
    // Campaign stage timers (`Metrics::time_stage`).
    pub const STAGE_SEARCH: &str = "search";
    pub const STAGE_STREAM: &str = "stream";
    pub const STAGE_SAMPLE: &str = "sample";
    pub const STAGE_MONITOR: &str = "monitor";
    pub const STAGE_JOIN: &str = "join";
    pub const STAGE_COLLECT: &str = "collect";
    pub const STAGE_BACKFILL: &str = "backfill";
    // Artifact-generation stage timers (the repro binary and bench).
    pub const STAGE_TABLE2: &str = "table2";
    pub const STAGE_TABLE4: &str = "table4";
    pub const STAGE_TABLE5: &str = "table5";
    pub const STAGE_FIG1: &str = "fig1";
    pub const STAGE_FIG2: &str = "fig2";
    pub const STAGE_FIG3: &str = "fig3";
    pub const STAGE_FIG4: &str = "fig4";
    pub const STAGE_FIG5: &str = "fig5";
    pub const STAGE_FIG6: &str = "fig6";
    pub const STAGE_FIG7: &str = "fig7";
    pub const STAGE_FIG8: &str = "fig8";
    pub const STAGE_FIG9: &str = "fig9";
    pub const STAGE_LDA: &str = "lda";
    pub const STAGE_EXTRAS: &str = "extras";
    pub const STAGE_EXTENSIONS: &str = "extensions";
    pub const STAGE_REPORT: &str = "report";

    // Incremental analysis folds (per-fold stages are computed as
    // `fold.<name>` / `fold_finish.<name>` from these prefixes).
    pub const STAGE_FOLD: &str = "fold";
    pub const STAGE_FOLD_FINISH: &str = "fold_finish";
    pub const FOLD_DAYS: &str = "fold.days";
    pub const FOLD_STATE_PEAK_BYTES: &str = "fold.state_peak_bytes";
    /// Full batch-analysis report render, timed by the fold bench gate
    /// as the baseline the incremental path is compared against.
    pub const STAGE_BATCH_REPORT: &str = "batch_report";

    // Memory-budget accounting (`repro run --mem-budget`). These live in
    // the budget runtime's own registry, never the dataset's — the
    // campaign report's counter digest is a frozen byte contract and a
    // budgeted run must reproduce an unbudgeted run's bytes exactly.
    pub const BUDGET_RESIDENT_BYTES: &str = "budget.resident";
    pub const BUDGET_RESIDENT_PEAK_BYTES: &str = "budget.resident_peak";
    pub const BUDGET_SPILLED_BYTES: &str = "budget.spilled";
    pub const BUDGET_EVICTIONS: &str = "budget.evictions";
    pub const BUDGET_FAULTS: &str = "budget.faults";
    pub const BUDGET_TORN_DETECTED: &str = "budget.torn_detected";

    // Checkpoint-chain durability counters (`repro checkpoint verify`
    // / `repair` summaries and the chain-recovery resume path).
    pub const CHECKPOINT_CHAIN_VALID: &str = "checkpoint.chain_valid";
    pub const CHECKPOINT_CHAIN_INVALID: &str = "checkpoint.chain_invalid";
    pub const CHECKPOINT_SNAPSHOTS_SKIPPED: &str = "checkpoint.snapshots_skipped";
    pub const CHECKPOINT_QUARANTINED: &str = "checkpoint.quarantined";
}

/// A registry of named counters and histograms with deterministic
/// (sorted) iteration order.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Add `n` to the counter `name` (creating it at zero).
    pub fn add(&mut self, name: &str, n: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// Increment the counter `name` by one.
    pub fn incr(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Read a counter (0 if absent).
    pub fn get(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Observe a value into the histogram `name`, creating it with the
    /// given default bounds on first use.
    pub fn observe(&mut self, name: &str, value: f64, default_bounds: &[f64]) {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(default_bounds))
            .observe(value);
    }

    /// Read a histogram if it exists.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Iterate counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Iterate histograms in name order (checkpoint export).
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Rebuild a registry from exported parts (the restore half of
    /// checkpointing).
    pub fn from_parts(
        counters: BTreeMap<String, u64>,
        histograms: BTreeMap<String, Histogram>,
    ) -> Metrics {
        Metrics {
            counters,
            histograms,
        }
    }

    /// Remove every wall-clock timing counter (names ending `.micros`, as
    /// written by [`Metrics::time_stage`]). Timings are real elapsed time
    /// and therefore differ between otherwise bit-identical runs; equality
    /// comparisons across runs — e.g. the checkpoint/resume determinism
    /// suite — must normalize with this before comparing.
    pub fn strip_wall_clock(&mut self) {
        self.counters.retain(|name, _| !name.ends_with(".micros"));
    }

    /// Runs `f` and records its wall-clock duration under the counters
    /// `stage.<name>.micros` (accumulating) and `stage.<name>.runs`.
    ///
    /// Timings are real elapsed time and therefore *not* deterministic —
    /// they exist for throughput tracking (BENCH records, `repro`
    /// `--timings`) and must never feed back into simulation state.
    pub fn time_stage<R>(&mut self, name: &str, f: impl FnOnce() -> R) -> R {
        let start = std::time::Instant::now();
        let out = f();
        self.add(
            &format!("stage.{name}.micros"),
            start.elapsed().as_micros() as u64,
        );
        self.incr(&format!("stage.{name}.runs"));
        out
    }

    /// Total microseconds recorded for a stage by [`Metrics::time_stage`].
    pub fn stage_micros(&self, name: &str) -> u64 {
        self.get(&format!("stage.{name}.micros"))
    }

    /// Counters under the `stage.` prefix, in name order — the per-stage
    /// timing table recorded during a run.
    pub fn stages(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters()
            .filter(|(name, _)| name.starts_with("stage."))
    }

    /// Merge another registry into this one (counters add; histograms must
    /// not collide — campaign subsystems use disjoint name prefixes).
    ///
    /// # Panics
    /// Panics on a histogram name collision.
    pub fn merge(&mut self, other: &Metrics) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for k in other.histograms.keys() {
            assert!(
                !self.histograms.contains_key(k),
                "histogram name collision: {k}"
            );
        }
        for (k, v) in &other.histograms {
            self.histograms.insert(k.clone(), v.clone());
        }
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, v) in &self.counters {
            writeln!(f, "{name} = {v}")?;
        }
        for (name, h) in &self.histograms {
            writeln!(
                f,
                "{name}: n={} mean={:.2} min={:?} max={:?}",
                h.count(),
                h.mean(),
                h.min(),
                h.max()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new();
        m.incr("a");
        m.add("a", 4);
        assert_eq!(m.get("a"), 5);
        assert_eq!(m.get("missing"), 0);
    }

    #[test]
    fn histogram_bucketing() {
        let mut h = Histogram::new(&[1.0, 10.0, 100.0]);
        for v in [0.5, 1.0, 5.0, 50.0, 500.0] {
            h.observe(v);
        }
        assert_eq!(h.bucket_count(0), 2, "<=1");
        assert_eq!(h.bucket_count(1), 1, "<=10");
        assert_eq!(h.bucket_count(2), 1, "<=100");
        assert_eq!(h.bucket_count(3), 1, "overflow");
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), Some(0.5));
        assert_eq!(h.max(), Some(500.0));
        assert!((h.mean() - 111.3).abs() < 0.01);
    }

    #[test]
    fn histogram_empty_stats() {
        let h = Histogram::new(&[1.0]);
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn histogram_rejects_unsorted_bounds() {
        let _ = Histogram::new(&[10.0, 1.0]);
    }

    #[test]
    fn registry_histograms() {
        let mut m = Metrics::new();
        m.observe("lat", 5.0, &[1.0, 10.0]);
        m.observe("lat", 0.5, &[999.0]); // bounds ignored on reuse
        let h = m.histogram("lat").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.bucket_count(0), 1);
        assert!(m.histogram("other").is_none());
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = Metrics::new();
        a.add("x", 1);
        let mut b = Metrics::new();
        b.add("x", 2);
        b.add("y", 3);
        b.observe("h", 1.0, &[10.0]);
        a.merge(&b);
        assert_eq!(a.get("x"), 3);
        assert_eq!(a.get("y"), 3);
        assert!(a.histogram("h").is_some());
    }

    #[test]
    fn time_stage_records_duration_and_runs() {
        let mut m = Metrics::new();
        let out = m.time_stage("lda", || {
            std::thread::sleep(std::time::Duration::from_millis(2));
            7u32
        });
        assert_eq!(out, 7);
        m.time_stage("lda", || ());
        assert_eq!(m.get("stage.lda.runs"), 2);
        assert!(m.stage_micros("lda") >= 2000);
        assert_eq!(m.stage_micros("missing"), 0);
        let stages: Vec<&str> = m.stages().map(|(n, _)| n).collect();
        assert_eq!(stages, ["stage.lda.micros", "stage.lda.runs"]);
    }

    #[test]
    fn display_lists_everything() {
        let mut m = Metrics::new();
        m.add("requests", 7);
        m.observe("latency", 2.0, &[1.0, 5.0]);
        let s = m.to_string();
        assert!(s.contains("requests = 7"));
        assert!(s.contains("latency: n=1"));
    }

    #[test]
    fn buckets_iterator_ends_with_infinity() {
        let h = Histogram::new(&[1.0, 2.0]);
        let bounds: Vec<f64> = h.buckets().map(|(b, _)| b).collect();
        assert_eq!(bounds.len(), 3);
        assert!(bounds[2].is_infinite());
    }
}
