//! The simulation engine: a virtual clock driving an event queue.
//!
//! `Engine<E>` owns the clock and an [`EventQueue`]; callers schedule typed
//! events and drain them in order with [`Engine::step`] or
//! [`Engine::run_until`]. Handlers receive `&mut Engine` back, so an event
//! may schedule follow-up events — the classic discrete-event pattern.
//!
//! The engine is intentionally single-threaded (the networking guides'
//! smoltcp philosophy: simplicity and robustness over cleverness); the
//! campaign-scale workloads in this project run in milliseconds without
//! parallelism, and determinism would be hard to keep otherwise.

use crate::event::{EventId, EventQueue};
use crate::time::{SimDuration, SimTime};

/// A discrete-event simulation engine with event payload type `E`.
pub struct Engine<E> {
    now: SimTime,
    queue: EventQueue<E>,
    processed: u64,
}

impl<E> Engine<E> {
    /// A new engine whose clock starts at `start`.
    pub fn new(start: SimTime) -> Self {
        Engine {
            now: start,
            queue: EventQueue::new(),
            processed: 0,
        }
    }

    /// Rebuild an engine from checkpointed state: the clock position, the
    /// lifetime event count, and the pending events in `(time, sequence)`
    /// order (as exported by [`Engine::pending_events`]).
    ///
    /// Events are re-scheduled in the given order, so fresh sequence
    /// numbers reproduce the original pop order exactly.
    ///
    /// # Panics
    /// Panics if any event lies before `now` (a snapshot can only hold
    /// future events).
    pub fn restore(now: SimTime, processed: u64, events: Vec<(SimTime, E)>) -> Self {
        let mut engine = Engine {
            now,
            queue: EventQueue::new(),
            processed,
        };
        for (at, ev) in events {
            engine.schedule_at(at, ev);
        }
        engine
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of pending events (including lazily-cancelled entries).
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Snapshot the pending (non-cancelled) events in delivery order —
    /// the checkpoint export matching [`Engine::restore`].
    pub fn pending_events(&self) -> Vec<(SimTime, E)>
    where
        E: Clone,
    {
        self.queue.pending_sorted()
    }

    /// Schedule an event at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past — scheduling backwards in time is
    /// always a logic bug in a discrete-event program.
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule at {at} before now {}",
            self.now
        );
        self.queue.schedule(at, event)
    }

    /// Schedule an event `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) -> EventId {
        let at = self.now + delay;
        self.queue.schedule(at, event)
    }

    /// Cancel a pending event.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }

    /// Pop and return the next event, advancing the clock to its time.
    /// Returns `None` when the queue is exhausted.
    pub fn step(&mut self) -> Option<(SimTime, E)> {
        let (at, ev) = self.queue.pop()?;
        debug_assert!(at >= self.now, "event queue went backwards");
        self.now = at;
        self.processed += 1;
        Some((at, ev))
    }

    /// Process events with `handler` until the queue is empty or the clock
    /// would pass `deadline`. Events scheduled exactly at `deadline` are
    /// processed; the clock never advances beyond it. Returns the number of
    /// events handled.
    pub fn run_until(&mut self, deadline: SimTime, mut handler: impl FnMut(&mut Self, E)) -> u64 {
        let start_processed = self.processed;
        while let Some(t) = self.queue.peek_time() {
            if t > deadline {
                break;
            }
            // Unwrap is fine: peek_time just proved there is an event.
            let (_, ev) = self.step().expect("event vanished between peek and pop");
            handler(self, ev);
        }
        if self.now < deadline {
            self.now = deadline;
        }
        self.processed - start_processed
    }

    /// Drain the queue completely, processing every event.
    pub fn run_to_exhaustion(&mut self, mut handler: impl FnMut(&mut Self, E)) -> u64 {
        let start_processed = self.processed;
        while let Some((_, ev)) = self.step() {
            handler(self, ev);
        }
        self.processed - start_processed
    }

    /// Advance the clock without processing events (e.g. to a campaign
    /// start time).
    ///
    /// # Panics
    /// Panics if events earlier than `to` are still pending, or `to` is in
    /// the past.
    pub fn fast_forward(&mut self, to: SimTime) {
        assert!(to >= self.now, "cannot fast-forward into the past");
        if let Some(t) = self.queue.peek_time() {
            assert!(
                t >= to,
                "fast_forward({to}) would skip a pending event at {t}"
            );
        }
        self.now = to;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{SimDuration, SimTime};

    #[derive(Debug, PartialEq)]
    enum Ev {
        Tick(u32),
        Spawn,
    }

    #[test]
    fn clock_advances_with_events() {
        let mut e = Engine::new(SimTime(0));
        e.schedule_at(SimTime(10), Ev::Tick(1));
        e.schedule_at(SimTime(20), Ev::Tick(2));
        assert_eq!(e.step(), Some((SimTime(10), Ev::Tick(1))));
        assert_eq!(e.now(), SimTime(10));
        assert_eq!(e.step(), Some((SimTime(20), Ev::Tick(2))));
        assert_eq!(e.now(), SimTime(20));
        assert_eq!(e.step(), None);
        assert_eq!(e.processed(), 2);
    }

    #[test]
    fn handlers_can_schedule_followups() {
        let mut e = Engine::new(SimTime(0));
        e.schedule_at(SimTime(1), Ev::Spawn);
        let mut ticks = Vec::new();
        e.run_to_exhaustion(|eng, ev| match ev {
            Ev::Spawn => {
                eng.schedule_in(SimDuration::secs(5), Ev::Tick(7));
            }
            Ev::Tick(n) => ticks.push((eng.now(), n)),
        });
        assert_eq!(ticks, vec![(SimTime(6), 7)]);
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut e = Engine::new(SimTime(0));
        for t in [5u64, 10, 15, 20] {
            e.schedule_at(SimTime(t), Ev::Tick(t as u32));
        }
        let mut seen = Vec::new();
        let n = e.run_until(SimTime(15), |_, ev| seen.push(ev));
        assert_eq!(n, 3);
        assert_eq!(seen, vec![Ev::Tick(5), Ev::Tick(10), Ev::Tick(15)]);
        // Clock lands exactly on the deadline even though an event remains.
        assert_eq!(e.now(), SimTime(15));
        assert_eq!(e.pending(), 1);
    }

    #[test]
    fn run_until_advances_clock_when_idle() {
        let mut e: Engine<Ev> = Engine::new(SimTime(0));
        e.run_until(SimTime(100), |_, _| {});
        assert_eq!(e.now(), SimTime(100));
    }

    #[test]
    #[should_panic(expected = "cannot schedule")]
    fn scheduling_in_past_panics() {
        let mut e = Engine::new(SimTime(100));
        e.schedule_at(SimTime(50), Ev::Spawn);
    }

    #[test]
    fn cancel_prevents_delivery() {
        let mut e = Engine::new(SimTime(0));
        let id = e.schedule_at(SimTime(5), Ev::Tick(1));
        e.schedule_at(SimTime(6), Ev::Tick(2));
        assert!(e.cancel(id));
        let mut seen = Vec::new();
        e.run_to_exhaustion(|_, ev| seen.push(ev));
        assert_eq!(seen, vec![Ev::Tick(2)]);
    }

    #[test]
    #[should_panic(expected = "would skip a pending event")]
    fn fast_forward_cannot_skip_events() {
        let mut e = Engine::new(SimTime(0));
        e.schedule_at(SimTime(5), Ev::Spawn);
        e.fast_forward(SimTime(10));
    }

    #[test]
    fn fast_forward_to_pending_event_time_ok() {
        let mut e = Engine::new(SimTime(0));
        e.schedule_at(SimTime(5), Ev::Spawn);
        e.fast_forward(SimTime(5));
        assert_eq!(e.now(), SimTime(5));
    }
}
