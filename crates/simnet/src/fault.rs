//! Fault injection, rate limiting, and backoff.
//!
//! Mirrors the knobs the networking guides highlight (smoltcp's
//! `--drop-chance` / token-bucket shaping): a [`FaultInjector`] decides per
//! attempt whether the wire eats the request or the far end errors, a
//! [`TokenBucket`] enforces a sustained request rate with bursts, and
//! [`Backoff`] produces exponentially growing, fully jittered retry delays.

use crate::rng::Rng;
use crate::time::{SimDuration, SimTime};

/// Per-attempt fault model: independent drop and server-error probabilities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultInjector {
    /// Probability the request is silently dropped in transit.
    pub drop_chance: f64,
    /// Probability the service responds with a transient 5xx.
    pub error_chance: f64,
}

impl FaultInjector {
    /// A fault model with the given probabilities (each clamped to [0, 1]).
    pub fn new(drop_chance: f64, error_chance: f64) -> FaultInjector {
        FaultInjector {
            drop_chance: drop_chance.clamp(0.0, 1.0),
            error_chance: error_chance.clamp(0.0, 1.0),
        }
    }

    /// A perfectly reliable network.
    pub fn none() -> FaultInjector {
        FaultInjector::new(0.0, 0.0)
    }

    /// Roll for an in-transit drop.
    pub fn drop_now(&self, rng: &mut Rng) -> bool {
        self.drop_chance > 0.0 && rng.chance(self.drop_chance)
    }

    /// Roll for an injected server error.
    pub fn error_now(&self, rng: &mut Rng) -> bool {
        self.error_chance > 0.0 && rng.chance(self.error_chance)
    }
}

/// A token bucket: capacity `burst`, refilled at `rate` tokens/second of
/// virtual time. `acquire` reports how long the caller must (virtually)
/// wait for the next token instead of blocking.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    capacity: f64,
    tokens: f64,
    rate: f64,
    last: SimTime,
}

/// The full mutable state of a [`TokenBucket`], exported for checkpointing
/// and restored with [`TokenBucket::from_state`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TokenBucketState {
    /// Maximum tokens the bucket holds (the burst size).
    pub capacity: f64,
    /// Tokens available as of `last`.
    pub tokens: f64,
    /// Refill rate in tokens per virtual second.
    pub rate: f64,
    /// Virtual time of the last refill.
    pub last: SimTime,
}

impl TokenBucket {
    /// A bucket that starts full.
    ///
    /// # Panics
    /// Panics unless `capacity >= 1` and `rate > 0` (a bucket that can never
    /// hold or produce a whole token would deadlock every caller).
    pub fn new(capacity: f64, rate: f64, start: SimTime) -> TokenBucket {
        assert!(capacity >= 1.0, "capacity {capacity} cannot hold one token");
        assert!(rate > 0.0 && rate.is_finite(), "invalid refill rate {rate}");
        TokenBucket {
            capacity,
            tokens: capacity,
            rate,
            last: start,
        }
    }

    /// Export the bucket's mutable state (fill level, refill cursor) for a
    /// checkpoint.
    pub fn state(&self) -> TokenBucketState {
        TokenBucketState {
            capacity: self.capacity,
            tokens: self.tokens,
            rate: self.rate,
            last: self.last,
        }
    }

    /// Rebuild a bucket from an exported [`TokenBucketState`]. Unlike
    /// [`TokenBucket::new`], the bucket does *not* start full: the
    /// checkpointed fill level is preserved exactly. Callers are trusted to
    /// pass state that came from [`TokenBucket::state`] (snapshots are
    /// checksummed upstream).
    pub fn from_state(s: TokenBucketState) -> TokenBucket {
        TokenBucket {
            capacity: s.capacity,
            tokens: s.tokens,
            rate: s.rate,
            last: s.last,
        }
    }

    /// Take one token at virtual time `now`, returning the wait imposed:
    /// `Some(ZERO)` if a token was available immediately, `Some(wait)` if
    /// the caller must wait `wait` for the bucket to refill. Returns `None`
    /// only if the wait would exceed an hour — treated as a configuration
    /// error by callers.
    pub fn acquire(&mut self, now: SimTime) -> Option<SimDuration> {
        self.refill(now);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            return Some(SimDuration::ZERO);
        }
        let deficit = 1.0 - self.tokens;
        let wait_secs = (deficit / self.rate).ceil();
        if wait_secs > 3_600.0 {
            return None;
        }
        let wait = SimDuration::secs(wait_secs as u64);
        // Advance our own view of time past the wait and spend the token.
        self.refill(now + wait);
        self.tokens = (self.tokens - 1.0).max(0.0);
        Some(wait)
    }

    /// Tokens currently available (after refilling to `now`).
    pub fn available(&mut self, now: SimTime) -> f64 {
        self.refill(now);
        self.tokens
    }

    fn refill(&mut self, now: SimTime) {
        if now <= self.last {
            return;
        }
        let elapsed = (now - self.last).as_secs() as f64;
        self.tokens = (self.tokens + elapsed * self.rate).min(self.capacity);
        self.last = now;
    }
}

/// Exponential backoff with full jitter: delay `i` is uniform in
/// `[0, min(max, base * factor^i)]`, per the widely used AWS formulation.
#[derive(Debug, Clone)]
pub struct Backoff {
    base: SimDuration,
    factor: f64,
    max: SimDuration,
    attempt: u32,
}

impl Backoff {
    /// A backoff schedule starting at `base`, growing by `factor`, capped
    /// at `max`.
    pub fn new(base: SimDuration, factor: f64, max: SimDuration) -> Backoff {
        Backoff {
            base,
            factor: factor.max(1.0),
            max,
            attempt: 0,
        }
    }

    /// The next delay (advances the attempt counter).
    pub fn next_delay(&mut self, rng: &mut Rng) -> SimDuration {
        let ceiling =
            (self.base.as_secs() as f64 * self.factor.powi(self.attempt as i32)).round() as u64;
        let ceiling = ceiling.min(self.max.as_secs()).max(1);
        self.attempt = self.attempt.saturating_add(1);
        SimDuration::secs(rng.range(0, ceiling))
    }

    /// Number of delays handed out so far.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// Reset to the first attempt (e.g. after a success).
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injector_extremes() {
        let mut rng = Rng::new(1);
        let always = FaultInjector::new(1.0, 1.0);
        let never = FaultInjector::none();
        for _ in 0..100 {
            assert!(always.drop_now(&mut rng));
            assert!(always.error_now(&mut rng));
            assert!(!never.drop_now(&mut rng));
            assert!(!never.error_now(&mut rng));
        }
    }

    #[test]
    fn injector_clamps_probabilities() {
        let f = FaultInjector::new(7.0, -2.0);
        assert_eq!(f.drop_chance, 1.0);
        assert_eq!(f.error_chance, 0.0);
    }

    #[test]
    fn bucket_burst_then_throttle() {
        let mut b = TokenBucket::new(3.0, 1.0, SimTime(0));
        // Three immediate tokens.
        for _ in 0..3 {
            assert_eq!(b.acquire(SimTime(0)), Some(SimDuration::ZERO));
        }
        // Fourth must wait ~1s.
        let wait = b.acquire(SimTime(0)).unwrap();
        assert_eq!(wait, SimDuration::secs(1));
    }

    #[test]
    fn bucket_refills_over_time() {
        let mut b = TokenBucket::new(5.0, 2.0, SimTime(0));
        for _ in 0..5 {
            b.acquire(SimTime(0)).unwrap();
        }
        assert!(b.available(SimTime(0)) < 1.0);
        // After 2 virtual seconds at 2 tokens/sec, ~4 tokens are back.
        let avail = b.available(SimTime(2));
        assert!((3.5..=5.0).contains(&avail), "available {avail}");
        assert_eq!(b.acquire(SimTime(2)), Some(SimDuration::ZERO));
    }

    #[test]
    fn bucket_never_exceeds_capacity() {
        let mut b = TokenBucket::new(2.0, 100.0, SimTime(0));
        assert!(b.available(SimTime(1_000_000)) <= 2.0);
    }

    #[test]
    fn bucket_refuses_hour_long_waits() {
        let mut b = TokenBucket::new(1.0, 0.0001, SimTime(0));
        b.acquire(SimTime(0)).unwrap();
        assert_eq!(b.acquire(SimTime(0)), None);
    }

    #[test]
    #[should_panic]
    fn bucket_rejects_zero_rate() {
        let _ = TokenBucket::new(1.0, 0.0, SimTime(0));
    }

    #[test]
    fn backoff_grows_and_caps() {
        let mut rng = Rng::new(2);
        let mut b = Backoff::new(SimDuration::secs(1), 2.0, SimDuration::secs(8));
        // Ceilings: 1, 2, 4, 8, 8, 8...
        let expected_ceilings = [1u64, 2, 4, 8, 8, 8];
        for &ceil in &expected_ceilings {
            let d = b.next_delay(&mut rng);
            assert!(d.as_secs() <= ceil, "delay {d} above ceiling {ceil}");
        }
        assert_eq!(b.attempts(), 6);
    }

    #[test]
    fn backoff_reset_restarts_schedule() {
        let mut rng = Rng::new(3);
        let mut b = Backoff::new(SimDuration::secs(10), 2.0, SimDuration::secs(1000));
        for _ in 0..5 {
            b.next_delay(&mut rng);
        }
        b.reset();
        assert_eq!(b.attempts(), 0);
        let d = b.next_delay(&mut rng);
        assert!(d.as_secs() <= 10);
    }

    #[test]
    fn backoff_jitter_varies() {
        let mut rng = Rng::new(4);
        let mut b = Backoff::new(SimDuration::secs(100), 1.0, SimDuration::secs(100));
        let delays: std::collections::HashSet<u64> =
            (0..50).map(|_| b.next_delay(&mut rng).as_secs()).collect();
        assert!(delays.len() > 10, "jitter should spread delays");
    }
}
