//! Fault injection, rate limiting, and backoff.
//!
//! Mirrors the knobs the networking guides highlight (smoltcp's
//! `--drop-chance` / token-bucket shaping): a [`FaultInjector`] decides per
//! attempt whether the wire eats the request or the far end errors, a
//! [`TokenBucket`] enforces a sustained request rate with bursts, and
//! [`Backoff`] produces exponentially growing, fully jittered retry delays.
//!
//! Failures in the wild are *correlated*, not i.i.d. coin flips, so the
//! i.i.d. [`FaultInjector`] is only the bottom layer of a [`FaultSchedule`]:
//!
//! * **i.i.d. base** — independent per-attempt drop/error probabilities.
//! * **bursty** — a Gilbert–Elliott two-state chain ([`BurstParams`])
//!   switches between the base model and an elevated "bad" model, producing
//!   clustered loss the way congested links and flaky scraper sessions do.
//! * **outage** — scheduled [`OutageWindow`]s take a whole service down:
//!   [`OutageMode::Blackout`] eats every attempt on the wire,
//!   [`OutageMode::Ban`] fails fast with a 403 (a suspended credential:
//!   WhatsApp banning a scraper account, Discord expiring a token).
//!
//! The layers are strictly additive: a schedule with no burst parameters
//! and no windows behaves bit-for-bit like its base injector.
//!
//! Orthogonal to *connection*-level faults, a [`CorruptionSchedule`] models
//! *content*-level faults: a successful response whose body was mangled in
//! flight (a half-written page, a CDN mixing up cached documents, an API
//! mid-deploy serving a drifted schema). It draws from a dedicated RNG
//! stream so composing it with any [`FaultSchedule`] never perturbs the
//! connection-level fault rolls, and a zero-rate schedule consumes no
//! draws at all.

use crate::rng::Rng;
use crate::time::{SimDuration, SimTime};

/// Per-attempt fault model: independent drop and server-error probabilities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultInjector {
    /// Probability the request is silently dropped in transit.
    pub drop_chance: f64,
    /// Probability the service responds with a transient 5xx.
    pub error_chance: f64,
}

impl FaultInjector {
    /// A fault model with the given probabilities (each clamped to [0, 1]).
    pub fn new(drop_chance: f64, error_chance: f64) -> FaultInjector {
        FaultInjector {
            drop_chance: drop_chance.clamp(0.0, 1.0),
            error_chance: error_chance.clamp(0.0, 1.0),
        }
    }

    /// A perfectly reliable network.
    pub fn none() -> FaultInjector {
        FaultInjector::new(0.0, 0.0)
    }

    /// Roll for an in-transit drop.
    pub fn drop_now(&self, rng: &mut Rng) -> bool {
        self.drop_chance > 0.0 && rng.chance(self.drop_chance)
    }

    /// Roll for an injected server error.
    pub fn error_now(&self, rng: &mut Rng) -> bool {
        self.error_chance > 0.0 && rng.chance(self.error_chance)
    }
}

/// A token bucket: capacity `burst`, refilled at `rate` tokens/second of
/// virtual time. `acquire` reports how long the caller must (virtually)
/// wait for the next token instead of blocking.
///
/// # Monotonicity contract
///
/// Callers must present *non-decreasing* values of `now` to
/// [`TokenBucket::acquire`]. The bucket's internal refill cursor (`last`)
/// deliberately runs **ahead** of the caller's clock: when `acquire`
/// imposes a wait it pre-charges the refill for that wait and spends the
/// token at `now + wait`, so the fill level always reflects waits the
/// caller has promised to serve. That forward cursor is correct only if
/// the caller's clock never rewinds — a regressed `now` would be silently
/// refilled "from the future" (the refill no-ops and the caller sees the
/// post-wait fill level). A debug assertion enforces the contract.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    capacity: f64,
    tokens: f64,
    rate: f64,
    last: SimTime,
    /// Highest `now` any caller has passed to `acquire`; guards the
    /// monotonicity contract above. Not part of the checkpointed state —
    /// the guard re-arms from zero after a restore.
    watermark: SimTime,
}

/// The full mutable state of a [`TokenBucket`], exported for checkpointing
/// and restored with [`TokenBucket::from_state`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TokenBucketState {
    /// Maximum tokens the bucket holds (the burst size).
    pub capacity: f64,
    /// Tokens available as of `last`.
    pub tokens: f64,
    /// Refill rate in tokens per virtual second.
    pub rate: f64,
    /// Virtual time of the last refill.
    pub last: SimTime,
}

impl TokenBucket {
    /// A bucket that starts full.
    ///
    /// # Panics
    /// Panics unless `capacity >= 1` and `rate > 0` (a bucket that can never
    /// hold or produce a whole token would deadlock every caller).
    pub fn new(capacity: f64, rate: f64, start: SimTime) -> TokenBucket {
        assert!(capacity >= 1.0, "capacity {capacity} cannot hold one token");
        assert!(rate > 0.0 && rate.is_finite(), "invalid refill rate {rate}");
        TokenBucket {
            capacity,
            tokens: capacity,
            rate,
            last: start,
            watermark: start,
        }
    }

    /// Export the bucket's mutable state (fill level, refill cursor) for a
    /// checkpoint.
    pub fn state(&self) -> TokenBucketState {
        TokenBucketState {
            capacity: self.capacity,
            tokens: self.tokens,
            rate: self.rate,
            last: self.last,
        }
    }

    /// Rebuild a bucket from an exported [`TokenBucketState`]. Unlike
    /// [`TokenBucket::new`], the bucket does *not* start full: the
    /// checkpointed fill level is preserved exactly. Callers are trusted to
    /// pass state that came from [`TokenBucket::state`] (snapshots are
    /// checksummed upstream).
    pub fn from_state(s: TokenBucketState) -> TokenBucket {
        TokenBucket {
            capacity: s.capacity,
            tokens: s.tokens,
            rate: s.rate,
            last: s.last,
            watermark: SimTime(0),
        }
    }

    /// Take one token at virtual time `now`, returning the wait imposed:
    /// `Some(ZERO)` if a token was available immediately, `Some(wait)` if
    /// the caller must wait `wait` for the bucket to refill. Returns `None`
    /// only if the wait would exceed an hour — treated as a configuration
    /// error by callers.
    ///
    /// `now` must be non-decreasing across calls (see the type-level
    /// monotonicity contract); a regressed clock trips a debug assertion.
    pub fn acquire(&mut self, now: SimTime) -> Option<SimDuration> {
        debug_assert!(
            now >= self.watermark,
            "TokenBucket::acquire clock went backwards: {now} < watermark {}",
            self.watermark
        );
        self.watermark = now;
        self.refill(now);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            return Some(SimDuration::ZERO);
        }
        let deficit = 1.0 - self.tokens;
        let wait_secs = (deficit / self.rate).ceil();
        if wait_secs > 3_600.0 {
            return None;
        }
        let wait = SimDuration::secs(wait_secs as u64);
        // Advance our own view of time past the wait and spend the token.
        self.refill(now + wait);
        self.tokens = (self.tokens - 1.0).max(0.0);
        Some(wait)
    }

    /// The refill cursor — the virtual time the bucket has refilled to.
    /// Callers whose clock is not naturally monotone (service handlers:
    /// a retried call's virtual dispatch time can overtake the next
    /// call's start) clamp `now` against this before [`acquire`], which
    /// upholds the monotonicity contract without changing the refill
    /// math *provided the bucket never imposes waits* (otherwise the
    /// cursor runs ahead of real dispatch time — transport clients keep
    /// their own monotone clock instead).
    ///
    /// [`acquire`]: TokenBucket::acquire
    pub fn refilled_to(&self) -> SimTime {
        self.last
    }

    /// Tokens currently available (after refilling to `now`).
    pub fn available(&mut self, now: SimTime) -> f64 {
        self.refill(now);
        self.tokens
    }

    fn refill(&mut self, now: SimTime) {
        if now <= self.last {
            return;
        }
        let elapsed = (now - self.last).as_secs() as f64;
        self.tokens = (self.tokens + elapsed * self.rate).min(self.capacity);
        self.last = now;
    }
}

/// Exponential backoff with full jitter: delay `i` is uniform in
/// `[0, min(max, base * factor^i)]`, per the widely used AWS formulation.
#[derive(Debug, Clone)]
pub struct Backoff {
    base: SimDuration,
    factor: f64,
    max: SimDuration,
    attempt: u32,
}

impl Backoff {
    /// A backoff schedule starting at `base`, growing by `factor`, capped
    /// at `max`.
    pub fn new(base: SimDuration, factor: f64, max: SimDuration) -> Backoff {
        Backoff {
            base,
            factor: factor.max(1.0),
            max,
            attempt: 0,
        }
    }

    /// The next delay (advances the attempt counter).
    pub fn next_delay(&mut self, rng: &mut Rng) -> SimDuration {
        let ceiling =
            (self.base.as_secs() as f64 * self.factor.powi(self.attempt as i32)).round() as u64;
        let ceiling = ceiling.min(self.max.as_secs()).max(1);
        self.attempt = self.attempt.saturating_add(1);
        SimDuration::secs(rng.range(0, ceiling))
    }

    /// Number of delays handed out so far.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// Reset to the first attempt (e.g. after a success).
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

/// Gilbert–Elliott burst parameters: a two-state Markov chain advanced one
/// step per attempt. In the *good* state the base [`FaultInjector`]
/// applies; in the *bad* state the elevated `bad` injector does. Loss
/// therefore arrives in clusters whose mean length is `1 / p_exit`
/// attempts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstParams {
    /// Per-attempt probability of entering the bad state from the good one.
    pub p_enter: f64,
    /// Per-attempt probability of leaving the bad state.
    pub p_exit: f64,
    /// Fault model while the chain is in the bad state.
    pub bad: FaultInjector,
}

impl BurstParams {
    /// The stock storm used by the `bursty` fault profile: bursts start on
    /// ~2% of attempts, last 4 attempts on average, and inside a burst
    /// nearly half the attempts are eaten by the wire.
    pub fn storm() -> BurstParams {
        BurstParams {
            p_enter: 0.02,
            p_exit: 0.25,
            bad: FaultInjector::new(0.45, 0.20),
        }
    }
}

/// How a scheduled outage manifests on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutageMode {
    /// The service is unreachable: every attempt is dropped in transit, so
    /// the caller burns its retries and reports the call dropped.
    Blackout,
    /// The credential is suspended (a scraper ban, an expired token): the
    /// service answers instantly with 403, so the caller fails fast
    /// without retrying.
    Ban,
}

/// One scheduled outage: a half-open window `[from, until)` of virtual
/// time during which `mode` applies to every call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutageWindow {
    /// First instant of the outage.
    pub from: SimTime,
    /// First instant *after* the outage (exclusive bound).
    pub until: SimTime,
    /// What the outage looks like to the caller.
    pub mode: OutageMode,
}

impl OutageWindow {
    /// Whether `now` falls inside the window.
    pub fn contains(&self, now: SimTime) -> bool {
        self.from <= now && now < self.until
    }
}

/// One scheduled outage for one service in campaign-relative days, as the
/// CLI `--outage`/`--ban` flags express it. Materialized into an
/// [`OutageWindow`] once the campaign start time is known.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutageSpec {
    /// First affected campaign day (0-based).
    pub start_day: u32,
    /// Number of consecutive affected days.
    pub days: u32,
    /// `true` for a credential ban (fail-fast 403), `false` for a blackout.
    pub ban: bool,
}

impl OutageSpec {
    /// The concrete window this spec covers for a campaign starting at
    /// `start`.
    pub fn window(&self, start: SimTime) -> OutageWindow {
        OutageWindow {
            from: start + SimDuration::days(u64::from(self.start_day)),
            until: start + SimDuration::days(u64::from(self.start_day + self.days)),
            mode: if self.ban {
                OutageMode::Ban
            } else {
                OutageMode::Blackout
            },
        }
    }
}

/// The full deterministic fault schedule for one client: an i.i.d. base,
/// an optional Gilbert–Elliott burst layer, and zero or more scheduled
/// outage windows. See the module docs for the taxonomy.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSchedule {
    /// Fault model while the burst chain is in the good state (and the
    /// only model when `burst` is `None`).
    pub base: FaultInjector,
    /// Burst layer; `None` means the base model applies unconditionally.
    pub burst: Option<BurstParams>,
    /// Scheduled outages, checked per call.
    pub outages: Vec<OutageWindow>,
}

impl FaultSchedule {
    /// A schedule that is exactly the i.i.d. `base` model: no bursts, no
    /// outages.
    pub fn calm(base: FaultInjector) -> FaultSchedule {
        FaultSchedule {
            base,
            burst: None,
            outages: Vec::new(),
        }
    }

    /// The outage mode in force at `now`, if any. Overlapping windows
    /// resolve to the earliest-listed match (callers build disjoint
    /// windows in practice).
    pub fn active_outage(&self, now: SimTime) -> Option<OutageMode> {
        self.outages
            .iter()
            .find(|w| w.contains(now))
            .map(|w| w.mode)
    }
}

impl From<FaultInjector> for FaultSchedule {
    fn from(base: FaultInjector) -> FaultSchedule {
        FaultSchedule::calm(base)
    }
}

/// Which fault regime a campaign runs under (`repro run --fault-profile`).
/// The profile decides whether the burst layer and the stock outage
/// windows are applied on top of the campaign's base [`FaultInjector`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultProfile {
    /// i.i.d. faults only — the historical model.
    #[default]
    Calm,
    /// [`BurstParams::storm`] layered over the base model.
    Bursty,
    /// The burst layer plus representative scheduled outages (a WhatsApp
    /// scraper blackout, a Discord token ban) unless the operator supplies
    /// explicit per-service windows.
    Outage,
}

impl FaultProfile {
    /// Parse a CLI spelling (`calm` / `bursty` / `outage`).
    pub fn parse(s: &str) -> Option<FaultProfile> {
        match s {
            "calm" => Some(FaultProfile::Calm),
            "bursty" => Some(FaultProfile::Bursty),
            "outage" => Some(FaultProfile::Outage),
            _ => None,
        }
    }

    /// The CLI spelling of this profile.
    pub fn name(self) -> &'static str {
        match self {
            FaultProfile::Calm => "calm",
            FaultProfile::Bursty => "bursty",
            FaultProfile::Outage => "outage",
        }
    }

    /// The burst layer this profile adds, if any.
    pub fn burst(self) -> Option<BurstParams> {
        match self {
            FaultProfile::Calm => None,
            FaultProfile::Bursty | FaultProfile::Outage => Some(BurstParams::storm()),
        }
    }
}

/// The ways a [`CorruptionSchedule`] can mangle a successful wire body.
///
/// Every mutation is *constructed to be detectable* by a hardened parser
/// operating on self-describing documents (a leading `n: <field-count>`
/// header plus identity-echo fields): truncation leaves a partial line,
/// splicing displaces the type line, drops/duplications break the declared
/// field count, numeric garbage breaks numeric conversion, noise inserts a
/// separator-free line, a cross-document splice changes the document type
/// or its echoed identity, and schema drift adds an undeclared field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptionKind {
    /// The tail of the body is cut off mid-line (a half-written page).
    Truncate,
    /// Lines are spliced out of order: the type line is displaced.
    SpliceLines,
    /// A field line vanishes.
    DropKey,
    /// A field line is doubled.
    DuplicateKey,
    /// A numeric-looking value is replaced with garbage.
    GarbleNumber,
    /// A separator-free mojibake line is inserted (encoding noise).
    EncodingNoise,
    /// The whole body is replaced with the previous successful body this
    /// client saw — group A's document served under group B's URL.
    CrossSplice,
    /// A field key is renamed and an undeclared extra field is appended
    /// (the far end deployed a drifted schema).
    SchemaDrift,
}

impl CorruptionKind {
    /// All mutation kinds, in the order the corruption RNG indexes them.
    pub const ALL: [CorruptionKind; 8] = [
        CorruptionKind::Truncate,
        CorruptionKind::SpliceLines,
        CorruptionKind::DropKey,
        CorruptionKind::DuplicateKey,
        CorruptionKind::GarbleNumber,
        CorruptionKind::EncodingNoise,
        CorruptionKind::CrossSplice,
        CorruptionKind::SchemaDrift,
    ];

    /// Short label for traces and metrics.
    pub fn label(self) -> &'static str {
        match self {
            CorruptionKind::Truncate => "truncate",
            CorruptionKind::SpliceLines => "splice-lines",
            CorruptionKind::DropKey => "drop-key",
            CorruptionKind::DuplicateKey => "duplicate-key",
            CorruptionKind::GarbleNumber => "garble-number",
            CorruptionKind::EncodingNoise => "encoding-noise",
            CorruptionKind::CrossSplice => "cross-splice",
            CorruptionKind::SchemaDrift => "schema-drift",
        }
    }
}

/// Separator-free junk lines used by [`CorruptionKind::EncodingNoise`]
/// (none contains `": "`, so each is a guaranteed malformed line).
const NOISE_LINES: [&str; 4] = [
    "\u{FFFD}\u{FFFD}\u{FFFD}#%^",
    "Ã©Ã¼â\u{FFFD}™",
    "<<<binary;gunk;0xdeadbeef>>>",
    "\u{FFFD}�%PDF-1.4",
];

/// Replacement values used by [`CorruptionKind::GarbleNumber`] (none
/// parses as an integer or as a message triple).
const GARBLE_VALUES: [&str; 4] = ["NaN", "-1.5e99", "0xDEAD", "??"];

/// Deterministic payload-corruption model: with probability `rate`, a
/// successful response body is mangled by one uniformly chosen
/// [`CorruptionKind`] before the caller sees it.
///
/// The schedule is *content-level only* — it never changes a status code,
/// so hardened ingestion (not the transport) is responsible for detecting
/// the damage. A `rate` of zero draws nothing from the RNG, keeping a calm
/// configuration bit-identical to a corruption-free build.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorruptionSchedule {
    /// Probability that any one successful response is corrupted.
    pub rate: f64,
}

impl CorruptionSchedule {
    /// A schedule corrupting each successful body with probability `rate`
    /// (clamped to [0, 1]).
    pub fn new(rate: f64) -> CorruptionSchedule {
        CorruptionSchedule {
            rate: rate.clamp(0.0, 1.0),
        }
    }

    /// A schedule that never corrupts anything (and never draws from the
    /// RNG).
    pub fn none() -> CorruptionSchedule {
        CorruptionSchedule { rate: 0.0 }
    }

    /// Whether this schedule can ever corrupt a body.
    pub fn is_active(&self) -> bool {
        self.rate > 0.0
    }

    /// Roll for corruption of the next successful body.
    pub fn corrupt_now(&self, rng: &mut Rng) -> bool {
        self.rate > 0.0 && rng.chance(self.rate)
    }

    /// Mangle `body` with one uniformly chosen mutation, returning the
    /// corrupted text and the mutation actually applied. `prev_ok` is the
    /// previous *clean* successful body the same client saw, used by
    /// [`CorruptionKind::CrossSplice`]; when it is absent or identical to
    /// `body` the splice degrades to [`CorruptionKind::EncodingNoise`].
    pub fn corrupt_body(
        &self,
        body: &str,
        prev_ok: Option<&str>,
        rng: &mut Rng,
    ) -> (String, CorruptionKind) {
        let kind = CorruptionKind::ALL[rng.index(CorruptionKind::ALL.len())];
        let lines: Vec<&str> = body.lines().collect();
        match kind {
            CorruptionKind::Truncate => {
                if lines.len() < 2 {
                    return (insert_noise(&lines, rng), CorruptionKind::EncodingNoise);
                }
                // Keep a prefix and end with the *key* of the first dropped
                // field line: a fragment with no ": " separator, exactly
                // what a connection cut mid-write leaves behind.
                let cut = rng.range(1, lines.len() as u64 - 1) as usize;
                let fragment = lines[cut].split(':').next().unwrap_or("\u{FFFD}");
                let mut out: Vec<&str> = lines[..cut].to_vec();
                let fragment = if fragment.is_empty() {
                    "\u{FFFD}"
                } else {
                    fragment
                };
                out.push(fragment);
                (out.join("\n"), kind)
            }
            CorruptionKind::SpliceLines => {
                if lines.len() < 2 {
                    // Nothing to splice: double the only line so the second
                    // copy is a separator-free malformed line.
                    let only = lines.first().copied().unwrap_or("\u{FFFD}");
                    return (format!("{only}\n{only}"), kind);
                }
                // Swap the type line behind the first field line; the body
                // now *starts* with a field line, so a type check fails.
                let mut out: Vec<&str> = Vec::with_capacity(lines.len());
                out.push(lines[1]);
                out.push(lines[0]);
                out.extend_from_slice(&lines[2..]);
                (out.join("\n"), kind)
            }
            CorruptionKind::DropKey => {
                if lines.len() < 3 {
                    return (insert_noise(&lines, rng), CorruptionKind::EncodingNoise);
                }
                // Drop a field line *after* the count header, so the
                // declared count no longer matches.
                let victim = rng.range(2, lines.len() as u64 - 1) as usize;
                let mut out: Vec<&str> = lines.clone();
                out.remove(victim);
                (out.join("\n"), kind)
            }
            CorruptionKind::DuplicateKey => {
                if lines.len() < 2 {
                    return (insert_noise(&lines, rng), CorruptionKind::EncodingNoise);
                }
                let victim = rng.range(1, lines.len() as u64 - 1) as usize;
                let mut out: Vec<&str> = lines.clone();
                out.insert(victim + 1, lines[victim]);
                (out.join("\n"), kind)
            }
            CorruptionKind::GarbleNumber => {
                // Candidates: field lines whose value looks numeric (digits
                // and spaces). The count header always qualifies, so the
                // candidate set is never empty for rendered documents.
                let numeric: Vec<usize> = (1..lines.len())
                    .filter(|&i| {
                        lines[i].split_once(": ").is_some_and(|(_, v)| {
                            !v.is_empty()
                                && v.chars().all(|c| c.is_ascii_digit() || c == ' ')
                                && v.chars().any(|c| c.is_ascii_digit())
                        })
                    })
                    .collect();
                let Some(&victim) = numeric.get(rng.index(numeric.len().max(1))) else {
                    return (insert_noise(&lines, rng), CorruptionKind::EncodingNoise);
                };
                let (key, _) = lines[victim].split_once(": ").expect("filtered above");
                let junk = GARBLE_VALUES[rng.index(GARBLE_VALUES.len())];
                let mut out: Vec<String> = lines.iter().map(|l| l.to_string()).collect();
                out[victim] = format!("{key}: {junk}");
                (out.join("\n"), kind)
            }
            CorruptionKind::EncodingNoise => (insert_noise(&lines, rng), kind),
            CorruptionKind::CrossSplice => match prev_ok {
                Some(prev) if prev != body => (prev.to_string(), kind),
                _ => (insert_noise(&lines, rng), CorruptionKind::EncodingNoise),
            },
            CorruptionKind::SchemaDrift => {
                let mut out: Vec<String> = lines.iter().map(|l| l.to_string()).collect();
                // Rename a field key (drifted schema) when one exists...
                if lines.len() >= 3 {
                    let victim = rng.range(2, lines.len() as u64 - 1) as usize;
                    if let Some((key, value)) = lines[victim].split_once(": ") {
                        out[victim] = format!("x-{key}: {value}");
                    }
                }
                // ...and always append an undeclared extra field, so the
                // declared count is guaranteed to break.
                out.push("x-schema-rev: 2".to_string());
                (out.join("\n"), kind)
            }
        }
    }
}

/// Insert one separator-free noise line at a uniform position after the
/// type line.
fn insert_noise(lines: &[&str], rng: &mut Rng) -> String {
    let noise = NOISE_LINES[rng.index(NOISE_LINES.len())];
    if lines.is_empty() {
        return noise.to_string();
    }
    let at = rng.range(1, lines.len() as u64) as usize;
    let mut out: Vec<&str> = lines.to_vec();
    out.insert(at, noise);
    out.join("\n")
}

/// Which payload-corruption regime a campaign runs under
/// (`repro run --corruption`). Orthogonal to [`FaultProfile`]: the fault
/// profile shapes *whether* responses arrive, the corruption profile
/// shapes *what arrives inside* the successful ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CorruptionProfile {
    /// No payload corruption — the historical model.
    #[default]
    Calm,
    /// Occasional mangled bodies (~2% of successful responses), the
    /// steady-state drizzle long-running scrapers see.
    Noisy,
    /// Heavy corruption (~20% of successful responses): format changes,
    /// mixed-up caches, and mid-deploy schema drift all at once.
    Hostile,
}

impl CorruptionProfile {
    /// Parse a CLI spelling (`calm` / `noisy` / `hostile`).
    pub fn parse(s: &str) -> Option<CorruptionProfile> {
        match s {
            "calm" => Some(CorruptionProfile::Calm),
            "noisy" => Some(CorruptionProfile::Noisy),
            "hostile" => Some(CorruptionProfile::Hostile),
            _ => None,
        }
    }

    /// The CLI spelling of this profile.
    pub fn name(self) -> &'static str {
        match self {
            CorruptionProfile::Calm => "calm",
            CorruptionProfile::Noisy => "noisy",
            CorruptionProfile::Hostile => "hostile",
        }
    }

    /// The corruption schedule this profile configures. `Calm` is exactly
    /// [`CorruptionSchedule::none`], so it draws nothing from any RNG.
    pub fn schedule(self) -> CorruptionSchedule {
        match self {
            CorruptionProfile::Calm => CorruptionSchedule::none(),
            CorruptionProfile::Noisy => CorruptionSchedule::new(0.02),
            CorruptionProfile::Hostile => CorruptionSchedule::new(0.20),
        }
    }
}

/// One injectable storage fault — the disk-side analogue of
/// [`CorruptionKind`]. The injection itself happens inside the checkpoint
/// crate's `FaultVfs` (the one sanctioned filesystem gateway); the kinds
/// are declared here so the whole fault vocabulary (connection, content,
/// storage) lives in one module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DiskFaultKind {
    /// A crash between the tmp-file write and the rename: the `.tmp`
    /// sibling is on disk, the destination never appears, and the writer
    /// believed the save succeeded.
    TornWrite,
    /// A short write: the destination file exists but holds only a
    /// prefix of the intended bytes (data blocks never flushed).
    ShortWrite,
    /// Bit-rot on read: the file on disk is fine, but one bit of the
    /// bytes handed back is flipped (a failing sector, a bad cable).
    BitRot,
    /// `ENOSPC`: the write fails up front, nothing reaches the disk.
    NoSpace,
    /// The rename into place fails; the `.tmp` sibling is left behind
    /// and the destination is untouched.
    RenameFail,
}

impl DiskFaultKind {
    /// Every storage fault kind, in injection-roll order.
    pub const ALL: [DiskFaultKind; 5] = [
        DiskFaultKind::TornWrite,
        DiskFaultKind::ShortWrite,
        DiskFaultKind::BitRot,
        DiskFaultKind::NoSpace,
        DiskFaultKind::RenameFail,
    ];

    /// Stable label for ledgers and diagnostics.
    pub fn label(self) -> &'static str {
        match self {
            DiskFaultKind::TornWrite => "torn-write",
            DiskFaultKind::ShortWrite => "short-write",
            DiskFaultKind::BitRot => "bit-rot",
            DiskFaultKind::NoSpace => "no-space",
            DiskFaultKind::RenameFail => "rename-fail",
        }
    }
}

/// Per-operation injection probabilities for the storage fault domain.
/// Writes roll `no_space`, `torn_write`, `short_write` and `rename_fail`
/// (in that order); reads roll `bit_rot`. A zero rate consumes no RNG
/// draws, so an all-zero schedule is bit-identical to no injection at
/// all — the same contract as [`CorruptionSchedule`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DiskFaultRates {
    /// Probability a save "succeeds" but only the `.tmp` file lands.
    pub torn_write: f64,
    /// Probability a save lands truncated at the destination.
    pub short_write: f64,
    /// Probability a read hands back bytes with one bit flipped.
    pub bit_rot: f64,
    /// Probability a save fails up front with `ENOSPC`.
    pub no_space: f64,
    /// Probability the rename into place fails.
    pub rename_fail: f64,
}

impl DiskFaultRates {
    /// A perfectly healthy disk (no draws consumed).
    pub fn none() -> DiskFaultRates {
        DiskFaultRates::default()
    }

    /// Whether any fault kind has a non-zero rate.
    pub fn is_active(&self) -> bool {
        self.torn_write > 0.0
            || self.short_write > 0.0
            || self.bit_rot > 0.0
            || self.no_space > 0.0
            || self.rename_fail > 0.0
    }
}

/// Which storage fault regime a campaign's snapshot/report I/O runs
/// under (`repro run --disk-fault`). Orthogonal to [`FaultProfile`] and
/// [`CorruptionProfile`]: those shape the *network*; this one shapes the
/// *disk* underneath the checkpoint chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DiskFaultProfile {
    /// A healthy disk — the historical model, byte-identical to no
    /// injection (zero rates draw nothing).
    #[default]
    Calm,
    /// Occasional failures of every kind (~2% each): the aging-disk
    /// drizzle long-running collection boxes see.
    Flaky,
    /// Torn-write heavy (~25% torn, plus short writes, bit-rot, ENOSPC
    /// and rename failures): a machine crashing and brown-outing its way
    /// through a campaign. Chain recovery is the only way through.
    Torn,
}

impl DiskFaultProfile {
    /// Parse a CLI spelling (`calm` / `flaky` / `torn`).
    pub fn parse(s: &str) -> Option<DiskFaultProfile> {
        match s {
            "calm" => Some(DiskFaultProfile::Calm),
            "flaky" => Some(DiskFaultProfile::Flaky),
            "torn" => Some(DiskFaultProfile::Torn),
            _ => None,
        }
    }

    /// The CLI spelling of this profile.
    pub fn name(self) -> &'static str {
        match self {
            DiskFaultProfile::Calm => "calm",
            DiskFaultProfile::Flaky => "flaky",
            DiskFaultProfile::Torn => "torn",
        }
    }

    /// The injection rates this profile configures. `Calm` is exactly
    /// [`DiskFaultRates::none`], so it draws nothing from any RNG.
    pub fn rates(self) -> DiskFaultRates {
        match self {
            DiskFaultProfile::Calm => DiskFaultRates::none(),
            DiskFaultProfile::Flaky => DiskFaultRates {
                torn_write: 0.02,
                short_write: 0.02,
                bit_rot: 0.02,
                no_space: 0.02,
                rename_fail: 0.02,
            },
            DiskFaultProfile::Torn => DiskFaultRates {
                torn_write: 0.25,
                short_write: 0.10,
                bit_rot: 0.05,
                no_space: 0.05,
                rename_fail: 0.05,
            },
        }
    }

    /// Whether snapshot-save failures under this profile are *expected*
    /// (injected) and must cost durability, never the run. Under `Calm`
    /// a failed save is a real misconfiguration and still aborts.
    pub fn tolerates_save_failures(self) -> bool {
        self != DiskFaultProfile::Calm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injector_extremes() {
        let mut rng = Rng::new(1);
        let always = FaultInjector::new(1.0, 1.0);
        let never = FaultInjector::none();
        for _ in 0..100 {
            assert!(always.drop_now(&mut rng));
            assert!(always.error_now(&mut rng));
            assert!(!never.drop_now(&mut rng));
            assert!(!never.error_now(&mut rng));
        }
    }

    #[test]
    fn injector_clamps_probabilities() {
        let f = FaultInjector::new(7.0, -2.0);
        assert_eq!(f.drop_chance, 1.0);
        assert_eq!(f.error_chance, 0.0);
    }

    #[test]
    fn bucket_burst_then_throttle() {
        let mut b = TokenBucket::new(3.0, 1.0, SimTime(0));
        // Three immediate tokens.
        for _ in 0..3 {
            assert_eq!(b.acquire(SimTime(0)), Some(SimDuration::ZERO));
        }
        // Fourth must wait ~1s.
        let wait = b.acquire(SimTime(0)).unwrap();
        assert_eq!(wait, SimDuration::secs(1));
    }

    #[test]
    fn bucket_refills_over_time() {
        let mut b = TokenBucket::new(5.0, 2.0, SimTime(0));
        for _ in 0..5 {
            b.acquire(SimTime(0)).unwrap();
        }
        assert!(b.available(SimTime(0)) < 1.0);
        // After 2 virtual seconds at 2 tokens/sec, ~4 tokens are back.
        let avail = b.available(SimTime(2));
        assert!((3.5..=5.0).contains(&avail), "available {avail}");
        assert_eq!(b.acquire(SimTime(2)), Some(SimDuration::ZERO));
    }

    #[test]
    fn bucket_never_exceeds_capacity() {
        let mut b = TokenBucket::new(2.0, 100.0, SimTime(0));
        assert!(b.available(SimTime(1_000_000)) <= 2.0);
    }

    #[test]
    fn bucket_refuses_hour_long_waits() {
        let mut b = TokenBucket::new(1.0, 0.0001, SimTime(0));
        b.acquire(SimTime(0)).unwrap();
        assert_eq!(b.acquire(SimTime(0)), None);
    }

    #[test]
    #[should_panic]
    fn bucket_rejects_zero_rate() {
        let _ = TokenBucket::new(1.0, 0.0, SimTime(0));
    }

    #[test]
    fn backoff_grows_and_caps() {
        let mut rng = Rng::new(2);
        let mut b = Backoff::new(SimDuration::secs(1), 2.0, SimDuration::secs(8));
        // Ceilings: 1, 2, 4, 8, 8, 8...
        let expected_ceilings = [1u64, 2, 4, 8, 8, 8];
        for &ceil in &expected_ceilings {
            let d = b.next_delay(&mut rng);
            assert!(d.as_secs() <= ceil, "delay {d} above ceiling {ceil}");
        }
        assert_eq!(b.attempts(), 6);
    }

    #[test]
    fn backoff_reset_restarts_schedule() {
        let mut rng = Rng::new(3);
        let mut b = Backoff::new(SimDuration::secs(10), 2.0, SimDuration::secs(1000));
        for _ in 0..5 {
            b.next_delay(&mut rng);
        }
        b.reset();
        assert_eq!(b.attempts(), 0);
        let d = b.next_delay(&mut rng);
        assert!(d.as_secs() <= 10);
    }

    #[test]
    fn backoff_jitter_varies() {
        let mut rng = Rng::new(4);
        let mut b = Backoff::new(SimDuration::secs(100), 1.0, SimDuration::secs(100));
        let delays: std::collections::HashSet<u64> =
            (0..50).map(|_| b.next_delay(&mut rng).as_secs()).collect();
        assert!(delays.len() > 10, "jitter should spread delays");
    }

    #[test]
    #[should_panic(expected = "clock went backwards")]
    #[cfg(debug_assertions)]
    fn bucket_rejects_regressed_clock() {
        let mut b = TokenBucket::new(3.0, 1.0, SimTime(0));
        b.acquire(SimTime(10)).unwrap();
        let _ = b.acquire(SimTime(5));
    }

    #[test]
    fn outage_window_bounds_are_half_open() {
        let w = OutageWindow {
            from: SimTime(100),
            until: SimTime(200),
            mode: OutageMode::Blackout,
        };
        assert!(!w.contains(SimTime(99)));
        assert!(w.contains(SimTime(100)));
        assert!(w.contains(SimTime(199)));
        assert!(!w.contains(SimTime(200)));
    }

    #[test]
    fn calm_schedule_is_exactly_the_base_model() {
        let base = FaultInjector::new(0.1, 0.2);
        let s = FaultSchedule::from(base);
        assert_eq!(s.base, base);
        assert!(s.burst.is_none());
        assert!(s.active_outage(SimTime(0)).is_none());
    }

    #[test]
    fn schedule_reports_the_active_outage_mode() {
        let mut s = FaultSchedule::calm(FaultInjector::none());
        s.outages.push(OutageWindow {
            from: SimTime(10),
            until: SimTime(20),
            mode: OutageMode::Ban,
        });
        assert_eq!(s.active_outage(SimTime(9)), None);
        assert_eq!(s.active_outage(SimTime(10)), Some(OutageMode::Ban));
        assert_eq!(s.active_outage(SimTime(20)), None);
    }

    #[test]
    fn corruption_profile_cli_spellings_round_trip() {
        for p in [
            CorruptionProfile::Calm,
            CorruptionProfile::Noisy,
            CorruptionProfile::Hostile,
        ] {
            assert_eq!(CorruptionProfile::parse(p.name()), Some(p));
        }
        assert_eq!(CorruptionProfile::parse("byzantine"), None);
        assert!(!CorruptionProfile::Calm.schedule().is_active());
        assert!(CorruptionProfile::Noisy.schedule().is_active());
        assert!(
            CorruptionProfile::Hostile.schedule().rate > CorruptionProfile::Noisy.schedule().rate
        );
    }

    #[test]
    fn zero_rate_corruption_draws_nothing() {
        let mut rng = Rng::new(5);
        let before = rng.state();
        let s = CorruptionSchedule::none();
        for _ in 0..100 {
            assert!(!s.corrupt_now(&mut rng));
        }
        assert_eq!(rng.state(), before, "calm corruption must not draw");
    }

    #[test]
    fn corrupt_body_is_deterministic() {
        let body = "doc\nn: 2\nsize: 10\ntitle: hello";
        let s = CorruptionSchedule::new(1.0);
        let a = s.corrupt_body(body, Some("prev\nn: 0"), &mut Rng::new(42));
        let b = s.corrupt_body(body, Some("prev\nn: 0"), &mut Rng::new(42));
        assert_eq!(a, b);
    }

    #[test]
    fn corrupt_body_always_changes_rendered_documents() {
        // Over many draws every mutation kind fires; none may return the
        // body unchanged (given a distinct previous body for splices).
        let body = "doc\nn: 3\nsize: 10\ntitle: hello world\nonline: 4";
        let prev = "other\nn: 1\nsize: 9";
        let s = CorruptionSchedule::new(1.0);
        let mut rng = Rng::new(7);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..500 {
            let (mangled, kind) = s.corrupt_body(body, Some(prev), &mut rng);
            assert_ne!(mangled, body, "{kind:?} left the body unchanged");
            seen.insert(kind.label());
        }
        assert_eq!(
            seen.len(),
            CorruptionKind::ALL.len(),
            "kinds seen: {seen:?}"
        );
    }

    #[test]
    fn cross_splice_degrades_without_history() {
        let body = "doc\nn: 1\nsize: 10";
        let s = CorruptionSchedule::new(1.0);
        let mut rng = Rng::new(0);
        for _ in 0..200 {
            let (mangled, kind) = s.corrupt_body(body, None, &mut rng);
            assert_ne!(kind, CorruptionKind::CrossSplice);
            assert_ne!(mangled, body);
        }
    }

    #[test]
    fn noise_lines_never_contain_a_separator() {
        for l in NOISE_LINES {
            assert!(!l.contains(": "), "noise line {l:?} would parse as a field");
        }
        for v in GARBLE_VALUES {
            assert!(v.parse::<u64>().is_err() && v.parse::<i64>().is_err());
        }
    }

    #[test]
    fn fault_profile_cli_spellings_round_trip() {
        for p in [
            FaultProfile::Calm,
            FaultProfile::Bursty,
            FaultProfile::Outage,
        ] {
            assert_eq!(FaultProfile::parse(p.name()), Some(p));
        }
        assert_eq!(FaultProfile::parse("stormy"), None);
        assert!(FaultProfile::Calm.burst().is_none());
        assert!(FaultProfile::Bursty.burst().is_some());
        assert!(FaultProfile::Outage.burst().is_some());
    }

    #[test]
    fn disk_fault_profile_cli_spellings_round_trip() {
        for p in [
            DiskFaultProfile::Calm,
            DiskFaultProfile::Flaky,
            DiskFaultProfile::Torn,
        ] {
            assert_eq!(DiskFaultProfile::parse(p.name()), Some(p));
        }
        assert_eq!(DiskFaultProfile::parse("shredded"), None);
        assert!(!DiskFaultProfile::Calm.rates().is_active());
        assert!(DiskFaultProfile::Flaky.rates().is_active());
        assert!(
            DiskFaultProfile::Torn.rates().torn_write > DiskFaultProfile::Flaky.rates().torn_write
        );
        assert!(!DiskFaultProfile::Calm.tolerates_save_failures());
        assert!(DiskFaultProfile::Torn.tolerates_save_failures());
    }

    #[test]
    fn disk_fault_kind_labels_are_distinct() {
        let labels: std::collections::BTreeSet<_> =
            DiskFaultKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), DiskFaultKind::ALL.len());
    }
}
