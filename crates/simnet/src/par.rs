//! Deterministic parallel runtime: a scoped worker pool whose results are
//! bit-identical for a given seed **regardless of thread count**.
//!
//! The contract that makes this safe to drop into a reproducible pipeline:
//!
//! 1. **Fixed chunking by index.** Work is split into chunks whose
//!    boundaries depend only on the input length (and an explicit chunk
//!    size), never on how many workers exist. A 1-thread run and an
//!    8-thread run process the exact same chunks.
//! 2. **Chunk-local state.** Each chunk's computation sees only its items
//!    (plus read-only shared state). Callers that need randomness derive a
//!    per-chunk stream with [`crate::rng::Rng::fork`] keyed by the chunk
//!    index — never by a worker id.
//! 3. **Ordered merge.** Chunk results are merged in ascending chunk
//!    order on the calling thread, so floating-point accumulation order —
//!    and therefore every bit of the output — is scheduling-independent.
//!
//! Threads only decide *when* a chunk runs, never *what* it computes or
//! *where* its result lands. `threads == 1` short-circuits to an inline
//! loop over the same chunks, producing the identical merge sequence.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Upper bound on chunks produced by the default chunking, keeping
/// per-chunk scheduling overhead negligible for large inputs.
const MAX_DEFAULT_CHUNKS: usize = 64;

/// Smallest default chunk worth scheduling as a unit.
const MIN_DEFAULT_CHUNK: usize = 16;

/// Default chunk size for `len` items: a pure function of the input
/// length (never of thread count), so chunk boundaries are reproducible.
pub fn default_chunk_size(len: usize) -> usize {
    len.div_ceil(MAX_DEFAULT_CHUNKS).max(MIN_DEFAULT_CHUNK)
}

/// A deterministic worker pool. Cheap to construct; spawns scoped threads
/// per call (no idle workers linger between calls).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    threads: usize,
}

impl Default for Pool {
    fn default() -> Self {
        Pool::new(1)
    }
}

impl Pool {
    /// A pool running work on `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Pool {
        Pool {
            threads: threads.max(1),
        }
    }

    /// Number of worker threads this pool uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `work(0..n_tasks)` across the pool and returns results in task
    /// order. The scheduling backbone of every other method: tasks are
    /// claimed from a shared counter, results are reassembled by task
    /// index, so output order never depends on which worker ran what.
    pub fn run_tasks<R, W>(&self, n_tasks: usize, work: W) -> Vec<R>
    where
        R: Send,
        W: Fn(usize) -> R + Sync,
    {
        if self.threads == 1 || n_tasks <= 1 {
            return (0..n_tasks).map(work).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n_tasks));
        crossbeam::scope(|scope| {
            for _ in 0..self.threads.min(n_tasks) {
                scope.spawn(|_| loop {
                    let task = next.fetch_add(1, Ordering::Relaxed);
                    if task >= n_tasks {
                        break;
                    }
                    let result = work(task);
                    slots.lock().push((task, result));
                });
            }
        })
        .expect("par worker panicked");
        let mut ordered = slots.into_inner();
        ordered.sort_by_key(|(task, _)| *task);
        ordered.into_iter().map(|(_, r)| r).collect()
    }

    /// Maps `f` over `items` in parallel; equivalent to
    /// `items.iter().map(f).collect()` bit-for-bit, at any thread count.
    ///
    /// The item lifetime `'i` is explicit so results may borrow from the
    /// input slice (the workers run under a scope that `items` outlives).
    pub fn par_map<'i, T, U, F>(&self, items: &'i [T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&'i T) -> U + Sync,
    {
        self.par_map_chunked(default_chunk_size(items.len()), items, f)
    }

    /// [`Pool::par_map`] with an explicit chunk size (must be nonzero).
    /// Chunk `c` covers items `[c*chunk_size, (c+1)*chunk_size)`.
    pub fn par_map_chunked<'i, T, U, F>(&self, chunk_size: usize, items: &'i [T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&'i T) -> U + Sync,
    {
        assert!(chunk_size > 0, "chunk_size must be nonzero");
        let n_chunks = items.len().div_ceil(chunk_size);
        let per_chunk: Vec<Vec<U>> = self.run_tasks(n_chunks, |c| {
            let lo = c * chunk_size;
            let hi = (lo + chunk_size).min(items.len());
            items[lo..hi].iter().map(&f).collect()
        });
        per_chunk.into_iter().flatten().collect()
    }

    /// Runs `f` over disjoint mutable chunks of `items` (chunk `c` covers
    /// `[c*chunk_size, (c+1)*chunk_size)`), returning per-chunk results in
    /// chunk order. The mutable analogue of [`Pool::par_map_chunked`] for
    /// algorithms that update chunk-local state in place (e.g. Gibbs
    /// sweeps mutating per-document topic assignments).
    pub fn par_chunks_mut<T, R, F>(&self, chunk_size: usize, items: &mut [T], f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, &mut [T]) -> R + Sync,
    {
        assert!(chunk_size > 0, "chunk_size must be nonzero");
        let n_chunks = items.len().div_ceil(chunk_size);
        if self.threads == 1 || n_chunks <= 1 {
            return items
                .chunks_mut(chunk_size)
                .enumerate()
                .map(|(c, chunk)| f(c, chunk))
                .collect();
        }
        // Hand each worker exclusive ownership of its claimed chunk by
        // taking the `&mut` slice out of a shared slot table.
        let slots: Mutex<Vec<Option<&mut [T]>>> =
            Mutex::new(items.chunks_mut(chunk_size).map(Some).collect());
        let next = AtomicUsize::new(0);
        let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n_chunks));
        crossbeam::scope(|scope| {
            for _ in 0..self.threads.min(n_chunks) {
                scope.spawn(|_| loop {
                    let task = next.fetch_add(1, Ordering::Relaxed);
                    if task >= n_chunks {
                        break;
                    }
                    let chunk = slots.lock()[task].take().expect("chunk claimed once");
                    let result = f(task, chunk);
                    results.lock().push((task, result));
                });
            }
        })
        .expect("par worker panicked");
        let mut ordered = results.into_inner();
        ordered.sort_by_key(|(task, _)| *task);
        ordered.into_iter().map(|(_, r)| r).collect()
    }

    /// Sharded fold: each chunk folds `fold` over its items (with global
    /// item index) starting from `init()`, then the per-chunk accumulators
    /// are combined with `merge` in ascending chunk order — so even
    /// non-associative merges (floating point) are reproducible.
    pub fn par_fold<T, A, I, F, M>(&self, items: &[T], init: I, fold: F, merge: M) -> A
    where
        T: Sync,
        A: Send,
        I: Fn() -> A + Sync,
        F: Fn(A, usize, &T) -> A + Sync,
        M: Fn(A, A) -> A,
    {
        let chunk_size = default_chunk_size(items.len());
        let n_chunks = items.len().div_ceil(chunk_size);
        let accs: Vec<A> = self.run_tasks(n_chunks, |c| {
            let lo = c * chunk_size;
            let hi = (lo + chunk_size).min(items.len());
            items[lo..hi]
                .iter()
                .enumerate()
                .fold(init(), |acc, (j, item)| fold(acc, lo + j, item))
        });
        accs.into_iter().reduce(merge).unwrap_or_else(init)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_matches_serial_at_any_thread_count() {
        let items: Vec<u64> = (0..1000).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for threads in [1, 2, 3, 8] {
            let pool = Pool::new(threads);
            assert_eq!(
                pool.par_map(&items, |x| x * x + 1),
                serial,
                "{threads} threads"
            );
        }
    }

    #[test]
    fn chunk_boundaries_do_not_depend_on_threads() {
        let items: Vec<usize> = (0..100).collect();
        // f records its item; order of output must be input order always.
        for chunk in [1, 7, 16, 100, 1000] {
            for threads in [1, 2, 8] {
                let out = Pool::new(threads).par_map_chunked(chunk, &items, |&x| x);
                assert_eq!(out, items, "chunk={chunk} threads={threads}");
            }
        }
    }

    #[test]
    fn par_fold_is_bit_identical_across_thread_counts() {
        // Floating-point sums are order-sensitive; the ordered merge must
        // make every thread count produce the same bits.
        let items: Vec<f64> = (0..5000).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let fold = |acc: f64, _i: usize, x: &f64| acc + x;
        let reference = Pool::new(1).par_fold(&items, || 0.0, fold, |a, b| a + b);
        for threads in [2, 4, 8] {
            let sum = Pool::new(threads).par_fold(&items, || 0.0, fold, |a, b| a + b);
            assert_eq!(sum.to_bits(), reference.to_bits(), "{threads} threads");
        }
    }

    #[test]
    fn empty_input_yields_init() {
        let pool = Pool::new(4);
        let out: Vec<u32> = pool.par_map(&[] as &[u32], |x| *x);
        assert!(out.is_empty());
        let acc = pool.par_fold(&[] as &[u32], || 42u64, |a, _, _| a + 1, |a, b| a + b);
        assert_eq!(acc, 42);
    }

    #[test]
    fn par_chunks_mut_mutates_every_chunk_once() {
        let reference: Vec<u64> = (0..200u64).map(|x| x + 1000).collect();
        for threads in [1, 2, 8] {
            let mut items: Vec<u64> = (0..200).collect();
            let chunk_ids = Pool::new(threads).par_chunks_mut(32, &mut items, |c, chunk| {
                for x in chunk.iter_mut() {
                    *x += 1000;
                }
                c
            });
            assert_eq!(items, reference, "{threads} threads");
            assert_eq!(chunk_ids, (0..7).collect::<Vec<_>>());
        }
    }

    #[test]
    fn run_tasks_returns_in_task_order() {
        let pool = Pool::new(8);
        let out = pool.run_tasks(50, |t| t * 2);
        assert_eq!(out, (0..50).map(|t| t * 2).collect::<Vec<_>>());
    }

    #[test]
    fn pool_clamps_zero_threads() {
        assert_eq!(Pool::new(0).threads(), 1);
    }
}
