//! Virtual time and calendar arithmetic.
//!
//! The simulation measures time in whole **seconds** since the Unix epoch
//! (1970-01-01T00:00:00Z). The paper's data-collection window runs from
//! 2020-04-08 through 2020-05-15 (38 days); [`Date`] provides exact civil
//! (proleptic Gregorian) date arithmetic so campaign schedules — "query the
//! Search API every hour", "scrape every group's landing page once per day"
//! — are expressed in calendar terms rather than raw offsets.
//!
//! Civil-date conversions use Howard Hinnant's `days_from_civil` /
//! `civil_from_days` algorithms, which are exact over the entire `i64` range
//! used here.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Seconds in one minute.
pub const SECS_PER_MINUTE: u64 = 60;
/// Seconds in one hour.
pub const SECS_PER_HOUR: u64 = 3_600;
/// Seconds in one civil day.
pub const SECS_PER_DAY: u64 = 86_400;

/// An instant of virtual time: whole seconds since the Unix epoch.
///
/// `SimTime` is the only notion of "now" in the simulation; nothing reads
/// the host clock, which is what makes runs reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time in whole seconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// A duration of `n` seconds.
    pub const fn secs(n: u64) -> Self {
        SimDuration(n)
    }

    /// A duration of `n` minutes.
    pub const fn minutes(n: u64) -> Self {
        SimDuration(n * SECS_PER_MINUTE)
    }

    /// A duration of `n` hours.
    pub const fn hours(n: u64) -> Self {
        SimDuration(n * SECS_PER_HOUR)
    }

    /// A duration of `n` civil days.
    pub const fn days(n: u64) -> Self {
        SimDuration(n * SECS_PER_DAY)
    }

    /// The duration as whole seconds.
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// The duration as whole days, truncating.
    pub const fn as_days(self) -> u64 {
        self.0 / SECS_PER_DAY
    }

    /// Saturating duration addition.
    pub const fn saturating_add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }

    /// Multiply the duration by an integer factor, saturating.
    pub const fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl SimTime {
    /// The Unix epoch, the simulation time origin.
    pub const EPOCH: SimTime = SimTime(0);

    /// Construct from whole seconds since the epoch.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s)
    }

    /// Seconds since the epoch.
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// The civil date this instant falls on (UTC).
    pub fn date(self) -> Date {
        Date::from_day_number((self.0 / SECS_PER_DAY) as i64)
    }

    /// Seconds elapsed since midnight of the instant's civil day.
    pub const fn seconds_into_day(self) -> u64 {
        self.0 % SECS_PER_DAY
    }

    /// The instant at the most recent midnight (start of the civil day).
    pub const fn floor_day(self) -> SimTime {
        SimTime(self.0 - self.0 % SECS_PER_DAY)
    }

    /// The instant at the most recent top of the hour.
    pub const fn floor_hour(self) -> SimTime {
        SimTime(self.0 - self.0 % SECS_PER_HOUR)
    }

    /// Time elapsed since `earlier`, saturating at zero if `earlier` is later.
    pub const fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked subtraction of a duration.
    pub const fn checked_sub(self, d: SimDuration) -> Option<SimTime> {
        match self.0.checked_sub(d.0) {
            Some(v) => Some(SimTime(v)),
            None => None,
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = self.date();
        let s = self.seconds_into_day();
        write!(
            f,
            "{}T{:02}:{:02}:{:02}Z",
            d,
            s / SECS_PER_HOUR,
            (s % SECS_PER_HOUR) / SECS_PER_MINUTE,
            s % SECS_PER_MINUTE
        )
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_multiple_of(SECS_PER_DAY) {
            write!(f, "{}d", self.0 / SECS_PER_DAY)
        } else {
            write!(f, "{}s", self.0)
        }
    }
}

/// A civil (proleptic Gregorian, UTC) calendar date.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Date {
    /// Calendar year (e.g. 2020).
    pub year: i32,
    /// Month in `1..=12`.
    pub month: u8,
    /// Day of month in `1..=31`.
    pub day: u8,
}

impl Date {
    /// Construct a date, validating month/day ranges.
    ///
    /// # Panics
    /// Panics if `month` or `day` is out of range for the given month/year;
    /// dates in this codebase are compile-time campaign constants, so an
    /// invalid one is a programming error.
    pub fn new(year: i32, month: u8, day: u8) -> Date {
        assert!((1..=12).contains(&month), "month {month} out of range");
        assert!(
            day >= 1 && day <= days_in_month(year, month),
            "day {day} out of range for {year}-{month:02}"
        );
        Date { year, month, day }
    }

    /// Days since 1970-01-01 (may be negative for earlier dates).
    ///
    /// Implements Hinnant's `days_from_civil`.
    pub fn day_number(self) -> i64 {
        let y = i64::from(self.year) - i64::from(self.month <= 2);
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = y - era * 400; // [0, 399]
        let m = i64::from(self.month);
        let d = i64::from(self.day);
        let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1; // [0, 365]
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
        era * 146_097 + doe - 719_468
    }

    /// The date `days` after 1970-01-01. Inverse of [`Date::day_number`].
    ///
    /// Implements Hinnant's `civil_from_days`.
    pub fn from_day_number(days: i64) -> Date {
        let z = days + 719_468;
        let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
        let doe = z - era * 146_097; // [0, 146096]
        let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
        let mp = (5 * doy + 2) / 153; // [0, 11]
        let d = doy - (153 * mp + 2) / 5 + 1; // [1, 31]
        let m = if mp < 10 { mp + 3 } else { mp - 9 }; // [1, 12]
        Date {
            year: (y + i64::from(m <= 2)) as i32,
            month: m as u8,
            day: d as u8,
        }
    }

    /// Midnight (00:00:00 UTC) at the start of this date.
    ///
    /// # Panics
    /// Panics for dates before 1970, which cannot be represented as
    /// [`SimTime`]. Group *creation* dates older than the epoch do not occur:
    /// the oldest platform in the study launched in 2009.
    pub fn midnight(self) -> SimTime {
        let n = self.day_number();
        assert!(n >= 0, "date {self} precedes the simulation epoch");
        SimTime(n as u64 * SECS_PER_DAY)
    }

    /// The date `n` days after this one (or before, if `n` is negative).
    pub fn plus_days(self, n: i64) -> Date {
        Date::from_day_number(self.day_number() + n)
    }

    /// Whole days from `self` to `other` (positive if `other` is later).
    pub fn days_until(self, other: Date) -> i64 {
        other.day_number() - self.day_number()
    }

    /// Day of week, 0 = Monday … 6 = Sunday.
    pub fn weekday(self) -> u8 {
        // 1970-01-01 was a Thursday (index 3).
        (self.day_number() + 3).rem_euclid(7) as u8
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

/// Whether `year` is a Gregorian leap year.
pub fn is_leap_year(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

/// Number of days in `month` of `year`.
pub fn days_in_month(year: i32, month: u8) -> u8 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap_year(year) {
                29
            } else {
                28
            }
        }
        _ => panic!("invalid month {month}"),
    }
}

/// The fixed study window of the paper: 38 days of data collection,
/// 2020-04-08 through 2020-05-15 inclusive (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StudyWindow {
    /// First day of collection (inclusive).
    pub start: Date,
    /// Last day of collection (inclusive).
    pub end: Date,
}

impl StudyWindow {
    /// The window used throughout the paper.
    pub fn paper() -> StudyWindow {
        StudyWindow {
            start: Date::new(2020, 4, 8),
            end: Date::new(2020, 5, 15),
        }
    }

    /// Number of collection days in the window (inclusive of both ends).
    pub fn num_days(&self) -> u64 {
        (self.start.days_until(self.end) + 1) as u64
    }

    /// Instant at which collection starts.
    pub fn start_time(&self) -> SimTime {
        self.start.midnight()
    }

    /// First instant *after* the window (midnight following the last day).
    pub fn end_time(&self) -> SimTime {
        self.end.plus_days(1).midnight()
    }

    /// The zero-based study-day index of `t`, or `None` if outside the window.
    pub fn day_index(&self, t: SimTime) -> Option<u32> {
        if t < self.start_time() || t >= self.end_time() {
            return None;
        }
        Some(((t - self.start_time()).as_days()) as u32)
    }

    /// The date of the zero-based study day `idx`.
    pub fn date_of_day(&self, idx: u32) -> Date {
        self.start.plus_days(i64::from(idx))
    }

    /// Whether instant `t` falls within the collection window.
    pub fn contains(&self, t: SimTime) -> bool {
        t >= self.start_time() && t < self.end_time()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_roundtrip() {
        let d = Date::new(1970, 1, 1);
        assert_eq!(d.day_number(), 0);
        assert_eq!(Date::from_day_number(0), d);
    }

    #[test]
    fn known_day_numbers() {
        // Spot values cross-checked against `date -d @...`.
        assert_eq!(Date::new(2020, 4, 8).day_number(), 18_360);
        assert_eq!(Date::new(2020, 5, 15).day_number(), 18_397);
        assert_eq!(Date::new(2000, 3, 1).day_number(), 11_017);
        assert_eq!(Date::new(1969, 12, 31).day_number(), -1);
    }

    #[test]
    fn roundtrip_many_days() {
        for n in -200_000..200_000i64 {
            let d = Date::from_day_number(n);
            assert_eq!(d.day_number(), n, "mismatch at day {n} = {d}");
        }
    }

    #[test]
    fn leap_years() {
        assert!(is_leap_year(2020));
        assert!(is_leap_year(2000));
        assert!(!is_leap_year(1900));
        assert!(!is_leap_year(2019));
        assert_eq!(days_in_month(2020, 2), 29);
        assert_eq!(days_in_month(2019, 2), 28);
    }

    #[test]
    fn weekday_known() {
        // 2020-04-08 was a Wednesday.
        assert_eq!(Date::new(2020, 4, 8).weekday(), 2);
        // 1970-01-01 was a Thursday.
        assert_eq!(Date::new(1970, 1, 1).weekday(), 3);
    }

    #[test]
    fn study_window_paper() {
        let w = StudyWindow::paper();
        assert_eq!(w.num_days(), 38);
        assert_eq!(w.day_index(w.start_time()), Some(0));
        assert_eq!(
            w.day_index(w.end_time().checked_sub(SimDuration::secs(1)).unwrap()),
            Some(37)
        );
        assert_eq!(w.day_index(w.end_time()), None);
        assert_eq!(w.date_of_day(37), Date::new(2020, 5, 15));
        assert!(!w.contains(SimTime::EPOCH));
    }

    #[test]
    fn simtime_display() {
        let t = Date::new(2020, 4, 8).midnight() + SimDuration::hours(13) + SimDuration::secs(62);
        assert_eq!(t.to_string(), "2020-04-08T13:01:02Z");
    }

    #[test]
    fn floor_ops() {
        let t = Date::new(2020, 4, 9).midnight() + SimDuration::hours(5) + SimDuration::secs(10);
        assert_eq!(t.floor_day(), Date::new(2020, 4, 9).midnight());
        assert_eq!(
            t.floor_hour(),
            Date::new(2020, 4, 9).midnight() + SimDuration::hours(5)
        );
    }

    #[test]
    fn duration_units() {
        assert_eq!(SimDuration::days(2).as_secs(), 172_800);
        assert_eq!(SimDuration::hours(2).as_secs(), 7_200);
        assert_eq!(SimDuration::minutes(2).as_secs(), 120);
        assert_eq!(SimDuration::days(3).as_days(), 3);
        assert_eq!(SimDuration::secs(86_399).as_days(), 0);
    }

    #[test]
    fn time_arithmetic() {
        let a = SimTime::from_secs(100);
        let b = a + SimDuration::secs(50);
        assert_eq!(b.as_secs(), 150);
        assert_eq!((b - a).as_secs(), 50);
        assert_eq!((a - b).as_secs(), 0, "since() saturates");
        assert_eq!(a.checked_sub(SimDuration::secs(200)), None);
    }
}
