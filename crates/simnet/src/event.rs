//! Discrete-event queue with deterministic tie-breaking.
//!
//! The queue orders pending events by `(time, sequence)`, where `sequence`
//! is a monotonically increasing insertion counter. Two events scheduled
//! for the same instant therefore fire in the order they were scheduled —
//! never in allocator- or hash-order — which is essential for reproducible
//! campaigns.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Opaque handle identifying a scheduled event; can be used to cancel it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

struct Entry<E> {
    at: SimTime,
    seq: u64,
    id: EventId,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A priority queue of timed events carrying payloads of type `E`.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    next_id: u64,
    cancelled: std::collections::HashSet<EventId>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            next_id: 0,
            cancelled: std::collections::HashSet::new(),
        }
    }

    /// Schedule `payload` to fire at `at`. Returns a cancellation handle.
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventId {
        let id = EventId(self.next_id);
        self.next_id += 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            at,
            seq,
            id,
            payload,
        });
        id
    }

    /// Cancel a previously scheduled event. Returns `true` if the event was
    /// still pending (it will be silently skipped when popped).
    pub fn cancel(&mut self, id: EventId) -> bool {
        // Lazy deletion: mark and skip on pop. We cannot cheaply tell whether
        // the id is still in the heap, so report pending-ness by id range.
        if id.0 < self.next_id {
            self.cancelled.insert(id)
        } else {
            false
        }
    }

    /// Time of the next (non-cancelled) event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skim_cancelled();
        self.heap.peek().map(|e| e.at)
    }

    /// Pop the next event as `(time, payload)`, skipping cancelled entries.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.skim_cancelled();
        self.heap.pop().map(|e| (e.at, e.payload))
    }

    /// Number of pending entries, *including* lazily-cancelled ones.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no entries are pending (cancelled entries count as pending
    /// until popped past).
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Snapshot the still-pending (non-cancelled) events as
    /// `(time, payload)` pairs, sorted by `(time, sequence)` — i.e. in the
    /// exact order [`EventQueue::pop`] would deliver them.
    ///
    /// Re-scheduling the returned events into a fresh queue (in order)
    /// reproduces the original pop order, because fresh sequence numbers
    /// are assigned monotonically. This is the checkpoint export path.
    pub fn pending_sorted(&self) -> Vec<(SimTime, E)>
    where
        E: Clone,
    {
        let mut pending: Vec<(SimTime, u64, E)> = self
            .heap
            .iter()
            .filter(|e| !self.cancelled.contains(&e.id))
            .map(|e| (e.at, e.seq, e.payload.clone()))
            .collect();
        pending.sort_by_key(|&(at, seq, _)| (at, seq));
        pending.into_iter().map(|(at, _, p)| (at, p)).collect()
    }

    fn skim_cancelled(&mut self) {
        while let Some(top) = self.heap.peek() {
            if self.cancelled.remove(&top.id) {
                self.heap.pop();
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(30), "c");
        q.schedule(SimTime(10), "a");
        q.schedule(SimTime(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_skips_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime(1), "a");
        q.schedule(SimTime(2), "b");
        assert!(q.cancel(a));
        assert_eq!(q.pop(), Some((SimTime(2), "b")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId(99)));
    }

    #[test]
    fn peek_time_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime(1), "a");
        q.schedule(SimTime(5), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime(5)));
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert_eq!(q.pop(), None);
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(10), 1);
        assert_eq!(q.pop(), Some((SimTime(10), 1)));
        q.schedule(SimTime(5), 2);
        q.schedule(SimTime(7), 3);
        assert_eq!(q.pop(), Some((SimTime(5), 2)));
        q.schedule(SimTime(6), 4);
        assert_eq!(q.pop(), Some((SimTime(6), 4)));
        assert_eq!(q.pop(), Some((SimTime(7), 3)));
    }
}
