//! Simulated request/response transport.
//!
//! The collector crates talk to the simulated platforms the way the paper's
//! tooling talked to the real ones: by issuing requests to named endpoints
//! and parsing textual responses (a scraped landing page, an API reply).
//! This module provides the plumbing:
//!
//! * [`Request`] / [`Response`] — endpoint path, string parameters, status
//!   code, textual body.
//! * [`Service`] — the handler trait a simulated platform implements.
//! * [`Router`] — dispatches requests to services by endpoint prefix.
//! * [`Client`] — the caller side: token-bucket rate limiting, fault
//!   injection, retry with exponential backoff, and trace recording.
//!
//! Latency is *sampled and accounted* (reported on each response and in the
//! trace) rather than woven into the event queue: the campaign operates at
//! hour/day granularity, so per-request latencies only need to be realistic
//! in aggregate, not to reorder events.

use crate::fault::{
    Backoff, CorruptionSchedule, FaultInjector, FaultSchedule, OutageMode, TokenBucket,
    TokenBucketState,
};
use crate::rng::Rng;
use crate::time::{SimDuration, SimTime};
use crate::trace::{BreakerPhase, BreakerTransition, TraceEntry, TraceRecorder, TraceState};
use std::borrow::Cow;
use std::collections::BTreeMap;
use std::fmt;

/// Response status, modelled on the HTTP codes the paper's scrapers saw.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Status {
    /// 200 — successful response with a meaningful body.
    Ok,
    /// 404 — the resource never existed (malformed id, dead vanity URL).
    NotFound,
    /// 410 — the resource existed but was revoked/expired; the body carries
    /// the revocation notice, exactly like a dead invite's landing page.
    Gone,
    /// 429 — rate limited; retry after the embedded number of seconds
    /// (Telegram's FLOOD_WAIT, Twitter's rate-limit window).
    RateLimited(u32),
    /// 403 — authenticated but not allowed (e.g. a bot asked to self-join a
    /// Discord guild).
    Forbidden,
    /// 5xx — transient server error.
    ServerError,
}

impl Status {
    /// Whether a request that got this status is worth retrying.
    pub fn is_retryable(self) -> bool {
        matches!(self, Status::RateLimited(_) | Status::ServerError)
    }
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Status::Ok => write!(f, "200 OK"),
            Status::NotFound => write!(f, "404 Not Found"),
            Status::Gone => write!(f, "410 Gone"),
            Status::RateLimited(s) => write!(f, "429 Rate Limited (retry after {s}s)"),
            Status::Forbidden => write!(f, "403 Forbidden"),
            Status::ServerError => write!(f, "500 Server Error"),
        }
    }
}

/// A request to a named endpoint with string parameters.
///
/// Built on the campaign hot path millions of times per run, so the
/// representation is allocation-shy: endpoint and parameter keys are
/// almost always `'static` literals and borrow them (`Cow`), and the
/// parameter list is a small sorted vector rather than a tree — same
/// deterministic key order, no per-node allocation.
#[derive(Debug, Clone)]
pub struct Request {
    /// Endpoint path, e.g. `"whatsapp/landing"` or `"twitter/search"`.
    pub endpoint: Cow<'static, str>,
    /// Key/value parameters, sorted by key (deterministic tracing); at
    /// most one entry per key.
    pub params: Vec<(Cow<'static, str>, String)>,
}

impl Request {
    /// A request with no parameters.
    pub fn new(endpoint: impl Into<Cow<'static, str>>) -> Request {
        Request {
            endpoint: endpoint.into(),
            params: Vec::new(),
        }
    }

    /// Builder-style parameter attachment. Re-attaching a key replaces
    /// its value, like the map this vector used to be.
    pub fn with(mut self, key: impl Into<Cow<'static, str>>, value: impl Into<String>) -> Request {
        let key = key.into();
        let value = value.into();
        match self
            .params
            .binary_search_by(|(k, _)| k.as_ref().cmp(key.as_ref()))
        {
            Ok(i) => self.params[i].1 = value,
            Err(i) => self.params.insert(i, (key, value)),
        }
        self
    }

    /// Fetch a parameter by key.
    pub fn param(&self, key: &str) -> Option<&str> {
        self.params
            .binary_search_by(|(k, _)| k.as_ref().cmp(key))
            .ok()
            .map(|i| self.params[i].1.as_str())
    }
}

/// A response: status, textual body, and the sampled service latency.
#[derive(Debug, Clone)]
pub struct Response {
    /// Outcome status.
    pub status: Status,
    /// Serialized body (scraped page, API reply). Empty on errors unless the
    /// error page itself carries content (e.g. a revocation notice).
    pub body: String,
    /// Simulated service latency for this exchange.
    pub latency: SimDuration,
}

impl Response {
    /// A 200 response with `body` (latency filled in by the router).
    pub fn ok(body: impl Into<String>) -> Response {
        Response {
            status: Status::Ok,
            body: body.into(),
            latency: SimDuration::ZERO,
        }
    }

    /// An error-ish response with `status` and an optional notice body.
    pub fn status(status: Status, body: impl Into<String>) -> Response {
        Response {
            status,
            body: body.into(),
            latency: SimDuration::ZERO,
        }
    }
}

/// A simulated server-side handler (a platform frontend or API).
pub trait Service {
    /// Handle `req` at virtual time `now`.
    fn handle(&mut self, now: SimTime, req: &Request) -> Response;
}

impl<F> Service for F
where
    F: FnMut(SimTime, &Request) -> Response,
{
    fn handle(&mut self, now: SimTime, req: &Request) -> Response {
        self(now, req)
    }
}

/// Routes requests to registered services by longest matching endpoint
/// prefix (segments separated by `/`).
#[derive(Default)]
pub struct Router<'a> {
    routes: Vec<(String, &'a mut dyn Service)>,
}

impl<'a> Router<'a> {
    /// An empty router.
    pub fn new() -> Self {
        Router { routes: Vec::new() }
    }

    /// Register `service` for endpoints under `prefix`.
    pub fn mount(&mut self, prefix: impl Into<String>, service: &'a mut dyn Service) {
        self.routes.push((prefix.into(), service));
    }

    /// Dispatch a request; unknown endpoints yield 404.
    pub fn dispatch(&mut self, now: SimTime, req: &Request) -> Response {
        let mut best: Option<usize> = None;
        let mut best_len = 0;
        for (i, (prefix, _)) in self.routes.iter().enumerate() {
            let matches = req.endpoint == *prefix
                || (req.endpoint.starts_with(prefix.as_str())
                    && req.endpoint.as_bytes().get(prefix.len()) == Some(&b'/'));
            if matches && prefix.len() >= best_len {
                best = Some(i);
                best_len = prefix.len();
            }
        }
        match best {
            Some(i) => self.routes[i].1.handle(now, req),
            None => Response::status(Status::NotFound, "no such endpoint"),
        }
    }
}

/// Client-side transport error after retries are exhausted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The fault injector dropped every attempt (network unreachable).
    Dropped {
        /// Number of attempts made before giving up.
        attempts: u32,
    },
    /// The final attempt returned a non-retryable or persistent status.
    Failed {
        /// Status of the final attempt.
        status: Status,
        /// Number of attempts made.
        attempts: u32,
    },
    /// The local rate limiter refused to release a token within the
    /// client's patience window.
    RateBudgetExhausted,
    /// The circuit breaker for this endpoint prefix is open: the call was
    /// rejected locally without touching the wire.
    BreakerOpen {
        /// Virtual time at which the breaker will admit a half-open probe.
        until: SimTime,
    },
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Dropped { attempts } => {
                write!(f, "request dropped after {attempts} attempts")
            }
            TransportError::Failed { status, attempts } => {
                write!(f, "request failed with {status} after {attempts} attempts")
            }
            TransportError::RateBudgetExhausted => write!(f, "local rate budget exhausted"),
            TransportError::BreakerOpen { until } => {
                write!(f, "circuit breaker open until t={until}")
            }
        }
    }
}

impl std::error::Error for TransportError {}

/// Configuration for a [`Client`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Maximum attempts per logical request (1 = no retries).
    pub max_attempts: u32,
    /// Base delay for exponential backoff between retries.
    pub backoff_base: SimDuration,
    /// Upper bound on a single backoff delay.
    pub backoff_max: SimDuration,
    /// Sustained request rate allowed by the local token bucket, per second.
    pub rate_per_sec: f64,
    /// Token-bucket burst capacity.
    pub burst: f64,
    /// Mean simulated latency per exchange, in milliseconds (sampled
    /// exponentially; accounted, not scheduled).
    pub mean_latency_ms: f64,
    /// Consecutive *call-level* failures on one endpoint prefix before the
    /// circuit breaker opens. `0` disables the breaker entirely.
    pub breaker_threshold: u32,
    /// How long an open breaker rejects calls before admitting a single
    /// half-open probe.
    pub breaker_cooldown: SimDuration,
    /// Per-call deadline budget: once a call's accumulated virtual waiting
    /// would push past this horizon, the client stops retrying and reports
    /// the failure instead of burning more rate budget.
    pub deadline: SimDuration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            max_attempts: 4,
            backoff_base: SimDuration::secs(1),
            backoff_max: SimDuration::secs(60),
            rate_per_sec: 10.0,
            burst: 20.0,
            mean_latency_ms: 120.0,
            breaker_threshold: 0,
            breaker_cooldown: SimDuration::secs(600),
            deadline: SimDuration::secs(3_600),
        }
    }
}

/// Per-endpoint-prefix circuit breaker state: closed (counting consecutive
/// failed calls) → open (failing fast until a deterministic cooldown
/// elapses) → a single half-open probe that either re-closes or re-opens
/// the breaker. Between calls the state is always `Closed` or `Open`;
/// `HalfOpen` exists only while the probe call is in flight, but is
/// persisted for totality.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Calls flow; `consecutive_failures` exhausted-retry calls in a row
    /// have been observed (reset on any success).
    Closed {
        /// Consecutive failed calls so far.
        consecutive_failures: u32,
    },
    /// Calls are rejected locally until `until`.
    Open {
        /// When the next call is admitted as a half-open probe.
        until: SimTime,
    },
    /// The cooldown elapsed and the probe call is in flight.
    HalfOpen,
}

impl BreakerState {
    /// The coarse phase of this state, for trace transitions.
    pub fn phase(&self) -> BreakerPhase {
        match self {
            BreakerState::Closed { .. } => BreakerPhase::Closed,
            BreakerState::Open { .. } => BreakerPhase::Open,
            BreakerState::HalfOpen => BreakerPhase::HalfOpen,
        }
    }
}

/// The mutable state of a [`Client`], exported by [`Client::state`] and
/// restored with [`Client::restore_state`]. Everything a resumed campaign
/// needs to continue the client's RNG/rate/trace streams bit-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientState {
    /// Token-bucket fill level and refill cursor.
    pub bucket: TokenBucketState,
    /// RNG stream position (latency sampling, fault rolls, backoff jitter).
    pub rng: [u64; 4],
    /// Accumulated virtual wait time.
    pub waited: SimDuration,
    /// Trace ring and exact aggregate counters.
    pub trace: TraceState,
    /// Monotone clock fed to the token bucket (never regresses even when a
    /// retried call's virtual time overtakes the next call's start).
    pub rate_clock: SimTime,
    /// Dedicated RNG stream for Gilbert–Elliott phase transitions.
    pub burst_rng: [u64; 4],
    /// Whether the burst chain is currently in the bad state.
    pub burst_bad: bool,
    /// Circuit-breaker state per endpoint prefix.
    pub breakers: BTreeMap<String, BreakerState>,
    /// Dedicated RNG stream for payload-corruption rolls.
    pub corrupt_rng: [u64; 4],
    /// The previous *clean* successful body (cross-splice source). Only
    /// tracked while a corruption schedule is active.
    pub last_ok_body: Option<String>,
    /// Number of successful responses whose body was corrupted in flight.
    pub corrupted: u64,
}

/// The caller side of the transport: rate limiting, fault injection,
/// retries with backoff, and tracing. One `Client` per logical account or
/// API credential, mirroring how the paper's collectors held one credential
/// per platform.
pub struct Client {
    config: ClientConfig,
    bucket: TokenBucket,
    plan: FaultSchedule,
    rng: Rng,
    /// Dedicated stream for Gilbert–Elliott phase rolls, forked from the
    /// main RNG only when a burst layer is configured so a calm schedule
    /// consumes no extra draws per attempt.
    burst_rng: Rng,
    burst_bad: bool,
    breakers: BTreeMap<String, BreakerState>,
    rate_clock: SimTime,
    /// Payload-corruption model applied to successful bodies only.
    corruption: CorruptionSchedule,
    /// Dedicated stream for corruption rolls, forked from the main RNG only
    /// when a corruption schedule is active so a calm configuration
    /// consumes no extra draws.
    corrupt_rng: Rng,
    /// Previous clean successful body, the cross-splice source. Tracked
    /// only while corruption is active.
    last_ok_body: Option<String>,
    corrupted: u64,
    trace: TraceRecorder,
    /// Virtual time spent waiting (backoff + rate limiting), accumulated so
    /// the campaign can account for collection slowness.
    pub waited: SimDuration,
}

impl Client {
    /// Build a client. `rng` drives latency sampling, fault injection and
    /// backoff jitter; `faults` configures i.i.d. drop/error probabilities.
    pub fn new(config: ClientConfig, faults: FaultInjector, rng: Rng, start: SimTime) -> Self {
        Client::with_schedule(config, FaultSchedule::from(faults), rng, start)
    }

    /// Build a client against a full [`FaultSchedule`] (i.i.d. base, burst
    /// layer, scheduled outages). A schedule with no burst layer and no
    /// outages behaves bit-for-bit like [`Client::new`].
    pub fn with_schedule(
        config: ClientConfig,
        plan: FaultSchedule,
        mut rng: Rng,
        start: SimTime,
    ) -> Self {
        let bucket = TokenBucket::new(config.burst, config.rate_per_sec, start);
        let burst_rng = if plan.burst.is_some() {
            rng.fork("burst")
        } else {
            Rng::new(0)
        };
        Client {
            config,
            bucket,
            plan,
            rng,
            burst_rng,
            burst_bad: false,
            breakers: BTreeMap::new(),
            rate_clock: start,
            corruption: CorruptionSchedule::none(),
            corrupt_rng: Rng::new(0),
            last_ok_body: None,
            corrupted: 0,
            trace: TraceRecorder::new(4096),
            waited: SimDuration::ZERO,
        }
    }

    /// Layer a payload-corruption schedule onto this client. An inactive
    /// schedule is a no-op (no RNG fork, no draws), keeping calm
    /// configurations bit-identical to clients built without this call.
    pub fn with_corruption(mut self, corruption: CorruptionSchedule) -> Client {
        if corruption.is_active() {
            self.corrupt_rng = self.rng.fork("corruption");
        }
        self.corruption = corruption;
        self
    }

    /// Number of successful responses whose body the corruption schedule
    /// mangled in flight.
    pub fn corrupted(&self) -> u64 {
        self.corrupted
    }

    /// A client with default config, no faults, seeded from `seed`.
    pub fn plain(seed: u64, start: SimTime) -> Client {
        Client::new(
            ClientConfig::default(),
            FaultInjector::none(),
            Rng::new(seed),
            start,
        )
    }

    /// Access the recorded trace.
    pub fn trace(&self) -> &TraceRecorder {
        &self.trace
    }

    /// Export the client's mutable state for a checkpoint: token-bucket
    /// fill, RNG position, accumulated wait, and trace aggregates. The
    /// configuration and fault model are *not* included — they are
    /// re-derived deterministically by the caller on restore.
    pub fn state(&self) -> ClientState {
        ClientState {
            bucket: self.bucket.state(),
            rng: self.rng.state(),
            waited: self.waited,
            trace: self.trace.state(),
            rate_clock: self.rate_clock,
            burst_rng: self.burst_rng.state(),
            burst_bad: self.burst_bad,
            breakers: self.breakers.clone(),
            corrupt_rng: self.corrupt_rng.state(),
            last_ok_body: self.last_ok_body.clone(),
            corrupted: self.corrupted,
        }
    }

    /// Overwrite the client's mutable state from an exported
    /// [`ClientState`] (the restore half of checkpointing). The client must
    /// have been rebuilt with the same configuration and fault schedule it
    /// was created with.
    pub fn restore_state(&mut self, s: ClientState) {
        self.bucket = TokenBucket::from_state(s.bucket);
        self.rng = Rng::from_state(s.rng);
        self.waited = s.waited;
        self.trace = TraceRecorder::from_state(s.trace);
        self.rate_clock = s.rate_clock;
        self.burst_rng = Rng::from_state(s.burst_rng);
        self.burst_bad = s.burst_bad;
        self.breakers = s.breakers;
        self.corrupt_rng = Rng::from_state(s.corrupt_rng);
        self.last_ok_body = s.last_ok_body;
        self.corrupted = s.corrupted;
    }

    /// Current circuit-breaker state for an endpoint prefix, if the
    /// breaker has ever counted anything there.
    pub fn breaker(&self, prefix: &str) -> Option<BreakerState> {
        self.breakers.get(prefix).copied()
    }

    /// Issue `req` against `router` at virtual time `now`, with retries.
    ///
    /// On success returns the response. The client's `waited` counter
    /// accumulates all simulated waiting (rate limiting and backoff) that
    /// actually precedes a retry — a wait that would never be served
    /// (because the attempt budget or the deadline is exhausted) is not
    /// charged.
    ///
    /// The per-prefix circuit breaker is consulted first: an open breaker
    /// rejects the call locally ([`TransportError::BreakerOpen`]) without
    /// touching the wire, the rate bucket, or any RNG stream.
    pub fn call(
        &mut self,
        router: &mut Router<'_>,
        now: SimTime,
        req: &Request,
    ) -> Result<Response, TransportError> {
        let prefix = req.endpoint.split('/').next().unwrap_or("");
        let mut probing = false;
        if self.config.breaker_threshold > 0 {
            match self.breakers.get(prefix) {
                Some(BreakerState::Open { until }) if now < *until => {
                    let until = *until;
                    self.trace.record_fast_fail();
                    return Err(TransportError::BreakerOpen { until });
                }
                Some(BreakerState::Open { .. }) => {
                    // Cooldown elapsed: admit this call as the half-open
                    // probe.
                    self.transition(prefix, now, BreakerState::HalfOpen);
                    probing = true;
                }
                _ => {}
            }
        }
        let result = self.call_inner(router, now, req);
        if self.config.breaker_threshold > 0 {
            self.settle_breaker(prefix, now, probing, &result);
        }
        result
    }

    /// The retry loop, without breaker bookkeeping.
    fn call_inner(
        &mut self,
        router: &mut Router<'_>,
        now: SimTime,
        req: &Request,
    ) -> Result<Response, TransportError> {
        // A suspended credential (ban window) answers instantly with 403;
        // retrying cannot help, so fail fast after a single attempt.
        if self.plan.active_outage(now) == Some(OutageMode::Ban) {
            self.trace.record(TraceEntry {
                at: now,
                endpoint: req.endpoint.clone(),
                status: Some(Status::Forbidden),
                latency: SimDuration::ZERO,
                attempt: 1,
            });
            return Err(TransportError::Failed {
                status: Status::Forbidden,
                attempts: 1,
            });
        }
        let mut backoff = Backoff::new(self.config.backoff_base, 2.0, self.config.backoff_max);
        let mut virtual_now = now;
        let deadline = now + self.config.deadline;
        let mut attempts = 0u32;
        let mut last_status: Option<Status> = None;
        while attempts < self.config.max_attempts {
            attempts += 1;
            // Local rate limiting: wait (virtually) for a token. The bucket
            // requires a monotone clock, but a retried call's virtual time
            // can overtake the next call's start time, so feed it the
            // running maximum.
            self.rate_clock = self.rate_clock.max(virtual_now);
            match self.bucket.acquire(self.rate_clock) {
                Some(wait) => {
                    virtual_now += wait;
                    self.waited = self.waited + wait;
                }
                None => return Err(TransportError::RateBudgetExhausted),
            }
            // A blackout outage eats every attempt on the wire without
            // consuming any RNG draws.
            let blackout = self.plan.active_outage(virtual_now) == Some(OutageMode::Blackout);
            // Advance the Gilbert–Elliott chain one step per attempt on its
            // dedicated stream, then pick the fault model for this attempt.
            let injector = match self.plan.burst {
                Some(b) => {
                    self.burst_bad = if self.burst_bad {
                        !self.burst_rng.chance(b.p_exit)
                    } else {
                        self.burst_rng.chance(b.p_enter)
                    };
                    if self.burst_bad {
                        b.bad
                    } else {
                        self.plan.base
                    }
                }
                None => self.plan.base,
            };
            let latency = if blackout {
                SimDuration::ZERO
            } else {
                SimDuration::secs((self.sample_latency_ms() / 1000.0).ceil().max(0.0) as u64)
            };
            // Fault injection: dropped on the wire?
            if blackout || injector.drop_now(&mut self.rng) {
                self.trace.record(TraceEntry {
                    at: virtual_now,
                    endpoint: req.endpoint.clone(),
                    status: None,
                    latency,
                    attempt: attempts,
                });
                if attempts < self.config.max_attempts {
                    let wait = backoff.next_delay(&mut self.rng);
                    if virtual_now + wait > deadline {
                        break;
                    }
                    virtual_now += wait;
                    self.waited = self.waited + wait;
                }
                continue;
            }
            // Injected server-side error?
            let mut resp = if injector.error_now(&mut self.rng) {
                Response::status(Status::ServerError, "injected fault")
            } else {
                router.dispatch(virtual_now, req)
            };
            resp.latency = latency;
            self.trace.record(TraceEntry {
                at: virtual_now,
                endpoint: req.endpoint.clone(),
                status: Some(resp.status),
                latency,
                attempt: attempts,
            });
            match resp.status {
                Status::Ok => {
                    self.maybe_corrupt(&mut resp);
                    return Ok(resp);
                }
                Status::NotFound | Status::Gone | Status::Forbidden => {
                    return Ok(resp);
                }
                // A retryable status on the final allowed attempt accrues
                // no wait: there is no retry left for the wait to precede.
                Status::RateLimited(retry_after) => {
                    last_status = Some(resp.status);
                    if attempts < self.config.max_attempts {
                        let wait = SimDuration::secs(u64::from(retry_after))
                            + backoff.next_delay(&mut self.rng);
                        if virtual_now + wait > deadline {
                            break;
                        }
                        virtual_now += wait;
                        self.waited = self.waited + wait;
                    }
                }
                Status::ServerError => {
                    last_status = Some(resp.status);
                    if attempts < self.config.max_attempts {
                        let wait = backoff.next_delay(&mut self.rng);
                        if virtual_now + wait > deadline {
                            break;
                        }
                        virtual_now += wait;
                        self.waited = self.waited + wait;
                    }
                }
            }
        }
        match last_status {
            Some(status) => Err(TransportError::Failed { status, attempts }),
            None => Err(TransportError::Dropped { attempts }),
        }
    }

    /// Record a breaker transition in the trace and store the new state.
    fn transition(&mut self, prefix: &str, at: SimTime, to: BreakerState) {
        let from = self
            .breakers
            .get(prefix)
            .copied()
            .unwrap_or(BreakerState::Closed {
                consecutive_failures: 0,
            });
        self.trace.record_transition(BreakerTransition {
            at,
            prefix: prefix.to_string(),
            from: from.phase(),
            to: to.phase(),
        });
        self.breakers.insert(prefix.to_string(), to);
    }

    /// Update the breaker after a call resolved. Only service failures
    /// (exhausted retries, fail-fast bans) count toward opening; a local
    /// rate-budget error says nothing about the far end.
    fn settle_breaker(
        &mut self,
        prefix: &str,
        now: SimTime,
        probing: bool,
        result: &Result<Response, TransportError>,
    ) {
        let failed = matches!(
            result,
            Err(TransportError::Dropped { .. }) | Err(TransportError::Failed { .. })
        );
        if failed {
            let reopen = BreakerState::Open {
                until: now + self.config.breaker_cooldown,
            };
            if probing {
                // The half-open probe failed: back to open for another
                // cooldown.
                self.transition(prefix, now, reopen);
                return;
            }
            let count = match self.breakers.get(prefix) {
                Some(BreakerState::Closed {
                    consecutive_failures,
                }) => consecutive_failures + 1,
                _ => 1,
            };
            if count >= self.config.breaker_threshold {
                self.transition(prefix, now, reopen);
            } else {
                self.breakers.insert(
                    prefix.to_string(),
                    BreakerState::Closed {
                        consecutive_failures: count,
                    },
                );
            }
        } else if result.is_ok() {
            if probing {
                self.transition(
                    prefix,
                    now,
                    BreakerState::Closed {
                        consecutive_failures: 0,
                    },
                );
            } else if !matches!(
                self.breakers.get(prefix),
                None | Some(BreakerState::Closed {
                    consecutive_failures: 0
                })
            ) {
                self.breakers.insert(
                    prefix.to_string(),
                    BreakerState::Closed {
                        consecutive_failures: 0,
                    },
                );
            }
        } else if probing {
            // The probe never reached the wire (local rate budget): re-arm
            // the cooldown instead of leaving the breaker half-open.
            self.transition(
                prefix,
                now,
                BreakerState::Open {
                    until: now + self.config.breaker_cooldown,
                },
            );
        }
    }

    /// Roll the corruption schedule against a successful response. Status
    /// codes are never touched — corruption is strictly content-level, so
    /// only hardened parsing downstream can detect it. The clean body is
    /// remembered as the next cross-splice source.
    fn maybe_corrupt(&mut self, resp: &mut Response) {
        if !self.corruption.is_active() {
            return;
        }
        let clean = resp.body.clone();
        if self.corruption.corrupt_now(&mut self.corrupt_rng) {
            let (mangled, _kind) = self.corruption.corrupt_body(
                &clean,
                self.last_ok_body.as_deref(),
                &mut self.corrupt_rng,
            );
            resp.body = mangled;
            self.corrupted += 1;
        }
        self.last_ok_body = Some(clean);
    }

    fn sample_latency_ms(&mut self) -> f64 {
        // Exponential latency with the configured mean.
        let u = 1.0 - self.rng.f64();
        -u.ln() * self.config.mean_latency_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultInjector;

    fn ok_service() -> impl Service {
        |_: SimTime, req: &Request| Response::ok(format!("echo:{}", req.endpoint))
    }

    #[test]
    fn router_dispatches_by_prefix() {
        let mut a = ok_service();
        let mut b = |_: SimTime, _: &Request| Response::ok("b");
        let mut r = Router::new();
        r.mount("alpha", &mut a);
        r.mount("alpha/deep", &mut b);
        let resp = r.dispatch(SimTime(0), &Request::new("alpha/shallow"));
        assert_eq!(resp.body, "echo:alpha/shallow");
        let resp = r.dispatch(SimTime(0), &Request::new("alpha/deep/x"));
        assert_eq!(resp.body, "b", "longest prefix wins");
        let resp = r.dispatch(SimTime(0), &Request::new("alphabet"));
        assert_eq!(
            resp.status,
            Status::NotFound,
            "prefix must end at a segment"
        );
    }

    #[test]
    fn router_unknown_endpoint_404() {
        let mut r = Router::new();
        let resp = r.dispatch(SimTime(0), &Request::new("nowhere"));
        assert_eq!(resp.status, Status::NotFound);
    }

    #[test]
    fn client_success_roundtrip() {
        let mut svc = ok_service();
        let mut router = Router::new();
        router.mount("svc", &mut svc);
        let mut client = Client::plain(1, SimTime(0));
        let resp = client
            .call(&mut router, SimTime(0), &Request::new("svc/op"))
            .unwrap();
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(resp.body, "echo:svc/op");
        assert_eq!(client.trace().len(), 1);
    }

    #[test]
    fn client_retries_server_errors_then_succeeds() {
        let mut remaining_failures = 2;
        let mut svc = move |_: SimTime, _: &Request| {
            if remaining_failures > 0 {
                remaining_failures -= 1;
                Response::status(Status::ServerError, "boom")
            } else {
                Response::ok("fine")
            }
        };
        let mut router = Router::new();
        router.mount("svc", &mut svc);
        let mut client = Client::plain(2, SimTime(0));
        let resp = client
            .call(&mut router, SimTime(0), &Request::new("svc"))
            .unwrap();
        assert_eq!(resp.body, "fine");
        assert_eq!(client.trace().len(), 3, "two failures + one success");
        assert!(client.waited > SimDuration::ZERO, "backoff accumulated");
    }

    #[test]
    fn client_gives_up_after_max_attempts() {
        let mut svc = |_: SimTime, _: &Request| Response::status(Status::ServerError, "");
        let mut router = Router::new();
        router.mount("svc", &mut svc);
        let mut client = Client::plain(3, SimTime(0));
        let err = client
            .call(&mut router, SimTime(0), &Request::new("svc"))
            .unwrap_err();
        assert_eq!(
            err,
            TransportError::Failed {
                status: Status::ServerError,
                attempts: 4
            }
        );
    }

    #[test]
    fn client_honours_rate_limited_retry_after() {
        let mut first = true;
        let mut svc = move |_: SimTime, _: &Request| {
            if first {
                first = false;
                Response::status(Status::RateLimited(30), "")
            } else {
                Response::ok("after wait")
            }
        };
        let mut router = Router::new();
        router.mount("svc", &mut svc);
        let mut client = Client::plain(4, SimTime(0));
        let resp = client
            .call(&mut router, SimTime(0), &Request::new("svc"))
            .unwrap();
        assert_eq!(resp.body, "after wait");
        assert!(
            client.waited >= SimDuration::secs(30),
            "waited {} < retry-after",
            client.waited
        );
    }

    #[test]
    fn non_retryable_statuses_return_immediately() {
        for status in [Status::NotFound, Status::Gone, Status::Forbidden] {
            let mut svc = move |_: SimTime, _: &Request| Response::status(status, "nope");
            let mut router = Router::new();
            router.mount("svc", &mut svc);
            let mut client = Client::plain(5, SimTime(0));
            let resp = client
                .call(&mut router, SimTime(0), &Request::new("svc"))
                .unwrap();
            assert_eq!(resp.status, status);
            assert_eq!(client.trace().len(), 1, "no retries for {status}");
        }
    }

    #[test]
    fn full_drop_faults_exhaust_attempts() {
        let mut svc = ok_service();
        let mut router = Router::new();
        router.mount("svc", &mut svc);
        let mut client = Client::new(
            ClientConfig::default(),
            FaultInjector::new(1.0, 0.0),
            Rng::new(6),
            SimTime(0),
        );
        let err = client
            .call(&mut router, SimTime(0), &Request::new("svc"))
            .unwrap_err();
        assert_eq!(err, TransportError::Dropped { attempts: 4 });
    }

    #[test]
    fn request_params_roundtrip() {
        let req = Request::new("x").with("a", "1").with("b", "2");
        assert_eq!(req.param("a"), Some("1"));
        assert_eq!(req.param("b"), Some("2"));
        assert_eq!(req.param("c"), None);
    }

    #[test]
    fn final_attempt_accrues_no_wait() {
        // A retryable status on the last allowed attempt must not charge a
        // wait that never precedes a retry: with RateLimited(1000) on all 4
        // attempts only 3 retry waits accrue (plus their jitter, capped by
        // the backoff ceilings 1 + 2 + 4).
        let mut svc = |_: SimTime, _: &Request| Response::status(Status::RateLimited(1000), "");
        let mut router = Router::new();
        router.mount("svc", &mut svc);
        let mut client = Client::plain(8, SimTime(0));
        let err = client
            .call(&mut router, SimTime(0), &Request::new("svc"))
            .unwrap_err();
        assert!(matches!(err, TransportError::Failed { attempts: 4, .. }));
        assert!(
            client.waited >= SimDuration::secs(3_000),
            "{}",
            client.waited
        );
        assert!(
            client.waited <= SimDuration::secs(3_007),
            "waited {} charged a wait on the final attempt",
            client.waited
        );
    }

    #[test]
    fn breaker_opens_fails_fast_and_recovers_via_probe() {
        use std::cell::Cell;
        let hits = Cell::new(0u32);
        let healthy = Cell::new(false);
        let mut svc = |_: SimTime, _: &Request| {
            hits.set(hits.get() + 1);
            if healthy.get() {
                Response::ok("fine")
            } else {
                Response::status(Status::ServerError, "down")
            }
        };
        let mut router = Router::new();
        router.mount("svc", &mut svc);
        let config = ClientConfig {
            max_attempts: 2,
            breaker_threshold: 2,
            breaker_cooldown: SimDuration::secs(100),
            ..ClientConfig::default()
        };
        let mut client = Client::new(config, FaultInjector::none(), Rng::new(9), SimTime(0));
        let req = Request::new("svc/op");

        // Two exhausted calls open the breaker.
        for _ in 0..2 {
            let err = client.call(&mut router, SimTime(0), &req).unwrap_err();
            assert!(matches!(err, TransportError::Failed { .. }));
        }
        assert!(matches!(
            client.breaker("svc"),
            Some(BreakerState::Open { .. })
        ));
        let wire_hits = hits.get();

        // While open, calls fail fast without touching the wire.
        let err = client.call(&mut router, SimTime(10), &req).unwrap_err();
        assert_eq!(
            err,
            TransportError::BreakerOpen {
                until: SimTime(100)
            }
        );
        assert_eq!(hits.get(), wire_hits, "open breaker must not hit the wire");
        assert_eq!(client.trace().breaker_fast_fails(), 1);

        // A failed half-open probe re-opens for another cooldown.
        let err = client.call(&mut router, SimTime(120), &req).unwrap_err();
        assert!(matches!(err, TransportError::Failed { .. }));
        assert_eq!(
            client.breaker("svc"),
            Some(BreakerState::Open {
                until: SimTime(220)
            })
        );

        // After the service heals, the next probe re-closes the breaker and
        // traffic flows again: no stuck-open state.
        healthy.set(true);
        let resp = client.call(&mut router, SimTime(250), &req).unwrap();
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(
            client.breaker("svc"),
            Some(BreakerState::Closed {
                consecutive_failures: 0
            })
        );
        let phases: Vec<(BreakerPhase, BreakerPhase)> = client
            .trace()
            .transitions()
            .iter()
            .map(|t| (t.from, t.to))
            .collect();
        assert_eq!(
            phases,
            vec![
                (BreakerPhase::Closed, BreakerPhase::Open),
                (BreakerPhase::Open, BreakerPhase::HalfOpen),
                (BreakerPhase::HalfOpen, BreakerPhase::Open),
                (BreakerPhase::Open, BreakerPhase::HalfOpen),
                (BreakerPhase::HalfOpen, BreakerPhase::Closed),
            ]
        );
    }

    #[test]
    fn ban_window_fails_fast_with_forbidden() {
        let mut svc = ok_service();
        let mut router = Router::new();
        router.mount("svc", &mut svc);
        let mut plan = FaultSchedule::calm(FaultInjector::none());
        plan.outages.push(crate::fault::OutageWindow {
            from: SimTime(0),
            until: SimTime(100),
            mode: OutageMode::Ban,
        });
        let mut client =
            Client::with_schedule(ClientConfig::default(), plan, Rng::new(10), SimTime(0));
        let err = client
            .call(&mut router, SimTime(5), &Request::new("svc"))
            .unwrap_err();
        assert_eq!(
            err,
            TransportError::Failed {
                status: Status::Forbidden,
                attempts: 1
            }
        );
        assert_eq!(client.trace().len(), 1, "a ban must not retry");
        // Outside the window the credential works again.
        let resp = client
            .call(&mut router, SimTime(100), &Request::new("svc"))
            .unwrap();
        assert_eq!(resp.status, Status::Ok);
    }

    #[test]
    fn blackout_window_drops_every_attempt() {
        let mut svc = ok_service();
        let mut router = Router::new();
        router.mount("svc", &mut svc);
        let mut plan = FaultSchedule::calm(FaultInjector::none());
        plan.outages.push(crate::fault::OutageWindow {
            from: SimTime(0),
            until: SimTime(1_000),
            mode: OutageMode::Blackout,
        });
        let mut client =
            Client::with_schedule(ClientConfig::default(), plan, Rng::new(11), SimTime(0));
        let err = client
            .call(&mut router, SimTime(0), &Request::new("svc"))
            .unwrap_err();
        assert_eq!(err, TransportError::Dropped { attempts: 4 });
        let resp = client
            .call(&mut router, SimTime(2_000), &Request::new("svc"))
            .unwrap();
        assert_eq!(resp.status, Status::Ok, "service reachable after outage");
    }

    #[test]
    fn deadline_budget_stops_retrying_early() {
        let mut svc = |_: SimTime, _: &Request| Response::status(Status::RateLimited(100), "");
        let mut router = Router::new();
        router.mount("svc", &mut svc);
        let config = ClientConfig {
            deadline: SimDuration::secs(5),
            ..ClientConfig::default()
        };
        let mut client = Client::new(config, FaultInjector::none(), Rng::new(12), SimTime(0));
        let err = client
            .call(&mut router, SimTime(0), &Request::new("svc"))
            .unwrap_err();
        assert_eq!(
            err,
            TransportError::Failed {
                status: Status::RateLimited(100),
                attempts: 1
            }
        );
        assert_eq!(
            client.waited,
            SimDuration::ZERO,
            "a wait the caller never serves must not be charged"
        );
    }

    #[test]
    fn calm_schedule_is_bit_identical_to_plain_injector() {
        let faults = FaultInjector::new(0.2, 0.1);
        let mut a = Client::new(ClientConfig::default(), faults, Rng::new(13), SimTime(0));
        let mut b = Client::with_schedule(
            ClientConfig::default(),
            FaultSchedule::calm(faults),
            Rng::new(13),
            SimTime(0),
        );
        for (i, client) in [&mut a, &mut b].into_iter().enumerate() {
            let mut svc = ok_service();
            let mut router = Router::new();
            router.mount("svc", &mut svc);
            for k in 0..30u64 {
                let _ok = client.call(&mut router, SimTime(k * 60), &Request::new("svc/x"));
            }
            assert!(client.trace().len() >= 30, "client {i}");
        }
        assert_eq!(a.state(), b.state(), "calm schedule must not perturb");
    }

    #[test]
    fn inactive_corruption_is_bit_identical_to_none_at_all() {
        use crate::fault::CorruptionSchedule;
        let mut a = Client::plain(20, SimTime(0));
        let mut b = Client::plain(20, SimTime(0)).with_corruption(CorruptionSchedule::none());
        for client in [&mut a, &mut b] {
            let mut svc = ok_service();
            let mut router = Router::new();
            router.mount("svc", &mut svc);
            for k in 0..20u64 {
                let _ = client.call(&mut router, SimTime(k * 60), &Request::new("svc/x"));
            }
        }
        assert_eq!(a.state(), b.state(), "inactive corruption must not perturb");
        assert_eq!(a.corrupted(), 0);
    }

    #[test]
    fn corruption_mangles_only_ok_bodies_deterministically() {
        use crate::fault::CorruptionSchedule;
        let run = || {
            let mut gone_next = false;
            let mut svc = move |_: SimTime, _: &Request| {
                gone_next = !gone_next;
                if gone_next {
                    Response::ok("doc\nn: 2\nsize: 10\ntitle: hello")
                } else {
                    Response::status(Status::Gone, "revoked\nn: 0")
                }
            };
            let mut router = Router::new();
            router.mount("svc", &mut svc);
            let mut client =
                Client::plain(21, SimTime(0)).with_corruption(CorruptionSchedule::new(1.0));
            let mut bodies = Vec::new();
            for k in 0..10u64 {
                let resp = client
                    .call(&mut router, SimTime(k * 60), &Request::new("svc/x"))
                    .unwrap();
                bodies.push((resp.status, resp.body));
            }
            (bodies, client.corrupted(), client.state())
        };
        let (bodies, corrupted, state) = run();
        for (status, body) in &bodies {
            match status {
                Status::Ok => assert_ne!(
                    body, "doc\nn: 2\nsize: 10\ntitle: hello",
                    "rate-1.0 corruption must mangle every Ok body"
                ),
                _ => assert_eq!(body, "revoked\nn: 0", "non-Ok bodies are never touched"),
            }
        }
        assert_eq!(corrupted, 5, "five Ok responses, all corrupted");
        let (bodies2, corrupted2, state2) = run();
        assert_eq!(bodies, bodies2, "corruption must be deterministic");
        assert_eq!(corrupted, corrupted2);
        assert_eq!(state, state2);
    }

    #[test]
    fn moderate_faults_eventually_succeed() {
        // With 30% drop and 4 attempts, most calls succeed; verify at least
        // some do and the trace captures the drops.
        let mut svc = ok_service();
        let mut router = Router::new();
        router.mount("svc", &mut svc);
        let mut client = Client::new(
            ClientConfig::default(),
            FaultInjector::new(0.3, 0.0),
            Rng::new(7),
            SimTime(0),
        );
        let mut ok = 0;
        for _ in 0..100 {
            if client
                .call(&mut router, SimTime(0), &Request::new("svc"))
                .is_ok()
            {
                ok += 1;
            }
        }
        assert!(ok > 90, "only {ok}/100 succeeded under 30% drop");
    }
}
