//! SHA-256 (FIPS 180-4), implemented from scratch.
//!
//! The paper's ethics protocol (§3.4) stores only one-way hashes of phone
//! numbers. The offline crate set has no hashing crate, so the digest is
//! implemented here and validated against the official NIST test vectors.

/// Initial hash values: first 32 bits of the fractional parts of the square
/// roots of the first 8 primes.
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Round constants: first 32 bits of the fractional parts of the cube roots
/// of the first 64 primes.
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Incremental SHA-256 hasher.
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; 64],
    buffered: usize,
    length_bits: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// A fresh hasher.
    pub fn new() -> Sha256 {
        Sha256 {
            state: H0,
            buffer: [0u8; 64],
            buffered: 0,
            length_bits: 0,
        }
    }

    /// Absorb `data`.
    pub fn update(&mut self, data: &[u8]) {
        self.length_bits = self
            .length_bits
            .wrapping_add((data.len() as u64).wrapping_mul(8));
        let mut input = data;
        // Fill a partial buffer first.
        if self.buffered > 0 {
            let take = (64 - self.buffered).min(input.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&input[..take]);
            self.buffered += take;
            input = &input[take..];
            if self.buffered == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            }
        }
        // Whole blocks straight from the input.
        while input.len() >= 64 {
            let (block, rest) = input.split_at(64);
            let mut arr = [0u8; 64];
            arr.copy_from_slice(block);
            self.compress(&arr);
            input = rest;
        }
        // Stash the tail.
        if !input.is_empty() {
            self.buffer[..input.len()].copy_from_slice(input);
            self.buffered = input.len();
        }
    }

    /// Finish and return the 32-byte digest.
    pub fn finalize(mut self) -> [u8; 32] {
        let bit_len = self.length_bits;
        // Padding: 0x80, zeros, then the 64-bit big-endian bit length.
        self.update(&[0x80]);
        // `update` adjusted length_bits for the pad byte; restore it below by
        // writing the saved value. Pad with zeros until 56 mod 64.
        while self.buffered != 56 {
            let zeros = [0u8; 1];
            // Update without touching length accounting: do it manually.
            self.buffer[self.buffered] = zeros[0];
            self.buffered += 1;
            if self.buffered == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            }
        }
        self.buffer[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buffer;
        self.compress(&block);
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let big_s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let temp1 = h
                .wrapping_add(big_s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let big_s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let temp2 = big_s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(temp1);
            d = c;
            c = b;
            b = a;
            a = temp1.wrapping_add(temp2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// One-shot SHA-256 of `data`.
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// One-shot SHA-256 returning lowercase hex.
pub fn sha256_hex(data: &[u8]) -> String {
    to_hex(&sha256(data))
}

/// Lowercase hex encoding of arbitrary bytes.
pub fn to_hex(bytes: &[u8]) -> String {
    const DIGITS: &[u8; 16] = b"0123456789abcdef";
    let mut s = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        s.push(DIGITS[usize::from(b >> 4)] as char);
        s.push(DIGITS[usize::from(b & 0xf)] as char);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    // NIST / well-known test vectors.
    #[test]
    fn vector_empty() {
        assert_eq!(
            sha256_hex(b""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn vector_abc() {
        assert_eq!(
            sha256_hex(b"abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn vector_two_blocks() {
        assert_eq!(
            sha256_hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn vector_million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            sha256_hex(&data),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data: Vec<u8> = (0u32..10_000).map(|i| (i % 251) as u8).collect();
        let oneshot = sha256(&data);
        // Feed in awkward chunk sizes crossing block boundaries.
        let mut h = Sha256::new();
        let mut rest = &data[..];
        let sizes = [1usize, 63, 64, 65, 7, 128, 300];
        let mut i = 0;
        while !rest.is_empty() {
            let take = sizes[i % sizes.len()].min(rest.len());
            h.update(&rest[..take]);
            rest = &rest[take..];
            i += 1;
        }
        assert_eq!(h.finalize(), oneshot);
    }

    #[test]
    fn exact_block_sizes() {
        // 55, 56, 63, 64 bytes hit all the padding edge cases.
        for n in [55usize, 56, 63, 64, 119, 120] {
            let data = vec![0x5au8; n];
            let d1 = sha256(&data);
            let mut h = Sha256::new();
            for b in &data {
                h.update(std::slice::from_ref(b));
            }
            assert_eq!(h.finalize(), d1, "mismatch at length {n}");
        }
    }

    #[test]
    fn hex_encoding() {
        assert_eq!(to_hex(&[0x00, 0xff, 0x10]), "00ff10");
        assert_eq!(to_hex(&[]), "");
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        assert_ne!(sha256(b"+49151123456"), sha256(b"+49151123457"));
    }
}
