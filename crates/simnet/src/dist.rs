//! Distribution toolbox for workload modelling.
//!
//! The paper's findings are distributional — heavy-tailed share counts
//! (Fig 2), log-normal-ish group sizes (Fig 7), Zipfian per-user message
//! volumes (Fig 9) — so the workload generators need a small but solid set
//! of samplers. Everything here consumes the crate's own [`Rng`], keeping
//! every draw attributable to the scenario seed.

use crate::rng::Rng;

/// Sample from a discrete distribution given by non-negative `weights`
/// using Vose's alias method: O(n) construction, O(1) sampling.
#[derive(Debug, Clone)]
pub struct Categorical {
    prob: Vec<f64>,
    alias: Vec<usize>,
}

impl Categorical {
    /// Build the alias table from `weights`.
    ///
    /// # Panics
    /// Panics if `weights` is empty, contains a negative or non-finite
    /// value, or sums to zero.
    pub fn new(weights: &[f64]) -> Categorical {
        assert!(!weights.is_empty(), "empty weight vector");
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0 && total.is_finite(),
            "weights must sum to a positive finite value"
        );
        for &w in weights {
            assert!(w >= 0.0 && w.is_finite(), "invalid weight {w}");
        }
        let n = weights.len();
        let mut prob: Vec<f64> = weights.iter().map(|w| w * n as f64 / total).collect();
        let mut alias = vec![0usize; n];
        let mut small: Vec<usize> = Vec::new();
        let mut large: Vec<usize> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            alias[s] = l;
            prob[l] = (prob[l] + prob[s]) - 1.0;
            if prob[l] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Residual entries (floating-point dust) take probability 1.
        for &i in small.iter().chain(large.iter()) {
            prob[i] = 1.0;
        }
        Categorical { prob, alias }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table is empty (never true: construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draw a category index.
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let i = rng.index(self.prob.len());
        if rng.f64() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }
}

/// Bounded Zipf distribution over ranks `1..=n` with exponent `s`:
/// `P(k) ∝ k^-s`. Built on a [`Categorical`] alias table, so sampling is
/// O(1) and exact for the bounded supports used by the workload models.
#[derive(Debug, Clone)]
pub struct Zipf {
    table: Categorical,
}

impl Zipf {
    /// Zipf over `1..=n` with exponent `s > 0`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is not finite and positive.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s.is_finite() && s > 0.0, "invalid Zipf exponent {s}");
        let weights: Vec<f64> = (1..=n).map(|k| (k as f64).powf(-s)).collect();
        Zipf {
            table: Categorical::new(&weights),
        }
    }

    /// Draw a rank in `1..=n`.
    pub fn sample(&self, rng: &mut Rng) -> usize {
        self.table.sample(rng) + 1
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Never true.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }
}

/// Log-normal distribution: `exp(mu + sigma * N(0,1))`.
#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    /// Mean of the underlying normal.
    pub mu: f64,
    /// Standard deviation of the underlying normal (must be >= 0).
    pub sigma: f64,
}

impl LogNormal {
    /// Construct from the underlying normal's parameters.
    ///
    /// # Panics
    /// Panics if `sigma` is negative or either parameter is non-finite.
    pub fn new(mu: f64, sigma: f64) -> LogNormal {
        assert!(mu.is_finite() && sigma.is_finite() && sigma >= 0.0);
        LogNormal { mu, sigma }
    }

    /// Construct a log-normal whose *median* is `median` with the given
    /// underlying sigma — often the more intuitive parameterisation when
    /// matching reported medians from the paper.
    pub fn from_median(median: f64, sigma: f64) -> LogNormal {
        assert!(median > 0.0, "median must be positive");
        LogNormal::new(median.ln(), sigma)
    }

    /// Draw a sample.
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        (self.mu + self.sigma * rng.normal()).exp()
    }
}

/// Exponential distribution with rate `lambda` (mean `1/lambda`).
#[derive(Debug, Clone, Copy)]
pub struct Exponential {
    /// Rate parameter (> 0).
    pub lambda: f64,
}

impl Exponential {
    /// Construct with rate `lambda > 0`.
    ///
    /// # Panics
    /// Panics if `lambda` is not finite and positive.
    pub fn new(lambda: f64) -> Exponential {
        assert!(lambda.is_finite() && lambda > 0.0, "invalid rate {lambda}");
        Exponential { lambda }
    }

    /// Draw a sample via inverse transform.
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        let u = 1.0 - rng.f64(); // in (0, 1]
        -u.ln() / self.lambda
    }
}

/// Pareto (type I) distribution with scale `x_min` and shape `alpha`.
#[derive(Debug, Clone, Copy)]
pub struct Pareto {
    /// Minimum value (scale, > 0).
    pub x_min: f64,
    /// Tail exponent (shape, > 0).
    pub alpha: f64,
}

impl Pareto {
    /// Construct with scale `x_min > 0` and shape `alpha > 0`.
    ///
    /// # Panics
    /// Panics on non-positive or non-finite parameters.
    pub fn new(x_min: f64, alpha: f64) -> Pareto {
        assert!(x_min.is_finite() && x_min > 0.0);
        assert!(alpha.is_finite() && alpha > 0.0);
        Pareto { x_min, alpha }
    }

    /// Draw a sample via inverse transform.
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        let u = 1.0 - rng.f64(); // in (0, 1]
        self.x_min / u.powf(1.0 / self.alpha)
    }
}

/// Poisson distribution with mean `lambda`.
///
/// Uses Knuth's product method for small `lambda` and a normal
/// approximation (rounded, clamped at zero) for `lambda > 30`, which is
/// ample for the per-day event counts drawn in the workload models.
#[derive(Debug, Clone, Copy)]
pub struct Poisson {
    /// Mean (>= 0).
    pub lambda: f64,
}

impl Poisson {
    /// Construct with mean `lambda >= 0`.
    ///
    /// # Panics
    /// Panics if `lambda` is negative or non-finite.
    pub fn new(lambda: f64) -> Poisson {
        assert!(lambda.is_finite() && lambda >= 0.0, "invalid mean {lambda}");
        Poisson { lambda }
    }

    /// Draw a sample.
    pub fn sample(&self, rng: &mut Rng) -> u64 {
        if self.lambda == 0.0 {
            return 0;
        }
        if self.lambda > 30.0 {
            let x = self.lambda + self.lambda.sqrt() * rng.normal();
            return x.round().max(0.0) as u64;
        }
        let l = (-self.lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.f64();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }
}

/// Geometric distribution over `{1, 2, ...}`: number of Bernoulli(`p`)
/// trials up to and including the first success.
#[derive(Debug, Clone, Copy)]
pub struct Geometric {
    /// Success probability in `(0, 1]`.
    pub p: f64,
}

impl Geometric {
    /// Construct with success probability `p` in `(0, 1]`.
    ///
    /// # Panics
    /// Panics if `p` is outside `(0, 1]`.
    pub fn new(p: f64) -> Geometric {
        assert!(p > 0.0 && p <= 1.0, "invalid probability {p}");
        Geometric { p }
    }

    /// Draw a sample (>= 1) via inverse transform.
    pub fn sample(&self, rng: &mut Rng) -> u64 {
        if self.p >= 1.0 {
            return 1;
        }
        let u = 1.0 - rng.f64(); // in (0, 1]
        (u.ln() / (1.0 - self.p).ln()).ceil().max(1.0) as u64
    }
}

/// A two-component mixture: with probability `p_first` sample from the
/// first closure, otherwise from the second. Used for e.g. the staleness
/// model (a same-day spike mixed with a long tail, Fig 5).
pub fn mixture<T>(
    rng: &mut Rng,
    p_first: f64,
    first: impl FnOnce(&mut Rng) -> T,
    second: impl FnOnce(&mut Rng) -> T,
) -> T {
    if rng.chance(p_first) {
        first(rng)
    } else {
        second(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Rng {
        Rng::new(0xC0FFEE)
    }

    #[test]
    fn categorical_frequencies_match_weights() {
        let c = Categorical::new(&[1.0, 2.0, 7.0]);
        let mut r = rng();
        let mut counts = [0u32; 3];
        let n = 100_000;
        for _ in 0..n {
            counts[c.sample(&mut r)] += 1;
        }
        let expect = [0.1, 0.2, 0.7];
        for i in 0..3 {
            let rate = f64::from(counts[i]) / n as f64;
            assert!((rate - expect[i]).abs() < 0.01, "cat {i}: {rate}");
        }
    }

    #[test]
    fn categorical_zero_weight_never_sampled() {
        let c = Categorical::new(&[0.0, 1.0, 0.0]);
        let mut r = rng();
        for _ in 0..10_000 {
            assert_eq!(c.sample(&mut r), 1);
        }
    }

    #[test]
    fn categorical_single_category() {
        let c = Categorical::new(&[3.5]);
        let mut r = rng();
        assert_eq!(c.sample(&mut r), 0);
        assert_eq!(c.len(), 1);
        assert!(!c.is_empty());
    }

    #[test]
    #[should_panic(expected = "empty weight vector")]
    fn categorical_rejects_empty() {
        let _ = Categorical::new(&[]);
    }

    #[test]
    #[should_panic]
    fn categorical_rejects_all_zero() {
        let _ = Categorical::new(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic]
    fn categorical_rejects_negative() {
        let _ = Categorical::new(&[1.0, -0.5]);
    }

    #[test]
    fn zipf_rank_one_dominates() {
        let z = Zipf::new(100, 1.2);
        let mut r = rng();
        let mut counts = vec![0u32; 101];
        let n = 50_000;
        for _ in 0..n {
            counts[z.sample(&mut r)] += 1;
        }
        assert!(counts[1] > counts[2]);
        assert!(counts[2] > counts[5]);
        // Harmonic-weight check: P(1) = 1 / H(100, 1.2).
        let h: f64 = (1..=100).map(|k| (k as f64).powf(-1.2)).sum();
        let p1 = f64::from(counts[1]) / n as f64;
        assert!((p1 - 1.0 / h).abs() < 0.02, "P(rank 1) = {p1}");
    }

    #[test]
    fn zipf_bounds() {
        let z = Zipf::new(5, 2.0);
        let mut r = rng();
        for _ in 0..10_000 {
            let v = z.sample(&mut r);
            assert!((1..=5).contains(&v));
        }
    }

    #[test]
    fn lognormal_median() {
        let d = LogNormal::from_median(50.0, 1.0);
        let mut r = rng();
        let mut xs: Vec<f64> = (0..50_001).map(|_| d.sample(&mut r)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = xs[xs.len() / 2];
        assert!((med / 50.0 - 1.0).abs() < 0.1, "median {med}");
    }

    #[test]
    fn lognormal_zero_sigma_is_constant() {
        let d = LogNormal::from_median(7.0, 0.0);
        let mut r = rng();
        for _ in 0..100 {
            assert!((d.sample(&mut r) - 7.0).abs() < 1e-9);
        }
    }

    #[test]
    fn exponential_mean() {
        let d = Exponential::new(0.25);
        let mut r = rng();
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut r)).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn pareto_min_respected_and_tail_heavy() {
        let d = Pareto::new(2.0, 1.5);
        let mut r = rng();
        let mut max = 0.0f64;
        for _ in 0..100_000 {
            let x = d.sample(&mut r);
            assert!(x >= 2.0);
            max = max.max(x);
        }
        assert!(
            max > 100.0,
            "heavy tail should produce large values, max {max}"
        );
    }

    #[test]
    fn poisson_small_lambda_mean() {
        let d = Poisson::new(3.0);
        let mut r = rng();
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut r) as f64).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn poisson_large_lambda_mean() {
        let d = Poisson::new(500.0);
        let mut r = rng();
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut r) as f64).sum::<f64>() / n as f64;
        assert!((mean / 500.0 - 1.0).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn poisson_zero() {
        let d = Poisson::new(0.0);
        let mut r = rng();
        assert_eq!(d.sample(&mut r), 0);
    }

    #[test]
    fn geometric_mean_and_min() {
        let d = Geometric::new(0.2);
        let mut r = rng();
        let n = 100_000;
        let mut min = u64::MAX;
        let mean: f64 = (0..n)
            .map(|_| {
                let v = d.sample(&mut r);
                min = min.min(v);
                v as f64
            })
            .sum::<f64>()
            / n as f64;
        assert_eq!(min, 1);
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn geometric_p1_always_one() {
        let d = Geometric::new(1.0);
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(d.sample(&mut r), 1);
        }
    }

    #[test]
    fn mixture_respects_probability() {
        let mut r = rng();
        let n = 50_000;
        let firsts = (0..n)
            .filter(|_| mixture(&mut r, 0.8, |_| true, |_| false))
            .count();
        let rate = firsts as f64 / n as f64;
        assert!((rate - 0.8).abs() < 0.01, "rate {rate}");
    }
}
