//! # chatlens-simnet — deterministic simulation substrate
//!
//! This crate is the foundation every other `chatlens` crate builds on. It
//! provides the pieces a 38-day measurement campaign needs in order to run
//! in milliseconds, bit-reproducibly, on a laptop:
//!
//! * [`time`] — a virtual clock ([`time::SimTime`]) and a proleptic-Gregorian
//!   calendar so "every day from April 8 through May 15, 2020" (§3.2 of the
//!   paper) is expressible exactly.
//! * [`rng`] — a deterministic random-number generator (SplitMix64-seeded
//!   Xoshiro256\*\*) with cheap forking so independent subsystems draw from
//!   independent streams.
//! * [`dist`] — the distribution toolbox used by the workload models:
//!   uniform, Bernoulli, categorical (Vose alias method), Zipf, log-normal,
//!   exponential, Poisson, Pareto, geometric.
//! * [`event`] / [`engine`] — a discrete-event scheduler in the smoltcp
//!   spirit: event-driven, no threads, deterministic tie-breaking.
//! * [`transport`] — a simulated request/response network with latency,
//!   status codes and pluggable endpoints; the collector crates speak to the
//!   simulated platforms through it exactly as an HTTP client would.
//! * [`fault`] — fault injection (drop/error probability), token-bucket rate
//!   limiting and exponential backoff with full jitter.
//! * [`trace`] — a bounded request/response trace recorder (the pcap
//!   analogue for the simulated transport).
//! * [`hash`] — a from-scratch FIPS 180-4 SHA-256 used to one-way-hash phone
//!   numbers, mirroring the paper's ethics protocol (§3.4).
//! * [`metrics`] — lightweight counters, fixed-bucket histograms and
//!   per-stage wall-clock timings.
//! * [`par`] — a deterministic scoped worker pool (`par_map` /
//!   `par_fold`) whose outputs are bit-identical at any thread count.
//!
//! Nothing in this crate knows about Twitter or messaging platforms; it is a
//! general deterministic-simulation kit.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod dist;
pub mod engine;
pub mod event;
pub mod fault;
pub mod hash;
pub mod metrics;
pub mod par;
pub mod rng;
pub mod time;
pub mod trace;
pub mod transport;

pub use engine::Engine;
pub use par::Pool;
pub use rng::Rng;
pub use time::{Date, SimDuration, SimTime};
