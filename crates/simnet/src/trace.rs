//! Bounded request/response tracing — the pcap analogue for the simulated
//! transport.
//!
//! Every client attempt is recorded (endpoint, status or drop, latency,
//! attempt number). The recorder is bounded: once full it discards the
//! oldest entries but keeps exact aggregate counters, so long campaigns can
//! still answer "how many 410s did the monitor see?" cheaply.

use crate::time::{SimDuration, SimTime};
use crate::transport::Status;
use std::collections::{BTreeMap, VecDeque};

/// One recorded transport attempt. `status: None` means the attempt was
/// dropped in transit (no response observed).
#[derive(Debug, Clone)]
pub struct TraceEntry {
    /// Virtual time of the attempt.
    pub at: SimTime,
    /// Endpoint the request targeted.
    pub endpoint: String,
    /// Response status, or `None` for an in-transit drop.
    pub status: Option<Status>,
    /// Sampled latency of the exchange.
    pub latency: SimDuration,
    /// 1-based attempt number within the logical request.
    pub attempt: u32,
}

/// A bounded ring of [`TraceEntry`] plus exact aggregate counters.
#[derive(Debug)]
pub struct TraceRecorder {
    ring: VecDeque<TraceEntry>,
    capacity: usize,
    total: u64,
    dropped_attempts: u64,
    by_status: BTreeMap<String, u64>,
    by_endpoint: BTreeMap<String, u64>,
}

impl TraceRecorder {
    /// A recorder keeping at most `capacity` recent entries.
    pub fn new(capacity: usize) -> TraceRecorder {
        TraceRecorder {
            ring: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
            total: 0,
            dropped_attempts: 0,
            by_status: BTreeMap::new(),
            by_endpoint: BTreeMap::new(),
        }
    }

    /// Record one attempt.
    pub fn record(&mut self, entry: TraceEntry) {
        self.total += 1;
        match entry.status {
            Some(s) => *self.by_status.entry(s.to_string()).or_insert(0) += 1,
            None => self.dropped_attempts += 1,
        }
        *self.by_endpoint.entry(entry.endpoint.clone()).or_insert(0) += 1;
        if self.capacity == 0 {
            return;
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(entry);
    }

    /// Total attempts ever recorded (not just those still in the ring).
    pub fn len(&self) -> u64 {
        self.total
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Attempts dropped in transit.
    pub fn dropped(&self) -> u64 {
        self.dropped_attempts
    }

    /// Exact attempt counts per status string.
    pub fn by_status(&self) -> &BTreeMap<String, u64> {
        &self.by_status
    }

    /// Exact attempt counts per endpoint.
    pub fn by_endpoint(&self) -> &BTreeMap<String, u64> {
        &self.by_endpoint
    }

    /// The retained (most recent) entries, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &TraceEntry> {
        self.ring.iter()
    }

    /// Render a compact text summary, one line per status and endpoint.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "trace: {} attempts ({} dropped in transit)\n",
            self.total, self.dropped_attempts
        ));
        for (status, n) in &self.by_status {
            out.push_str(&format!("  status {status}: {n}\n"));
        }
        for (ep, n) in &self.by_endpoint {
            out.push_str(&format!("  endpoint {ep}: {n}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(ep: &str, status: Option<Status>) -> TraceEntry {
        TraceEntry {
            at: SimTime(0),
            endpoint: ep.to_string(),
            status,
            latency: SimDuration::ZERO,
            attempt: 1,
        }
    }

    #[test]
    fn counts_are_exact_beyond_capacity() {
        let mut t = TraceRecorder::new(2);
        for _ in 0..10 {
            t.record(entry("a", Some(Status::Ok)));
        }
        t.record(entry("b", None));
        assert_eq!(t.len(), 11);
        assert_eq!(t.dropped(), 1);
        assert_eq!(t.by_status().get("200 OK"), Some(&10));
        assert_eq!(t.by_endpoint().get("a"), Some(&10));
        assert_eq!(t.by_endpoint().get("b"), Some(&1));
        // Ring holds only the 2 most recent.
        assert_eq!(t.entries().count(), 2);
        assert_eq!(t.entries().last().unwrap().endpoint, "b");
    }

    #[test]
    fn zero_capacity_keeps_counters_only() {
        let mut t = TraceRecorder::new(0);
        t.record(entry("x", Some(Status::Gone)));
        assert_eq!(t.len(), 1);
        assert_eq!(t.entries().count(), 0);
        assert_eq!(t.by_status().get("410 Gone"), Some(&1));
    }

    #[test]
    fn summary_mentions_counts() {
        let mut t = TraceRecorder::new(8);
        t.record(entry("api/search", Some(Status::Ok)));
        t.record(entry("api/search", None));
        let s = t.summary();
        assert!(s.contains("2 attempts"));
        assert!(s.contains("1 dropped"));
        assert!(s.contains("api/search: 2"));
    }

    #[test]
    fn empty_recorder() {
        let t = TraceRecorder::new(4);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }
}
