//! Bounded request/response tracing — the pcap analogue for the simulated
//! transport.
//!
//! Every client attempt is recorded (endpoint, status or drop, latency,
//! attempt number). The recorder is bounded: once full it discards the
//! oldest entries but keeps exact aggregate counters, so long campaigns can
//! still answer "how many 410s did the monitor see?" cheaply.

use crate::time::{SimDuration, SimTime};
use crate::transport::Status;
use std::borrow::Cow;
use std::collections::{BTreeMap, VecDeque};

/// One recorded transport attempt. `status: None` means the attempt was
/// dropped in transit (no response observed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Virtual time of the attempt.
    pub at: SimTime,
    /// Endpoint the request targeted. Borrowed for the `'static` endpoint
    /// literals the collectors use (recording an attempt must not
    /// allocate); owned when restored from a checkpoint.
    pub endpoint: Cow<'static, str>,
    /// Response status, or `None` for an in-transit drop.
    pub status: Option<Status>,
    /// Sampled latency of the exchange.
    pub latency: SimDuration,
    /// 1-based attempt number within the logical request.
    pub attempt: u32,
}

/// A circuit-breaker phase, recorded when a breaker changes state. The
/// breaker itself lives in `transport`; the trace only logs transitions so
/// a campaign can answer "when did the WhatsApp breaker open?".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerPhase {
    /// Calls flow normally; consecutive failures are being counted.
    Closed,
    /// Calls fail fast until the cooldown elapses.
    Open,
    /// The cooldown elapsed; one probe call is in flight.
    HalfOpen,
}

impl std::fmt::Display for BreakerPhase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BreakerPhase::Closed => "closed",
            BreakerPhase::Open => "open",
            BreakerPhase::HalfOpen => "half-open",
        })
    }
}

/// One circuit-breaker state transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BreakerTransition {
    /// Virtual time of the transition.
    pub at: SimTime,
    /// Endpoint prefix the breaker guards (e.g. `"whatsapp"`).
    pub prefix: String,
    /// Phase the breaker left.
    pub from: BreakerPhase,
    /// Phase the breaker entered.
    pub to: BreakerPhase,
}

/// A bounded ring of [`TraceEntry`] plus exact aggregate counters.
#[derive(Debug)]
pub struct TraceRecorder {
    ring: VecDeque<TraceEntry>,
    capacity: usize,
    total: u64,
    dropped_attempts: u64,
    by_status: BTreeMap<String, u64>,
    by_endpoint: BTreeMap<String, u64>,
    transitions: Vec<BreakerTransition>,
    breaker_fast_fails: u64,
}

/// The full state of a [`TraceRecorder`], exported for checkpointing and
/// restored with [`TraceRecorder::from_state`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceState {
    /// Ring capacity the recorder was created with.
    pub capacity: usize,
    /// Total attempts ever recorded.
    pub total: u64,
    /// Attempts dropped in transit.
    pub dropped_attempts: u64,
    /// Exact attempt counts per status string.
    pub by_status: BTreeMap<String, u64>,
    /// Exact attempt counts per endpoint.
    pub by_endpoint: BTreeMap<String, u64>,
    /// Retained (most recent) entries, oldest first.
    pub entries: Vec<TraceEntry>,
    /// Every circuit-breaker state transition, in order.
    pub transitions: Vec<BreakerTransition>,
    /// Calls rejected without an attempt because a breaker was open.
    pub breaker_fast_fails: u64,
}

impl TraceRecorder {
    /// A recorder keeping at most `capacity` recent entries.
    pub fn new(capacity: usize) -> TraceRecorder {
        TraceRecorder {
            ring: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
            total: 0,
            dropped_attempts: 0,
            by_status: BTreeMap::new(),
            by_endpoint: BTreeMap::new(),
            transitions: Vec::new(),
            breaker_fast_fails: 0,
        }
    }

    /// Record one attempt. Steady-state this allocates nothing: status
    /// and endpoint counters are bumped through borrowed-key lookups and
    /// only the *first* occurrence of a key inserts an owned string.
    pub fn record(&mut self, entry: TraceEntry) {
        self.total += 1;
        match entry.status {
            Some(s) => {
                let label: Cow<'static, str> = match s {
                    // Static labels, kept textually identical to the
                    // `Display` impl (asserted by a test below) so the
                    // persisted `by_status` keys never drift.
                    Status::Ok => Cow::Borrowed("200 OK"),
                    Status::NotFound => Cow::Borrowed("404 Not Found"),
                    Status::Gone => Cow::Borrowed("410 Gone"),
                    Status::Forbidden => Cow::Borrowed("403 Forbidden"),
                    Status::ServerError => Cow::Borrowed("500 Server Error"),
                    Status::RateLimited(_) => Cow::Owned(s.to_string()),
                };
                match self.by_status.get_mut(label.as_ref()) {
                    Some(n) => *n += 1,
                    None => {
                        self.by_status.insert(label.into_owned(), 1);
                    }
                }
            }
            None => self.dropped_attempts += 1,
        }
        match self.by_endpoint.get_mut(entry.endpoint.as_ref()) {
            Some(n) => *n += 1,
            None => {
                self.by_endpoint
                    .insert(entry.endpoint.clone().into_owned(), 1);
            }
        }
        if self.capacity == 0 {
            return;
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(entry);
    }

    /// Total attempts ever recorded (not just those still in the ring).
    pub fn len(&self) -> u64 {
        self.total
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Attempts dropped in transit.
    pub fn dropped(&self) -> u64 {
        self.dropped_attempts
    }

    /// Exact attempt counts per status string.
    pub fn by_status(&self) -> &BTreeMap<String, u64> {
        &self.by_status
    }

    /// Exact attempt counts per endpoint.
    pub fn by_endpoint(&self) -> &BTreeMap<String, u64> {
        &self.by_endpoint
    }

    /// The retained (most recent) entries, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &TraceEntry> {
        self.ring.iter()
    }

    /// Record a circuit-breaker state transition.
    pub fn record_transition(&mut self, t: BreakerTransition) {
        self.transitions.push(t);
    }

    /// Record a call rejected fast because a breaker was open.
    pub fn record_fast_fail(&mut self) {
        self.breaker_fast_fails += 1;
    }

    /// Every breaker transition recorded so far, in order.
    pub fn transitions(&self) -> &[BreakerTransition] {
        &self.transitions
    }

    /// Calls rejected without an attempt because a breaker was open.
    pub fn breaker_fast_fails(&self) -> u64 {
        self.breaker_fast_fails
    }

    /// How many times any breaker entered [`BreakerPhase::Open`].
    pub fn breaker_opened(&self) -> u64 {
        self.transitions
            .iter()
            .filter(|t| t.to == BreakerPhase::Open)
            .count() as u64
    }

    /// Export the recorder's full state (ring contents and exact
    /// aggregates) for a checkpoint.
    pub fn state(&self) -> TraceState {
        TraceState {
            capacity: self.capacity,
            total: self.total,
            dropped_attempts: self.dropped_attempts,
            by_status: self.by_status.clone(),
            by_endpoint: self.by_endpoint.clone(),
            entries: self.ring.iter().cloned().collect(),
            transitions: self.transitions.clone(),
            breaker_fast_fails: self.breaker_fast_fails,
        }
    }

    /// Rebuild a recorder from an exported [`TraceState`]. Entries beyond
    /// the stated capacity are discarded oldest-first, mirroring what
    /// [`TraceRecorder::record`] would have retained.
    pub fn from_state(s: TraceState) -> TraceRecorder {
        let keep = s.entries.len().saturating_sub(s.capacity);
        TraceRecorder {
            ring: s.entries.into_iter().skip(keep).collect(),
            capacity: s.capacity,
            total: s.total,
            dropped_attempts: s.dropped_attempts,
            by_status: s.by_status,
            by_endpoint: s.by_endpoint,
            transitions: s.transitions,
            breaker_fast_fails: s.breaker_fast_fails,
        }
    }

    /// Render a compact text summary, one line per status and endpoint.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "trace: {} attempts ({} dropped in transit)\n",
            self.total, self.dropped_attempts
        ));
        for (status, n) in &self.by_status {
            out.push_str(&format!("  status {status}: {n}\n"));
        }
        for (ep, n) in &self.by_endpoint {
            out.push_str(&format!("  endpoint {ep}: {n}\n"));
        }
        if !self.transitions.is_empty() || self.breaker_fast_fails > 0 {
            out.push_str(&format!(
                "  breaker: {} opened, {} fast-failed calls\n",
                self.breaker_opened(),
                self.breaker_fast_fails
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(ep: &str, status: Option<Status>) -> TraceEntry {
        TraceEntry {
            at: SimTime(0),
            endpoint: Cow::Owned(ep.to_string()),
            status,
            latency: SimDuration::ZERO,
            attempt: 1,
        }
    }

    #[test]
    fn static_status_labels_match_display() {
        // `record` bumps `by_status` through borrowed static labels; if
        // they ever drift from the `Display` impl, persisted checkpoint
        // keys would change meaning.
        for s in [
            Status::Ok,
            Status::NotFound,
            Status::Gone,
            Status::Forbidden,
            Status::ServerError,
            Status::RateLimited(30),
        ] {
            let mut t = TraceRecorder::new(1);
            t.record(entry("x", Some(s)));
            assert_eq!(t.by_status().get(&s.to_string()), Some(&1), "{s}");
        }
    }

    #[test]
    fn counts_are_exact_beyond_capacity() {
        let mut t = TraceRecorder::new(2);
        for _ in 0..10 {
            t.record(entry("a", Some(Status::Ok)));
        }
        t.record(entry("b", None));
        assert_eq!(t.len(), 11);
        assert_eq!(t.dropped(), 1);
        assert_eq!(t.by_status().get("200 OK"), Some(&10));
        assert_eq!(t.by_endpoint().get("a"), Some(&10));
        assert_eq!(t.by_endpoint().get("b"), Some(&1));
        // Ring holds only the 2 most recent.
        assert_eq!(t.entries().count(), 2);
        assert_eq!(t.entries().last().unwrap().endpoint, "b");
    }

    #[test]
    fn zero_capacity_keeps_counters_only() {
        let mut t = TraceRecorder::new(0);
        t.record(entry("x", Some(Status::Gone)));
        assert_eq!(t.len(), 1);
        assert_eq!(t.entries().count(), 0);
        assert_eq!(t.by_status().get("410 Gone"), Some(&1));
    }

    #[test]
    fn summary_mentions_counts() {
        let mut t = TraceRecorder::new(8);
        t.record(entry("api/search", Some(Status::Ok)));
        t.record(entry("api/search", None));
        let s = t.summary();
        assert!(s.contains("2 attempts"));
        assert!(s.contains("1 dropped"));
        assert!(s.contains("api/search: 2"));
    }

    #[test]
    fn empty_recorder() {
        let t = TraceRecorder::new(4);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn ring_eviction_keeps_aggregates_exact() {
        // Drive a small ring far past capacity with a mixed status/endpoint
        // stream and check the aggregate invariants hold at every step:
        //   sum(by_status) + dropped == total == sum(by_endpoint)
        // and the ring always holds exactly the last min(total, capacity)
        // entries in arrival order.
        let capacity = 3;
        let mut t = TraceRecorder::new(capacity);
        let statuses = [
            Some(Status::Ok),
            None,
            Some(Status::Gone),
            Some(Status::RateLimited(5)),
            Some(Status::ServerError),
        ];
        let endpoints = ["a", "b", "c"];
        let mut all: Vec<TraceEntry> = Vec::new();
        for i in 0..50u64 {
            let e = TraceEntry {
                at: SimTime(i),
                endpoint: Cow::Owned(endpoints[(i % 3) as usize].to_string()),
                status: statuses[(i % 5) as usize],
                latency: SimDuration::secs(i % 7),
                attempt: (i % 4) as u32 + 1,
            };
            all.push(e.clone());
            t.record(e);

            let total = t.len();
            let by_status_sum: u64 = t.by_status().values().sum();
            let by_endpoint_sum: u64 = t.by_endpoint().values().sum();
            assert_eq!(by_status_sum + t.dropped(), total, "at step {i}");
            assert_eq!(by_endpoint_sum, total, "at step {i}");

            let expect = total.min(capacity as u64) as usize;
            let ring: Vec<&TraceEntry> = t.entries().collect();
            assert_eq!(ring.len(), expect, "at step {i}");
            let tail = &all[all.len() - expect..];
            assert!(
                ring.iter().zip(tail.iter()).all(|(r, e)| *r == e),
                "ring should hold the most recent entries in order (step {i})"
            );
        }
    }

    #[test]
    fn breaker_transitions_survive_state_round_trip() {
        let mut t = TraceRecorder::new(4);
        t.record_transition(BreakerTransition {
            at: SimTime(7),
            prefix: "whatsapp".to_string(),
            from: BreakerPhase::Closed,
            to: BreakerPhase::Open,
        });
        t.record_transition(BreakerTransition {
            at: SimTime(99),
            prefix: "whatsapp".to_string(),
            from: BreakerPhase::Open,
            to: BreakerPhase::HalfOpen,
        });
        t.record_fast_fail();
        t.record_fast_fail();
        assert_eq!(t.breaker_opened(), 1);
        assert_eq!(t.breaker_fast_fails(), 2);
        let restored = TraceRecorder::from_state(t.state());
        assert_eq!(restored.transitions(), t.transitions());
        assert_eq!(restored.breaker_fast_fails(), 2);
        let s = t.summary();
        assert!(s.contains("breaker: 1 opened, 2 fast-failed"), "{s}");
    }

    #[test]
    fn state_round_trip_preserves_everything() {
        let mut t = TraceRecorder::new(2);
        for i in 0..5u64 {
            t.record(entry(if i % 2 == 0 { "a" } else { "b" }, Some(Status::Ok)));
        }
        t.record(entry("c", None));
        let restored = TraceRecorder::from_state(t.state());
        assert_eq!(restored.len(), t.len());
        assert_eq!(restored.dropped(), t.dropped());
        assert_eq!(restored.by_status(), t.by_status());
        assert_eq!(restored.by_endpoint(), t.by_endpoint());
        assert_eq!(
            restored.entries().cloned().collect::<Vec<_>>(),
            t.entries().cloned().collect::<Vec<_>>()
        );
        assert_eq!(restored.state(), t.state());
    }
}
