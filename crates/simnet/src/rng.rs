//! Deterministic pseudo-random number generation.
//!
//! Every stochastic decision in the simulation flows from a single `u64`
//! seed: the seed initialises a SplitMix64 stream, which in turn seeds a
//! Xoshiro256\*\* generator. Subsystems receive *forked* generators
//! ([`Rng::fork`]) keyed by a label hash, so adding draws to one subsystem
//! never perturbs another — the property that keeps scenario outputs stable
//! as the codebase evolves.
//!
//! The generators are the public-domain reference algorithms of Blackman &
//! Vigna; both are implemented from scratch because the offline crate set
//! has no `rand` requirement here and owning the implementation guarantees
//! cross-version reproducibility.

/// SplitMix64: a tiny, high-quality 64-bit generator used for seeding.
///
/// One SplitMix64 step is also the recommended way to expand a single `u64`
/// seed into the 256-bit Xoshiro state.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a new stream from `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The simulation's workhorse generator: Xoshiro256\*\* seeded via SplitMix64.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

/// The declared RNG stream registry: every static `Rng::fork` label in
/// the workspace, paired with the subsystem (crate) that owns it.
///
/// The lint's D11 rule enforces that a fork label is a string literal
/// drawn from this table and that no label is claimed by two subsystems —
/// two call sites sharing a stream is a silent determinism hazard the
/// moment call order changes. Dynamic label *families* (per-platform
/// transport streams, per-topic LDA sweeps) are audited at their call
/// sites with justified pragmas instead.
///
/// Entries are `(subsystem, label)`; the label strings feed the FNV hash
/// in [`Rng::fork`], so renaming one changes every downstream draw — the
/// golden-output suite pins them.
pub const STREAM_REGISTRY: &[(&str, &str)] = &[
    ("simnet", "burst"),
    ("simnet", "corruption"),
    ("core", "twitter"),
    ("core", "whatsapp"),
    ("core", "telegram"),
    ("core", "discord"),
    ("workload", "control"),
    ("workload", "cross-platform"),
    ("checkpoint", "disk"),
];

impl Rng {
    /// Construct from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // An all-zero state is the one invalid Xoshiro state; SplitMix64
        // cannot produce four consecutive zeros, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Rng { s }
    }

    /// Export the full 256-bit generator state (checkpointing).
    ///
    /// Restoring the returned words with [`Rng::from_state`] resumes the
    /// stream at exactly this position — the property crash-safe campaign
    /// snapshots rely on.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuild a generator from a previously exported [`Rng::state`].
    ///
    /// The all-zero state (invalid for Xoshiro) is mapped to the same
    /// non-zero fallback that [`Rng::new`] uses, so a round-trip through a
    /// snapshot can never produce a stuck generator.
    pub fn from_state(mut s: [u64; 4]) -> Self {
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Rng { s }
    }

    /// Derive an independent generator for the subsystem named `label`.
    ///
    /// Forking hashes the label (FNV-1a) together with fresh output from
    /// `self`, so distinct labels — and successive forks under the same
    /// label — yield decorrelated streams.
    pub fn fork(&mut self, label: &str) -> Rng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Rng::new(h ^ self.next_u64())
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32-bit output (upper half of a 64-bit draw).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` via Lemire's unbiased method.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        // Lemire's multiply-shift rejection method.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range({lo}, {hi}) is empty");
        lo + self.below(hi - lo + 1)
    }

    /// Uniform usize index in `[0, len)` — convenience for slice indexing.
    pub fn index(&mut self, len: usize) -> usize {
        self.below(len as u64) as usize
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.f64() < p
    }

    /// Pick a uniformly random element of `items`, or `None` if empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.index(items.len())])
        }
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Sample `k` distinct indices from `[0, n)` uniformly without
    /// replacement (Floyd's algorithm); the result is sorted.
    ///
    /// # Panics
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} from {n}");
        let mut chosen = std::collections::BTreeSet::new();
        for j in (n - k)..n {
            let t = self.index(j + 1);
            if !chosen.insert(t) {
                chosen.insert(j);
            }
        }
        chosen.into_iter().collect()
    }

    /// A standard normal draw (Box–Muller; one of the pair is discarded to
    /// keep the generator stateless beyond its core state).
    pub fn normal(&mut self) -> f64 {
        // Avoid ln(0) by nudging u1 away from zero.
        let u1 = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let u1 = if u1 <= 0.0 { f64::MIN_POSITIVE } else { u1 };
        let u2 = self.f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference outputs for seed 1234567 from the public-domain C code.
        let mut sm = SplitMix64::new(1234567);
        let outs: Vec<u64> = (0..3).map(|_| sm.next_u64()).collect();
        assert_eq!(
            outs,
            vec![
                6457827717110365317,
                3203168211198807973,
                9817491932198370423
            ]
        );
    }

    #[test]
    fn deterministic_across_clones() {
        let mut a = Rng::new(42);
        let mut b = a.clone();
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_distinct_streams() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_labels_decorrelate() {
        let mut root = Rng::new(7);
        let mut a = root.clone().fork("alpha");
        let mut b = root.fork("beta");
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = Rng::new(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.below(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn range_inclusive_bounds() {
        let mut r = Rng::new(4);
        let (mut lo_seen, mut hi_seen) = (false, false);
        for _ in 0..2000 {
            let v = r.range(5, 8);
            assert!((5..=8).contains(&v));
            lo_seen |= v == 5;
            hi_seen |= v == 8;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn f64_unit_interval_mean() {
        let mut r = Rng::new(5);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::new(6);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-1.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn chance_rate_roughly_matches() {
        let mut r = Rng::new(7);
        let hits = (0..100_000).filter(|_| r.chance(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::new(8);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "astronomically unlikely");
    }

    #[test]
    fn sample_indices_distinct_and_bounded() {
        let mut r = Rng::new(9);
        for _ in 0..100 {
            let s = r.sample_indices(50, 10);
            assert_eq!(s.len(), 10);
            assert!(s.windows(2).all(|w| w[0] < w[1]), "sorted & distinct");
            assert!(s.iter().all(|&i| i < 50));
        }
        // Degenerate cases.
        assert_eq!(r.sample_indices(5, 5), vec![0, 1, 2, 3, 4]);
        assert!(r.sample_indices(5, 0).is_empty());
    }

    #[test]
    fn sample_indices_uniformity() {
        // Each index of 0..10 should be chosen ~ k/n of the time.
        let mut r = Rng::new(10);
        let mut counts = [0u32; 10];
        let trials = 20_000;
        for _ in 0..trials {
            for i in r.sample_indices(10, 3) {
                counts[i] += 1;
            }
        }
        for (i, &c) in counts.iter().enumerate() {
            let rate = f64::from(c) / trials as f64;
            assert!((rate - 0.3).abs() < 0.02, "index {i} rate {rate}");
        }
    }

    #[test]
    fn normal_moments() {
        let mut r = Rng::new(11);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn pick_empty_and_nonempty() {
        let mut r = Rng::new(12);
        let empty: [u8; 0] = [];
        assert!(r.pick(&empty).is_none());
        let items = [10, 20, 30];
        assert!(items.contains(r.pick(&items).unwrap()));
    }
}
