//! Tweet content features: Fig 3 (hashtags, mentions, retweets) and Fig 4
//! (languages).

use crate::fanout::per_platform;
use chatlens_checkpoint::{persist_struct, CheckpointError, Persist, Reader, Writer};
use chatlens_core::{Dataset, DayFold, DaySlice};
use chatlens_platforms::id::PlatformKind;
use chatlens_platforms::invite::parse_invite_url;
use chatlens_simnet::par::Pool;
use chatlens_twitter::{Lang, Tweet};
use std::fmt::Write as _;

/// Fig 3 rates for one tweet population.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContentFeatures {
    /// Number of tweets measured.
    pub n: u64,
    /// Share with >= 1 hashtag.
    pub with_hashtag: f64,
    /// Share with >= 2 hashtags.
    pub with_multi_hashtag: f64,
    /// Share with >= 1 mention.
    pub with_mention: f64,
    /// Share with >= 2 mentions.
    pub with_multi_mention: f64,
    /// Share that are retweets.
    pub retweets: f64,
}

/// Raw Fig 3 tallies — the foldable core both the batch [`features`]
/// sweep and [`ContentFold`] accumulate, converted to rates by
/// [`FeatureCounts::rates`] so the two paths share every division.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct FeatureCounts {
    n: u64,
    h1: u64,
    h2: u64,
    m1: u64,
    m2: u64,
    rt: u64,
}

persist_struct!(FeatureCounts {
    n,
    h1,
    h2,
    m1,
    m2,
    rt
});

impl FeatureCounts {
    fn add(&mut self, t: &Tweet) {
        self.n += 1;
        if t.hashtags >= 1 {
            self.h1 += 1;
        }
        if t.hashtags >= 2 {
            self.h2 += 1;
        }
        if t.mentions >= 1 {
            self.m1 += 1;
        }
        if t.mentions >= 2 {
            self.m2 += 1;
        }
        if t.is_retweet() {
            self.rt += 1;
        }
    }

    fn rates(&self) -> ContentFeatures {
        let d = self.n.max(1) as f64;
        ContentFeatures {
            n: self.n,
            with_hashtag: self.h1 as f64 / d,
            with_multi_hashtag: self.h2 as f64 / d,
            with_mention: self.m1 as f64 / d,
            with_multi_mention: self.m2 as f64 / d,
            retweets: self.rt as f64 / d,
        }
    }
}

fn features<'a>(tweets: impl Iterator<Item = &'a Tweet>) -> ContentFeatures {
    let mut counts = FeatureCounts::default();
    for t in tweets {
        counts.add(t);
    }
    counts.rates()
}

/// Fig 3 rates over the tweets sharing `kind`'s group URLs.
pub fn platform_features(ds: &Dataset, kind: PlatformKind) -> ContentFeatures {
    features(ds.tweets_of(kind).map(|ct| &ct.tweet))
}

/// Fig 3 rates over the control sample.
pub fn control_features(ds: &Dataset) -> ContentFeatures {
    features(ds.control.iter())
}

/// Fig 4: language shares over one platform's sharing tweets, in
/// [`Lang::ALL`] order.
pub fn language_shares(ds: &Dataset, kind: PlatformKind) -> Vec<(Lang, f64)> {
    let mut counts = vec![0u64; Lang::ALL.len()];
    let mut n = 0u64;
    for ct in ds.tweets_of(kind) {
        counts[ct.tweet.lang.index()] += 1;
        n += 1;
    }
    Lang::ALL
        .into_iter()
        .zip(counts)
        .map(|(l, c)| (l, c as f64 / n.max(1) as f64))
        .collect()
}

/// The share of one specific language on one platform.
pub fn language_share(ds: &Dataset, kind: PlatformKind, lang: Lang) -> f64 {
    language_shares(ds, kind)
        .into_iter()
        .find(|(l, _)| *l == lang)
        .map(|(_, s)| s)
        .unwrap_or(0.0)
}

/// Fig 3 for all three platforms, fanned out across the pool; element `i`
/// equals `platform_features(ds, PlatformKind::ALL[i])` at any thread count.
pub fn platform_features_all(ds: &Dataset, pool: &Pool) -> [ContentFeatures; 3] {
    per_platform(pool, |kind| platform_features(ds, kind))
}

/// Fig 4 for all three platforms, fanned out across the pool.
pub fn language_shares_all(ds: &Dataset, pool: &Pool) -> [Vec<(Lang, f64)>; 3] {
    per_platform(pool, |kind| language_shares(ds, kind))
}

fn render_features(out: &mut String, label: &str, f: &ContentFeatures) {
    writeln!(
        out,
        "{label}.features: n={} hashtag={:?} multi_hashtag={:?} mention={:?} multi_mention={:?} retweets={:?}",
        f.n, f.with_hashtag, f.with_multi_hashtag, f.with_mention, f.with_multi_mention, f.retweets
    )
    .unwrap();
}

/// The batch content fragment: Fig 3 rates per platform and for the
/// control sample, plus Fig 4 language shares, rendered canonically from
/// the final dataset. [`ContentFold`] reproduces these bytes
/// incrementally.
pub fn fragment(ds: &Dataset, pool: &Pool) -> String {
    let feats = platform_features_all(ds, pool);
    let langs = language_shares_all(ds, pool);
    let mut out = String::from("content v1\n");
    for (i, kind) in PlatformKind::ALL.into_iter().enumerate() {
        render_features(&mut out, kind.name(), &feats[i]);
        writeln!(out, "{}.languages: {:?}", kind.name(), langs[i]).unwrap();
    }
    render_features(&mut out, "control", &control_features(ds));
    out
}

/// One platform's folded content state: feature tallies plus language
/// counts in [`Lang::ALL`] order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct PlatContent {
    feats: FeatureCounts,
    langs: Vec<u64>,
}

persist_struct!(PlatContent { feats, langs });

/// Incremental twin of [`fragment`]: constant-size counters per platform
/// (plus the control sample), folded from each day's collected tweets.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ContentFold {
    plats: [PlatContent; 3],
    control: FeatureCounts,
}

impl ContentFold {
    /// An empty fold.
    pub fn new() -> ContentFold {
        ContentFold::default()
    }
}

impl DayFold for ContentFold {
    fn name(&self) -> &'static str {
        "content"
    }

    fn fold_day(&mut self, slice: &DaySlice<'_>) {
        for p in &mut self.plats {
            if p.langs.len() < Lang::ALL.len() {
                p.langs.resize(Lang::ALL.len(), 0);
            }
        }
        for ct in slice.tweets_today() {
            let mut on = [false; 3];
            for url in &ct.tweet.urls {
                if let Some(inv) = parse_invite_url(url) {
                    on[inv.platform().index()] = true;
                }
            }
            for (i, hit) in on.into_iter().enumerate() {
                if hit {
                    self.plats[i].feats.add(&ct.tweet);
                    self.plats[i].langs[ct.tweet.lang.index()] += 1;
                }
            }
        }
        for t in slice.control_today() {
            self.control.add(t);
        }
    }

    fn finish(&self, pool: &Pool) -> String {
        let sections = per_platform(pool, |kind| {
            let p = &self.plats[kind.index()];
            let shares: Vec<(Lang, f64)> = Lang::ALL
                .into_iter()
                .zip(p.langs.iter())
                .map(|(l, &c)| (l, c as f64 / p.feats.n.max(1) as f64))
                .collect();
            let mut out = String::new();
            render_features(&mut out, kind.name(), &p.feats.rates());
            writeln!(out, "{}.languages: {shares:?}", kind.name()).unwrap();
            out
        });
        let mut out = String::from("content v1\n");
        for s in sections {
            out.push_str(&s);
        }
        render_features(&mut out, "control", &self.control.rates());
        out
    }

    fn save_state(&self, w: &mut Writer) {
        self.plats.save(w);
        self.control.save(w);
    }

    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), CheckpointError> {
        self.plats = Persist::load(r)?;
        self.control = Persist::load(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chatlens_core::run_study;
    use chatlens_workload::ScenarioConfig;
    use std::sync::OnceLock;

    fn dataset() -> &'static Dataset {
        static DS: OnceLock<Dataset> = OnceLock::new();
        DS.get_or_init(|| run_study(ScenarioConfig::tiny()))
    }

    #[test]
    fn fig3a_hashtags() {
        let ds = dataset();
        let wa = platform_features(ds, PlatformKind::WhatsApp);
        let tg = platform_features(ds, PlatformKind::Telegram);
        let dc = platform_features(ds, PlatformKind::Discord);
        let ctl = control_features(ds);
        assert!(
            (wa.with_hashtag - 0.13).abs() < 0.04,
            "WA {}",
            wa.with_hashtag
        );
        assert!(
            (tg.with_hashtag - 0.24).abs() < 0.04,
            "TG {}",
            tg.with_hashtag
        );
        assert!(
            (dc.with_hashtag - 0.14).abs() < 0.04,
            "DC {}",
            dc.with_hashtag
        );
        assert!(
            (ctl.with_hashtag - 0.13).abs() < 0.04,
            "CTL {}",
            ctl.with_hashtag
        );
        assert!(
            tg.with_hashtag > wa.with_hashtag,
            "Telegram uses most hashtags"
        );
    }

    #[test]
    fn fig3b_mentions() {
        let ds = dataset();
        let wa = platform_features(ds, PlatformKind::WhatsApp);
        let tg = platform_features(ds, PlatformKind::Telegram);
        let dc = platform_features(ds, PlatformKind::Discord);
        let ctl = control_features(ds);
        assert!(
            (wa.with_mention - 0.73).abs() < 0.05,
            "WA {}",
            wa.with_mention
        );
        assert!(
            (tg.with_mention - 0.84).abs() < 0.05,
            "TG {}",
            tg.with_mention
        );
        assert!(
            (dc.with_mention - 0.68).abs() < 0.05,
            "DC {}",
            dc.with_mention
        );
        assert!(
            (ctl.with_mention - 0.76).abs() < 0.05,
            "CTL {}",
            ctl.with_mention
        );
    }

    #[test]
    fn fig3c_retweets_ordering() {
        let ds = dataset();
        let wa = platform_features(ds, PlatformKind::WhatsApp);
        let tg = platform_features(ds, PlatformKind::Telegram);
        let dc = platform_features(ds, PlatformKind::Discord);
        // Paper: 33% < 50% < 76%.
        assert!(
            wa.retweets < dc.retweets,
            "WA {} < DC {}",
            wa.retweets,
            dc.retweets
        );
        assert!(
            dc.retweets < tg.retweets,
            "DC {} < TG {}",
            dc.retweets,
            tg.retweets
        );
        assert!((tg.retweets - 0.76).abs() < 0.08, "TG {}", tg.retweets);
        assert!((wa.retweets - 0.33).abs() < 0.08, "WA {}", wa.retweets);
    }

    #[test]
    fn fig4_language_mix() {
        // The tiny fixture's heavy-tailed share counts make per-language
        // shares noisy (one viral group dominates a language), so the
        // tolerances here are loose; the repro harness at 0.1+ scale
        // reports the tight numbers.
        let ds = dataset();
        let wa_en = language_share(ds, PlatformKind::WhatsApp, Lang::En);
        let tg_en = language_share(ds, PlatformKind::Telegram, Lang::En);
        let dc_en = language_share(ds, PlatformKind::Discord, Lang::En);
        assert!((wa_en - 0.26).abs() < 0.12, "WA en {wa_en}");
        assert!((tg_en - 0.35).abs() < 0.12, "TG en {tg_en}");
        assert!((dc_en - 0.47).abs() < 0.12, "DC en {dc_en}");
        assert!(dc_en > wa_en, "Discord is the most English platform");
        let dc_ja = language_share(ds, PlatformKind::Discord, Lang::Ja);
        assert!((dc_ja - 0.27).abs() < 0.12, "Discord Japanese {dc_ja}");
        assert!(
            dc_ja > language_share(ds, PlatformKind::WhatsApp, Lang::Ja),
            "Japanese is a Discord phenomenon"
        );
        // Shares sum to one.
        let total: f64 = language_shares(ds, PlatformKind::WhatsApp)
            .iter()
            .map(|(_, s)| s)
            .sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn multi_feature_rates_below_single() {
        let ds = dataset();
        for kind in PlatformKind::ALL {
            let f = platform_features(ds, kind);
            assert!(f.with_multi_hashtag <= f.with_hashtag);
            assert!(f.with_multi_mention <= f.with_mention);
            assert!(f.n > 0);
        }
    }

    #[test]
    fn parallel_fanout_matches_serial() {
        let ds = dataset();
        for threads in [1, 2, 8] {
            let pool = Pool::new(threads);
            let features = platform_features_all(ds, &pool);
            let langs = language_shares_all(ds, &pool);
            for (i, kind) in PlatformKind::ALL.into_iter().enumerate() {
                assert_eq!(features[i], platform_features(ds, kind), "{kind}");
                assert_eq!(langs[i], language_shares(ds, kind), "{kind}");
            }
        }
    }
}
