//! Latent Dirichlet Allocation via collapsed Gibbs sampling, from scratch.
//!
//! The paper (§4) runs LDA with ten topics per platform over the English
//! tweets sharing that platform's group URLs. This implementation is the
//! standard collapsed Gibbs sampler (Griffiths & Steyvers 2004): each token
//! carries a topic assignment `z`; one sweep resamples every `z` from
//!
//! ```text
//! p(z = k | rest) ∝ (n_dk + α) · (n_kw + β) / (n_k + V·β)
//! ```
//!
//! Deterministic under the config seed — the analysis pipeline's outputs
//! are as reproducible as the simulation's.
//!
//! ## Parallel sweeps
//!
//! Sweeps run as *approximate distributed* LDA (Newman et al. 2009):
//! documents are split into fixed chunks of [`GIBBS_CHUNK_DOCS`], each
//! chunk samples against a frozen start-of-sweep snapshot of the global
//! word–topic counts (its own updates applied locally, exactly), and the
//! per-chunk count deltas are re-merged in chunk order after every sweep.
//! Chunk boundaries and the per-`(sweep, chunk)` RNG forks depend only on
//! the corpus and `cfg.seed` — never on `cfg.threads` — so the fitted
//! model is bit-identical at any thread count. A corpus that fits in one
//! chunk degenerates to the exact serial collapsed Gibbs sampler.

use chatlens_simnet::par::Pool;
use chatlens_simnet::rng::Rng;

/// Documents per Gibbs chunk. A pure constant: chunk boundaries must be a
/// function of the corpus alone so thread count can't affect results.
pub const GIBBS_CHUNK_DOCS: usize = 256;

/// Sampler configuration.
#[derive(Debug, Clone, Copy)]
pub struct LdaConfig {
    /// Number of topics (the paper uses 10 per platform).
    pub k: usize,
    /// Document–topic smoothing (symmetric Dirichlet α).
    pub alpha: f64,
    /// Topic–word smoothing (symmetric Dirichlet β).
    pub beta: f64,
    /// Gibbs sweeps over the whole corpus.
    pub iterations: usize,
    /// Seed for the sampler's own randomness.
    pub seed: u64,
    /// Worker threads for chunked sweeps (1 = inline). Never affects the
    /// fitted model, only wall-clock time.
    pub threads: usize,
}

impl Default for LdaConfig {
    fn default() -> Self {
        LdaConfig {
            k: 10,
            alpha: 0.1,
            beta: 0.01,
            iterations: 60,
            seed: 42,
            threads: 1,
        }
    }
}

/// A fitted model.
pub struct LdaModel {
    k: usize,
    vocab_size: usize,
    /// `n_kw[k * V + w]`: tokens of word `w` assigned to topic `k`.
    n_kw: Vec<u32>,
    /// `n_k[k]`: tokens assigned to topic `k`.
    n_k: Vec<u32>,
    /// `n_dk[d * K + k]`: tokens of doc `d` assigned to topic `k`.
    n_dk: Vec<u32>,
    /// Document lengths.
    doc_len: Vec<u32>,
    total_tokens: u64,
    beta: f64,
    alpha: f64,
}

impl LdaModel {
    /// Fit a model to `docs` (token-id documents over a vocabulary of
    /// `vocab_size` words). Empty documents are allowed and simply carry
    /// no assignments.
    ///
    /// Sweeps are chunked (see the module docs): `cfg.threads` controls
    /// only scheduling, never the result.
    ///
    /// # Panics
    /// Panics if `cfg.k == 0`, `vocab_size == 0`, or any token id is out
    /// of range.
    pub fn fit(docs: &[Vec<u16>], vocab_size: usize, cfg: LdaConfig) -> LdaModel {
        assert!(cfg.k > 0, "need at least one topic");
        assert!(vocab_size > 0, "empty vocabulary");
        assert!(cfg.k <= 256, "u8 topic assignments cap K at 256");
        let k = cfg.k;
        let v = vocab_size;
        for doc in docs {
            for &w in doc {
                let w = usize::from(w);
                assert!(w < v, "token id {w} out of vocabulary ({v})");
            }
        }
        let total: usize = docs.iter().map(Vec::len).sum();
        let pool = Pool::new(cfg.threads);

        // Chunk-local sampler state: assignments and doc–topic counts for
        // a fixed range of documents. Boundaries depend only on the
        // corpus, so every thread count sees identical chunks.
        struct DocChunk {
            /// Global index of the chunk's first document.
            d0: usize,
            /// Chunk-local offsets of each doc's tokens into `z`.
            offsets: Vec<usize>,
            /// Topic assignment per token in the chunk.
            z: Vec<u8>,
            /// `n_dk[local_d * K + k]` for the chunk's documents.
            n_dk: Vec<u32>,
        }

        let mut chunks: Vec<DocChunk> = docs
            .chunks(GIBBS_CHUNK_DOCS)
            .enumerate()
            .map(|(c, chunk_docs)| {
                let mut offsets = Vec::with_capacity(chunk_docs.len());
                let mut tokens = 0usize;
                for doc in chunk_docs {
                    offsets.push(tokens);
                    tokens += doc.len();
                }
                DocChunk {
                    d0: c * GIBBS_CHUNK_DOCS,
                    offsets,
                    z: vec![0u8; tokens],
                    n_dk: vec![0u32; chunk_docs.len() * k],
                }
            })
            .collect();

        // Random initialization: per-chunk forks of the config seed keep
        // assignment streams independent of execution order.
        let mut n_kw = vec![0u32; k * v];
        let mut n_k = vec![0u32; k];
        let init_counts = pool.par_chunks_mut(1, &mut chunks, |c, slice| {
            let chunk = &mut slice[0];
            // lint:allow(D11) per-chunk label family: the chunk index is part of the stream identity
            let mut rng = Rng::new(cfg.seed).fork(&format!("lda/init/{c}"));
            let mut kw = vec![0u32; k * v];
            let mut nk = vec![0u32; k];
            let chunk_docs = &docs[chunk.d0..chunk.d0 + chunk.offsets.len()];
            let mut pos = 0usize;
            for (dl, doc) in chunk_docs.iter().enumerate() {
                for &w in doc {
                    let w = usize::from(w);
                    let topic = rng.index(k);
                    chunk.z[pos] = topic as u8;
                    kw[topic * v + w] += 1;
                    nk[topic] += 1;
                    chunk.n_dk[dl * k + topic] += 1;
                    pos += 1;
                }
            }
            (kw, nk)
        });
        for (kw, nk) in init_counts {
            for (global, local) in n_kw.iter_mut().zip(&kw) {
                *global += local;
            }
            for (global, local) in n_k.iter_mut().zip(&nk) {
                *global += local;
            }
        }

        // Gibbs sweeps: each chunk samples against the start-of-sweep
        // snapshot (plus its own in-chunk updates, which stay exact), then
        // the per-chunk deltas are reduced back in chunk order.
        let vbeta = v as f64 * cfg.beta;
        for sweep in 0..cfg.iterations {
            let kw_snap = n_kw.clone();
            let nk_snap = n_k.clone();
            let locals = pool.par_chunks_mut(1, &mut chunks, |c, slice| {
                let chunk = &mut slice[0];
                // lint:allow(D11) per-sweep/per-chunk label family: indices are part of the stream identity
                let mut rng = Rng::new(cfg.seed).fork(&format!("lda/sweep/{sweep}/{c}"));
                let mut kw = kw_snap.clone();
                let mut nk = nk_snap.clone();
                let mut probs = vec![0.0f64; k];
                let chunk_docs = &docs[chunk.d0..chunk.d0 + chunk.offsets.len()];
                for (dl, doc) in chunk_docs.iter().enumerate() {
                    let base = chunk.offsets[dl];
                    for (j, &w) in doc.iter().enumerate() {
                        let w = usize::from(w);
                        let old = usize::from(chunk.z[base + j]);
                        kw[old * v + w] -= 1;
                        nk[old] -= 1;
                        chunk.n_dk[dl * k + old] -= 1;
                        let mut acc = 0.0;
                        for (t, p) in probs.iter_mut().enumerate() {
                            let term = (f64::from(chunk.n_dk[dl * k + t]) + cfg.alpha)
                                * (f64::from(kw[t * v + w]) + cfg.beta)
                                / (f64::from(nk[t]) + vbeta);
                            acc += term;
                            *p = acc;
                        }
                        let u = rng.f64() * acc;
                        let new = probs.partition_point(|&cum| cum < u).min(k - 1);
                        chunk.z[base + j] = new as u8;
                        kw[new * v + w] += 1;
                        nk[new] += 1;
                        chunk.n_dk[dl * k + new] += 1;
                    }
                }
                (kw, nk)
            });
            let mut acc_kw: Vec<i64> = kw_snap.iter().map(|&x| i64::from(x)).collect();
            let mut acc_k: Vec<i64> = nk_snap.iter().map(|&x| i64::from(x)).collect();
            for (kw_local, nk_local) in locals {
                for (acc, (&local, &snap)) in acc_kw.iter_mut().zip(kw_local.iter().zip(&kw_snap)) {
                    *acc += i64::from(local) - i64::from(snap);
                }
                for (acc, (&local, &snap)) in acc_k.iter_mut().zip(nk_local.iter().zip(&nk_snap)) {
                    *acc += i64::from(local) - i64::from(snap);
                }
            }
            for (global, acc) in n_kw.iter_mut().zip(&acc_kw) {
                *global = u32::try_from(*acc).expect("token counts stay non-negative");
            }
            for (global, acc) in n_k.iter_mut().zip(&acc_k) {
                *global = u32::try_from(*acc).expect("token counts stay non-negative");
            }
        }

        // Reassemble the global doc–topic matrix in chunk (= document)
        // order.
        let mut n_dk = Vec::with_capacity(docs.len() * k);
        for chunk in &chunks {
            n_dk.extend_from_slice(&chunk.n_dk);
        }
        let doc_len: Vec<u32> = docs.iter().map(|d| d.len() as u32).collect();
        LdaModel {
            k,
            vocab_size: v,
            n_kw,
            n_k,
            n_dk,
            doc_len,
            total_tokens: total as u64,
            beta: cfg.beta,
            alpha: cfg.alpha,
        }
    }

    /// Number of topics.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of documents.
    pub fn num_docs(&self) -> usize {
        self.doc_len.len()
    }

    /// Total tokens in the corpus.
    pub fn total_tokens(&self) -> u64 {
        self.total_tokens
    }

    /// The `n` most probable words of `topic`, as `(word id, P(w|k))`.
    pub fn top_words(&self, topic: usize, n: usize) -> Vec<(u16, f64)> {
        let v = self.vocab_size;
        let denom = f64::from(self.n_k[topic]) + v as f64 * self.beta;
        let mut scored: Vec<(u16, f64)> = (0..v)
            .map(|w| {
                (
                    w as u16,
                    (f64::from(self.n_kw[topic * v + w]) + self.beta) / denom,
                )
            })
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite probs"));
        scored.truncate(n);
        scored
    }

    /// Fraction of corpus tokens assigned to each topic (the "percentage
    /// of tweets that match each topic" column of Table 3, token-weighted).
    pub fn topic_token_shares(&self) -> Vec<f64> {
        let total = self.total_tokens.max(1) as f64;
        self.n_k.iter().map(|&c| f64::from(c) / total).collect()
    }

    /// Fraction of documents whose dominant topic is each topic.
    pub fn topic_doc_shares(&self) -> Vec<f64> {
        let mut counts = vec![0u64; self.k];
        let mut assigned = 0u64;
        for d in 0..self.doc_len.len() {
            if let Some(t) = self.dominant_topic(d) {
                counts[t] += 1;
                assigned += 1;
            }
        }
        counts
            .into_iter()
            .map(|c| c as f64 / assigned.max(1) as f64)
            .collect()
    }

    /// The topic with the most assignments in document `d` (`None` for an
    /// empty document).
    pub fn dominant_topic(&self, d: usize) -> Option<usize> {
        if self.doc_len[d] == 0 {
            return None;
        }
        (0..self.k).max_by_key(|&t| self.n_dk[d * self.k + t])
    }

    /// Per-word perplexity of the training corpus under the fitted
    /// point estimates — lower is better; used by the K-sweep ablation.
    pub fn perplexity(&self, docs: &[Vec<u16>]) -> f64 {
        let v = self.vocab_size as f64;
        let mut log_lik = 0.0f64;
        let mut tokens = 0u64;
        for (d, doc) in docs.iter().enumerate() {
            let dl = f64::from(self.doc_len[d]) + self.k as f64 * self.alpha;
            for &w in doc {
                let w = usize::from(w);
                let mut p = 0.0;
                for t in 0..self.k {
                    let theta = (f64::from(self.n_dk[d * self.k + t]) + self.alpha) / dl;
                    let phi = (f64::from(self.n_kw[t * self.vocab_size + w]) + self.beta)
                        / (f64::from(self.n_k[t]) + v * self.beta);
                    p += theta * phi;
                }
                log_lik += p.max(1e-300).ln();
                tokens += 1;
            }
        }
        (-log_lik / tokens.max(1) as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two cleanly separated word communities: words 0–4 vs words 5–9.
    fn synthetic_corpus(docs_per_topic: usize, rng: &mut Rng) -> Vec<Vec<u16>> {
        let mut docs = Vec::new();
        for topic in 0..2u16 {
            for _ in 0..docs_per_topic {
                let doc: Vec<u16> = (0..20).map(|_| topic * 5 + rng.below(5) as u16).collect();
                docs.push(doc);
            }
        }
        docs
    }

    #[test]
    fn recovers_planted_topics() {
        let mut rng = Rng::new(1);
        let docs = synthetic_corpus(100, &mut rng);
        let model = LdaModel::fit(
            &docs,
            10,
            LdaConfig {
                k: 2,
                iterations: 80,
                ..LdaConfig::default()
            },
        );
        // Each topic's top-5 words must be one of the planted communities.
        for t in 0..2 {
            let top: Vec<u16> = model.top_words(t, 5).into_iter().map(|(w, _)| w).collect();
            let low = top.iter().filter(|&&w| w < 5).count();
            assert!(low == 0 || low == 5, "topic {t} mixed communities: {top:?}");
        }
        // And the two topics must be different communities.
        let t0: Vec<u16> = model.top_words(0, 5).into_iter().map(|(w, _)| w).collect();
        let t1: Vec<u16> = model.top_words(1, 5).into_iter().map(|(w, _)| w).collect();
        assert_ne!(t0[0] < 5, t1[0] < 5, "topics collapsed together");
    }

    #[test]
    fn dominant_topic_separates_documents() {
        let mut rng = Rng::new(2);
        let docs = synthetic_corpus(50, &mut rng);
        let model = LdaModel::fit(
            &docs,
            10,
            LdaConfig {
                k: 2,
                iterations: 80,
                ..LdaConfig::default()
            },
        );
        // Docs 0..50 share one dominant topic, docs 50..100 the other.
        let first = model.dominant_topic(0).unwrap();
        let agree_first = (0..50)
            .filter(|&d| model.dominant_topic(d) == Some(first))
            .count();
        let agree_second = (50..100)
            .filter(|&d| model.dominant_topic(d) == Some(1 - first))
            .count();
        assert!(agree_first > 45, "first block: {agree_first}/50");
        assert!(agree_second > 45, "second block: {agree_second}/50");
    }

    #[test]
    fn shares_sum_to_one() {
        let mut rng = Rng::new(3);
        let docs = synthetic_corpus(30, &mut rng);
        let model = LdaModel::fit(
            &docs,
            10,
            LdaConfig {
                k: 3,
                ..LdaConfig::default()
            },
        );
        let token_shares: f64 = model.topic_token_shares().iter().sum();
        assert!((token_shares - 1.0).abs() < 1e-9);
        let doc_shares: f64 = model.topic_doc_shares().iter().sum();
        assert!((doc_shares - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_under_seed() {
        let mut rng = Rng::new(4);
        let docs = synthetic_corpus(40, &mut rng);
        let cfg = LdaConfig {
            k: 2,
            iterations: 30,
            ..LdaConfig::default()
        };
        let a = LdaModel::fit(&docs, 10, cfg);
        let b = LdaModel::fit(&docs, 10, cfg);
        assert_eq!(a.n_kw, b.n_kw);
        assert_eq!(a.topic_token_shares(), b.topic_token_shares());
    }

    #[test]
    fn thread_count_never_changes_the_model() {
        // 600 docs span three Gibbs chunks, so the parallel snapshot/merge
        // path genuinely executes; the fitted counts must be bit-identical
        // at every thread count.
        let mut rng = Rng::new(6);
        let docs = synthetic_corpus(300, &mut rng);
        assert!(docs.len() > 2 * GIBBS_CHUNK_DOCS);
        let cfg = LdaConfig {
            k: 2,
            iterations: 15,
            ..LdaConfig::default()
        };
        let base = LdaModel::fit(&docs, 10, LdaConfig { threads: 1, ..cfg });
        for threads in [2, 8] {
            let m = LdaModel::fit(&docs, 10, LdaConfig { threads, ..cfg });
            assert_eq!(m.n_kw, base.n_kw, "{threads} threads: n_kw diverged");
            assert_eq!(m.n_k, base.n_k, "{threads} threads: n_k diverged");
            assert_eq!(m.n_dk, base.n_dk, "{threads} threads: n_dk diverged");
        }
    }

    #[test]
    fn chunked_sweeps_still_recover_topics_on_large_corpora() {
        // Multi-chunk corpora use stale-count (approximate) sweeps; the
        // planted structure must still be recovered.
        let mut rng = Rng::new(7);
        let docs = synthetic_corpus(200, &mut rng); // 400 docs, 2 chunks
        let model = LdaModel::fit(
            &docs,
            10,
            LdaConfig {
                k: 2,
                iterations: 60,
                ..LdaConfig::default()
            },
        );
        let t0: Vec<u16> = model.top_words(0, 5).into_iter().map(|(w, _)| w).collect();
        let t1: Vec<u16> = model.top_words(1, 5).into_iter().map(|(w, _)| w).collect();
        assert_ne!(t0[0] < 5, t1[0] < 5, "topics collapsed together");
    }

    #[test]
    fn perplexity_improves_with_right_k() {
        let mut rng = Rng::new(5);
        let docs = synthetic_corpus(60, &mut rng);
        let p1 = LdaModel::fit(
            &docs,
            10,
            LdaConfig {
                k: 1,
                iterations: 40,
                ..LdaConfig::default()
            },
        )
        .perplexity(&docs);
        let p2 = LdaModel::fit(
            &docs,
            10,
            LdaConfig {
                k: 2,
                iterations: 40,
                ..LdaConfig::default()
            },
        )
        .perplexity(&docs);
        assert!(
            p2 < p1,
            "two planted topics should beat one: k1={p1:.2} k2={p2:.2}"
        );
        // The planted vocabulary has 5 words/topic; perplexity near 5 is
        // optimal for the right model.
        assert!(p2 < 7.0, "k=2 perplexity {p2:.2}");
    }

    #[test]
    fn empty_documents_are_tolerated() {
        let docs = vec![vec![], vec![1u16, 2, 3], vec![]];
        let model = LdaModel::fit(
            &docs,
            5,
            LdaConfig {
                k: 2,
                iterations: 10,
                ..LdaConfig::default()
            },
        );
        assert_eq!(model.dominant_topic(0), None);
        assert!(model.dominant_topic(1).is_some());
        assert_eq!(model.total_tokens(), 3);
    }

    #[test]
    #[should_panic(expected = "out of vocabulary")]
    fn rejects_out_of_range_tokens() {
        let docs = vec![vec![9u16]];
        let _ = LdaModel::fit(&docs, 5, LdaConfig::default());
    }
}
