//! Statistical primitives: empirical CDFs, quantiles, concentration.

/// An empirical cumulative distribution function over `f64` samples.
#[derive(Debug, Clone, PartialEq)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Build from samples (non-finite values are dropped).
    pub fn new(mut samples: Vec<f64>) -> Ecdf {
        samples.retain(|x| x.is_finite());
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        Ecdf { sorted: samples }
    }

    /// Build from integer samples.
    pub fn from_ints<I: IntoIterator<Item = u64>>(items: I) -> Ecdf {
        Ecdf::new(items.into_iter().map(|x| x as f64).collect())
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the ECDF holds no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples `<= x` (0 for an empty ECDF).
    pub fn fraction_at_most(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Fraction of samples `> x`.
    pub fn fraction_above(&self, x: f64) -> f64 {
        1.0 - self.fraction_at_most(x)
    }

    /// The `q`-quantile (`0 <= q <= 1`) by the nearest-rank method, or
    /// `None` for an empty ECDF.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.sorted.len() as f64).ceil() as usize).clamp(1, self.sorted.len());
        Some(self.sorted[rank - 1])
    }

    /// Median (0.5-quantile).
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Smallest sample.
    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    /// Largest sample.
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }

    /// Mean of the samples.
    pub fn mean(&self) -> Option<f64> {
        if self.sorted.is_empty() {
            None
        } else {
            Some(self.sorted.iter().sum::<f64>() / self.sorted.len() as f64)
        }
    }

    /// `(x, F(x))` pairs at each distinct sample value — the series a CDF
    /// plot draws.
    pub fn series(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len() as f64;
        let mut out: Vec<(f64, f64)> = Vec::new();
        for (i, &x) in self.sorted.iter().enumerate() {
            let f = (i + 1) as f64 / n;
            match out.last_mut() {
                Some(last) if last.0 == x => last.1 = f,
                _ => out.push((x, f)),
            }
        }
        out
    }

    /// Evaluate `F` at the given grid points (for fixed-grid figure
    /// regeneration).
    pub fn sample_at(&self, grid: &[f64]) -> Vec<(f64, f64)> {
        grid.iter()
            .map(|&x| (x, self.fraction_at_most(x)))
            .collect()
    }
}

/// Share of the total mass held by the top `frac` of values (e.g.
/// `top_share(&volumes, 0.01)` = "the top 1% of members account for X% of
/// messages", Fig 9b).
pub fn top_share(values: &[u64], frac: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let total: u64 = values.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let mut sorted: Vec<u64> = values.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let k = ((values.len() as f64 * frac).ceil() as usize).clamp(1, values.len());
    let top: u64 = sorted[..k].iter().sum();
    top as f64 / total as f64
}

/// Fraction of `items` satisfying `pred` (0 for an empty slice).
pub fn fraction_of<T>(items: &[T], pred: impl Fn(&T) -> bool) -> f64 {
    if items.is_empty() {
        return 0.0;
    }
    items.iter().filter(|x| pred(x)).count() as f64 / items.len() as f64
}

use crate::pipeline::ecdf_stats;
use chatlens_checkpoint::{CheckpointError, Persist, Reader, Writer};
use chatlens_core::{Dataset, DayFold, DaySlice};
use chatlens_simnet::par::Pool;
use std::fmt::Write as _;

/// Per-day collection volumes — `[tweets, control, groups, joined]`
/// records filed on each study day, in day order. The batch twin of
/// [`StatsFold`]'s state, computed post hoc through
/// [`Dataset::day_slice`].
pub fn collection_volumes(ds: &Dataset) -> Vec<[u64; 4]> {
    let days = ds.window.num_days() as u32;
    (0..days)
        .filter_map(|d| ds.day_slice(d))
        .map(|slice| day_volumes(&slice))
        .collect()
}

/// The day's `[tweets, control, groups, joined]` record counts.
fn day_volumes(slice: &DaySlice<'_>) -> [u64; 4] {
    [
        slice.tweets_today().len() as u64,
        slice.control_today().len() as u64,
        slice.groups_today().len() as u64,
        slice.joined_today().len() as u64,
    ]
}

fn render(out: &mut String, days: &[[u64; 4]]) {
    for (d, v) in days.iter().enumerate() {
        writeln!(
            out,
            "day {d}: tweets={} control={} groups={} joined={}",
            v[0], v[1], v[2], v[3]
        )
        .unwrap();
    }
    for (i, series) in ["tweets", "control", "groups", "joined"]
        .into_iter()
        .enumerate()
    {
        let e = Ecdf::from_ints(days.iter().map(|v| v[i]));
        writeln!(out, "{series}_per_day: {}", ecdf_stats(&e)).unwrap();
    }
    let totals: [u64; 4] = [0, 1, 2, 3].map(|i| days.iter().map(|v| v[i]).sum());
    writeln!(
        out,
        "totals: tweets={} control={} groups={} joined={}",
        totals[0], totals[1], totals[2], totals[3]
    )
    .unwrap();
}

/// The batch stats fragment: per-day collection volumes with their
/// distributional roll-ups. [`StatsFold`] reproduces these bytes
/// incrementally.
pub fn fragment(ds: &Dataset, _pool: &Pool) -> String {
    let mut out = String::from("stats v1\n");
    render(&mut out, &collection_volumes(ds));
    out
}

/// Incremental twin of [`fragment`]: one `[u64; 4]` volume record per
/// folded day.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatsFold {
    days: Vec<[u64; 4]>,
}

impl StatsFold {
    /// An empty fold.
    pub fn new() -> StatsFold {
        StatsFold::default()
    }
}

impl DayFold for StatsFold {
    fn name(&self) -> &'static str {
        "stats"
    }

    fn fold_day(&mut self, slice: &DaySlice<'_>) {
        self.days.push(day_volumes(slice));
    }

    fn finish(&self, _pool: &Pool) -> String {
        let mut out = String::from("stats v1\n");
        render(&mut out, &self.days);
        out
    }

    fn save_state(&self, w: &mut Writer) {
        self.days.save(w);
    }

    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), CheckpointError> {
        self.days = Persist::load(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecdf_basics() {
        let e = Ecdf::from_ints([1, 2, 2, 3, 10]);
        assert_eq!(e.len(), 5);
        assert!((e.fraction_at_most(2.0) - 0.6).abs() < 1e-12);
        assert!((e.fraction_at_most(0.5) - 0.0).abs() < 1e-12);
        assert!((e.fraction_at_most(10.0) - 1.0).abs() < 1e-12);
        assert!((e.fraction_above(2.0) - 0.4).abs() < 1e-12);
        assert_eq!(e.median(), Some(2.0));
        assert_eq!(e.min(), Some(1.0));
        assert_eq!(e.max(), Some(10.0));
        assert!((e.mean().unwrap() - 3.6).abs() < 1e-12);
    }

    #[test]
    fn ecdf_quantiles_nearest_rank() {
        let e = Ecdf::from_ints(1..=100);
        assert_eq!(e.quantile(0.25), Some(25.0));
        assert_eq!(e.quantile(0.5), Some(50.0));
        assert_eq!(e.quantile(1.0), Some(100.0));
        assert_eq!(e.quantile(0.0), Some(1.0), "clamped to first rank");
    }

    #[test]
    fn ecdf_empty() {
        let e = Ecdf::new(vec![]);
        assert!(e.is_empty());
        assert_eq!(e.median(), None);
        assert_eq!(e.fraction_at_most(5.0), 0.0);
        assert!(e.series().is_empty());
    }

    #[test]
    fn ecdf_drops_non_finite() {
        let e = Ecdf::new(vec![1.0, f64::NAN, f64::INFINITY, 2.0]);
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn series_merges_duplicates_and_ends_at_one() {
        let e = Ecdf::from_ints([5, 5, 5, 7]);
        let s = e.series();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0], (5.0, 0.75));
        assert_eq!(s[1], (7.0, 1.0));
    }

    #[test]
    fn sample_at_grid() {
        let e = Ecdf::from_ints([1, 10, 100]);
        let pts = e.sample_at(&[0.0, 1.0, 50.0, 1000.0]);
        assert_eq!(pts[0].1, 0.0);
        assert!((pts[1].1 - 1.0 / 3.0).abs() < 1e-12);
        assert!((pts[2].1 - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(pts[3].1, 1.0);
    }

    #[test]
    fn top_share_concentration() {
        // One giant + 99 ones: top 1% holds 901/1000.
        let mut v = vec![1u64; 99];
        v.push(901);
        assert!((top_share(&v, 0.01) - 0.901).abs() < 1e-12);
        // Uniform values: top 10% holds ~10%.
        let u = vec![5u64; 100];
        assert!((top_share(&u, 0.10) - 0.10).abs() < 1e-12);
        assert_eq!(top_share(&[], 0.01), 0.0);
        assert_eq!(top_share(&[0, 0], 0.5), 0.0);
    }

    #[test]
    fn fraction_of_helper() {
        let v = [1, 2, 3, 4];
        assert!((fraction_of(&v, |&x| x % 2 == 0) - 0.5).abs() < 1e-12);
        let empty: [u8; 0] = [];
        assert_eq!(fraction_of(&empty, |_| true), 0.0);
    }
}
