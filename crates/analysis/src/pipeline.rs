//! The analysis pipeline: one batch and one incremental path to the same
//! report bytes.
//!
//! Every results-section module in this crate ships two entry points:
//!
//! * a **batch fragment** — `fragment(ds, pool)`, a pure function of the
//!   final [`Dataset`] producing a canonical text rendering of that
//!   section's artifacts; and
//! * an **incremental fold** — a [`DayFold`] implementation that
//!   maintains a compact per-day state over the campaign's day loop and
//!   renders the *same bytes* from folded state alone at `finish`.
//!
//! [`standard_folds`] registers every fold in canonical order and
//! [`batch_fragments`] computes the matching batch renderings;
//! `tests/fold_parity.rs` locks the two paths byte-for-byte across
//! thread counts, fault/corruption profiles, and kill/resume.
//!
//! # Writing a custom fold
//!
//! A fold sees one borrowed [`DaySlice`](chatlens_core::DaySlice) per
//! completed study day and must be able to round-trip its state through
//! the checkpoint codec:
//!
//! ```
//! use chatlens_checkpoint::{CheckpointError, Persist, Reader, Writer};
//! use chatlens_core::{DayFold, DaySlice, FoldDriver};
//! use chatlens_simnet::par::Pool;
//!
//! /// Counts collected tweets per study day.
//! struct TweetVolume {
//!     per_day: Vec<u64>,
//! }
//!
//! impl DayFold for TweetVolume {
//!     fn name(&self) -> &'static str {
//!         "tweet_volume"
//!     }
//!     fn fold_day(&mut self, slice: &DaySlice<'_>) {
//!         self.per_day.push(slice.tweets_today().len() as u64);
//!     }
//!     fn finish(&self, _pool: &Pool) -> String {
//!         format!("tweets_per_day: {:?}\n", self.per_day)
//!     }
//!     fn save_state(&self, w: &mut Writer) {
//!         self.per_day.save(w);
//!     }
//!     fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), CheckpointError> {
//!         self.per_day = Persist::load(r)?;
//!         Ok(())
//!     }
//! }
//!
//! let fold = TweetVolume { per_day: Vec::new() };
//! let mut driver = FoldDriver::new(vec![Box::new(fold)], 1);
//! let scenario = chatlens_workload::ScenarioConfig::tiny();
//! let ds = chatlens_core::run_study_folded(scenario, Default::default(), &mut driver);
//! let outcome = driver.finish();
//! let rendered = outcome.fragment("tweet_volume").unwrap();
//! assert!(rendered.starts_with("tweets_per_day: ["));
//! // The folded per-day series matches post-hoc slicing of the dataset.
//! let day0 = ds.day_slice(0).unwrap().tweets_today().len();
//! assert!(rendered.contains(&format!("[{day0}, ")));
//! ```

use crate::lda::LdaConfig;
use crate::stats::Ecdf;
use chatlens_core::{Dataset, DayFold};
use chatlens_simnet::hash::sha256_hex;
use chatlens_simnet::par::Pool;

/// Every standard analysis fold, in canonical registration order —
/// the order [`batch_fragments`] uses and the order fold state is filed
/// in the snapshot ledger.
pub fn standard_folds() -> Vec<Box<dyn DayFold>> {
    vec![
        Box::new(crate::discovery::DiscoveryFold::new()),
        Box::new(crate::content::ContentFold::new()),
        Box::new(crate::membership::MembershipFold::new()),
        Box::new(crate::lifecycle::LifecycleFold::new()),
        Box::new(crate::messages::MessagesFold::new()),
        Box::new(crate::pii::PiiFold::new()),
        Box::new(crate::topics::TopicsFold::new()),
        Box::new(crate::stats::StatsFold::new()),
    ]
}

/// The batch renderings of every standard analysis, in the same order
/// and under the same names as [`standard_folds`]. Each fragment is a
/// pure function of the final dataset; the incremental path must
/// reproduce these bytes exactly.
pub fn batch_fragments(ds: &Dataset, pool: &Pool) -> Vec<(&'static str, String)> {
    vec![
        ("discovery", crate::discovery::fragment(ds, pool)),
        ("content", crate::content::fragment(ds, pool)),
        ("membership", crate::membership::fragment(ds, pool)),
        ("lifecycle", crate::lifecycle::fragment(ds, pool)),
        ("messages", crate::messages::fragment(ds, pool)),
        ("pii", crate::pii::fragment(ds, pool)),
        ("topics", crate::topics::fragment(ds, pool)),
        ("stats", crate::stats::fragment(ds, pool)),
    ]
}

/// The LDA settings both report paths fit Table 3 with: small enough to
/// keep the report stage fast, fixed seed so the fitted model is a pure
/// function of the corpus.
pub fn report_lda_config() -> LdaConfig {
    LdaConfig {
        k: 6,
        iterations: 25,
        seed: 7,
        ..LdaConfig::default()
    }
}

/// Canonical one-line rendering of an ECDF: headline quantiles plus a
/// SHA-256 over the full `(x, F(x))` series, so two ECDFs render equal
/// bytes iff they hold the same sample multiset.
pub fn ecdf_stats(e: &Ecdf) -> String {
    let series = format!("{:?}", e.series());
    format!(
        "n={} min={:?} q10={:?} q25={:?} median={:?} q75={:?} q90={:?} q99={:?} max={:?} mean={:?} sha256={}",
        e.len(),
        e.min(),
        e.quantile(0.10),
        e.quantile(0.25),
        e.median(),
        e.quantile(0.75),
        e.quantile(0.90),
        e.quantile(0.99),
        e.max(),
        e.mean(),
        sha256_hex(series.as_bytes()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_registry_matches_batch_registry() {
        let folds = standard_folds();
        let ds = chatlens_core::run_study(chatlens_workload::ScenarioConfig::tiny());
        let pool = Pool::new(1);
        let fragments = batch_fragments(&ds, &pool);
        assert_eq!(folds.len(), fragments.len());
        for (fold, (name, _)) in folds.iter().zip(&fragments) {
            assert_eq!(fold.name(), *name);
        }
    }

    #[test]
    fn ecdf_stats_locks_the_sample_multiset() {
        let a = Ecdf::from_ints([1, 2, 2, 9]);
        let b = Ecdf::from_ints([9, 2, 1, 2]);
        let c = Ecdf::from_ints([1, 2, 3, 9]);
        assert_eq!(ecdf_stats(&a), ecdf_stats(&b), "order-insensitive");
        assert_ne!(ecdf_stats(&a), ecdf_stats(&c), "value-sensitive");
    }
}
