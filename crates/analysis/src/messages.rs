//! In-group activity: Fig 8 (message types) and Fig 9 (volumes per group
//! and per user), plus §5's active-member shares.

use crate::fanout::per_platform;
use crate::pipeline::ecdf_stats;
use crate::stats::{top_share, Ecdf};
use chatlens_checkpoint::{persist_struct, CheckpointError, Persist, Reader, Writer};
use chatlens_core::joiner::JoinedGroup;
use chatlens_core::{Dataset, DayFold, DaySlice};
use chatlens_platforms::id::PlatformKind;
use chatlens_platforms::message::MessageKind;
use chatlens_simnet::par::Pool;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Per-kind message counts over one platform's joined groups.
fn kind_counts_from<'a>(groups: impl Iterator<Item = &'a JoinedGroup>) -> [u64; 9] {
    let mut counts = [0u64; 9];
    for jg in groups {
        for m in &jg.messages {
            counts[m.kind.index()] += 1;
        }
    }
    counts
}

/// Fig 8 shares from raw per-kind counts; shared by the batch path and
/// [`MessagesFold`] so both run the identical division.
fn shares_from(counts: &[u64; 9]) -> Vec<(MessageKind, f64)> {
    let total: u64 = counts.iter().sum();
    MessageKind::ALL
        .into_iter()
        .zip(counts)
        .map(|(k, c)| (k, *c as f64 / total.max(1) as f64))
        .collect()
}

/// Fig 8: share of messages per [`MessageKind`], in `MessageKind::ALL`
/// order.
pub fn kind_shares(ds: &Dataset, kind: PlatformKind) -> Vec<(MessageKind, f64)> {
    shares_from(&kind_counts_from(ds.joined_of(kind)))
}

/// Multimedia share of an already-computed Fig 8 breakdown.
fn multimedia_from(shares: &[(MessageKind, f64)]) -> f64 {
    shares
        .iter()
        .filter(|(k, _)| k.is_multimedia())
        .map(|(_, s)| s)
        .sum()
}

/// Share of multimedia messages (image/video/audio/sticker) — §5 notes
/// WhatsApp exceeds 20%.
pub fn multimedia_share(ds: &Dataset, kind: PlatformKind) -> f64 {
    multimedia_from(&kind_shares(ds, kind))
}

/// Fig 9a per-group daily rates, in joined order.
fn rates_from<'a>(
    end_day: i64,
    kind: PlatformKind,
    groups: impl Iterator<Item = &'a JoinedGroup>,
) -> Vec<f64> {
    let mut rates: Vec<f64> = Vec::new();
    for jg in groups {
        let start_day = match kind {
            PlatformKind::WhatsApp => jg.joined_at.date().day_number(),
            _ => jg.created_day.unwrap_or(jg.joined_at.date().day_number()),
        };
        let days = (end_day - start_day).max(1) as f64;
        rates.push(jg.messages.len() as f64 / days);
    }
    rates
}

/// Fig 9a: mean messages per day per joined group. WhatsApp rates are
/// normalised by the membership period (messages are only visible from the
/// join date); Telegram/Discord by the group's age (full history).
pub fn msgs_per_group_day(ds: &Dataset, kind: PlatformKind) -> Ecdf {
    Ecdf::new(rates_from(
        ds.window.end.day_number(),
        kind,
        ds.joined_of(kind),
    ))
}

/// Fig 9b per-sender tallies, keyed (and therefore ordered) by sender id.
fn per_user_from<'a>(groups: impl Iterator<Item = &'a JoinedGroup>) -> BTreeMap<u32, u64> {
    // BTreeMap: values iterate ordered by sender id, so Fig 9b's series
    // is identical run-to-run (lint rule D2).
    let mut per_user: BTreeMap<u32, u64> = BTreeMap::new();
    for jg in groups {
        for m in &jg.messages {
            *per_user.entry(m.sender.0).or_insert(0) += 1;
        }
    }
    per_user
}

/// Fig 9b data: per-user message counts across all joined groups of one
/// platform.
pub fn msgs_per_user(ds: &Dataset, kind: PlatformKind) -> Vec<u64> {
    per_user_from(ds.joined_of(kind)).into_values().collect()
}

/// Fig 9b roll-up.
#[derive(Debug, Clone, PartialEq)]
pub struct UserActivity {
    /// Distinct message senders.
    pub senders: u64,
    /// Share of senders with at most 10 messages.
    pub low_volume_share: f64,
    /// Share of all messages sent by the top 1% of senders.
    pub top1_share: f64,
    /// ECDF over per-sender volumes.
    pub volumes: Ecdf,
}

/// Fig 9b roll-up from an id-ordered volume series; shared by the batch
/// path and [`MessagesFold`].
fn activity_from(volumes: &[u64]) -> UserActivity {
    let e = Ecdf::from_ints(volumes.iter().copied());
    UserActivity {
        senders: volumes.len() as u64,
        low_volume_share: e.fraction_at_most(10.0),
        top1_share: top_share(volumes, 0.01),
        volumes: e,
    }
}

/// Compute Fig 9b for one platform.
pub fn user_activity(ds: &Dataset, kind: PlatformKind) -> UserActivity {
    activity_from(&msgs_per_user(ds, kind))
}

/// The §5 active-member division, `0.0` when no members were counted.
fn active_share(senders: u64, members: u64) -> f64 {
    let members = members as f64;
    if members == 0.0 {
        0.0
    } else {
        senders as f64 / members
    }
}

/// §5: distinct senders as a share of the joined groups' total members
/// (59.4% WhatsApp, 14.6% Telegram, 65.8% Discord in the paper).
pub fn active_member_share(ds: &Dataset, kind: PlatformKind) -> f64 {
    active_share(
        user_activity(ds, kind).senders,
        ds.summary(kind).platform_users,
    )
}

/// Fig 8 for all three platforms, fanned out across the pool; element `i`
/// equals `kind_shares(ds, PlatformKind::ALL[i])` at any thread count.
pub fn kind_shares_all(ds: &Dataset, pool: &Pool) -> [Vec<(MessageKind, f64)>; 3] {
    per_platform(pool, |kind| kind_shares(ds, kind))
}

/// Fig 9a for all three platforms, fanned out across the pool.
pub fn msgs_per_group_day_all(ds: &Dataset, pool: &Pool) -> [Ecdf; 3] {
    per_platform(pool, |kind| msgs_per_group_day(ds, kind))
}

/// Fig 9b for all three platforms, fanned out across the pool.
pub fn user_activity_all(ds: &Dataset, pool: &Pool) -> [UserActivity; 3] {
    per_platform(pool, |kind| user_activity(ds, kind))
}

fn render_platform(
    out: &mut String,
    kind: PlatformKind,
    shares: &[(MessageKind, f64)],
    rates: &Ecdf,
    activity: &UserActivity,
    active: f64,
) {
    let name = kind.name();
    writeln!(out, "{name}.kind_shares: {shares:?}").unwrap();
    writeln!(
        out,
        "{name}.multimedia_share: {:?}",
        multimedia_from(shares)
    )
    .unwrap();
    writeln!(out, "{name}.msgs_per_group_day: {}", ecdf_stats(rates)).unwrap();
    writeln!(
        out,
        "{name}.user_activity: senders={} low_volume_share={:?} top1_share={:?}",
        activity.senders, activity.low_volume_share, activity.top1_share
    )
    .unwrap();
    writeln!(
        out,
        "{name}.msgs_per_user: {}",
        ecdf_stats(&activity.volumes)
    )
    .unwrap();
    writeln!(out, "{name}.active_member_share: {active:?}").unwrap();
}

/// The batch messages fragment: Fig 8 kind shares, Fig 9 volumes, and
/// the §5 active-member shares, rendered canonically from the final
/// dataset. [`MessagesFold`] reproduces these bytes incrementally.
pub fn fragment(ds: &Dataset, pool: &Pool) -> String {
    let sections = per_platform(pool, |kind| {
        let mut out = String::new();
        render_platform(
            &mut out,
            kind,
            &kind_shares(ds, kind),
            &msgs_per_group_day(ds, kind),
            &user_activity(ds, kind),
            active_member_share(ds, kind),
        );
        out
    });
    let mut out = String::from("messages v1\n");
    for s in sections {
        out.push_str(&s);
    }
    out
}

/// One platform's folded message state.
#[derive(Debug, Clone, Default, PartialEq)]
struct PlatMessages {
    /// Message tallies per [`MessageKind::index`].
    kind_counts: [u64; 9],
    /// Fig 9a per-group daily rates, in joined order.
    rates: Vec<f64>,
    /// Fig 9b per-sender tallies.
    per_user: BTreeMap<u32, u64>,
    /// Total members across joined groups (§5 denominator).
    platform_users: u64,
}

persist_struct!(PlatMessages {
    kind_counts,
    rates,
    per_user,
    platform_users
});

/// Incremental twin of [`fragment`].
///
/// Every messages artifact is a pure function of the joined-group store,
/// and a joined group's message log and member list keep growing until
/// the final day's collection event — so this fold's `fold_day` is a
/// deliberate no-op until [`DaySlice::is_final`], where it captures the
/// compact tallies (kind counts, per-group rates, per-sender volumes,
/// member totals) the finish step renders from. The state is still a
/// fraction of the raw message log's size, which is what the checkpoint
/// carries on the batch path.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MessagesFold {
    plats: [PlatMessages; 3],
}

impl MessagesFold {
    /// An empty fold.
    pub fn new() -> MessagesFold {
        MessagesFold::default()
    }
}

impl DayFold for MessagesFold {
    fn name(&self) -> &'static str {
        "messages"
    }

    fn fold_day(&mut self, slice: &DaySlice<'_>) {
        if !slice.is_final() {
            return;
        }
        let end_day = slice.window.end.day_number();
        for (i, kind) in PlatformKind::ALL.into_iter().enumerate() {
            let joined = || slice.joined().iter().filter(|j| j.platform == kind);
            let p = &mut self.plats[i];
            p.kind_counts = kind_counts_from(joined());
            p.rates = rates_from(end_day, kind, joined());
            p.per_user = per_user_from(joined());
            p.platform_users = joined()
                .map(|jg| match kind {
                    PlatformKind::WhatsApp => jg.members.len() as u64,
                    _ => slice
                        .interner
                        .get(&jg.key)
                        .and_then(|s| slice.timelines.get(s.index()))
                        .and_then(|t| t.size_span())
                        .map(|(_, last)| u64::from(last))
                        .unwrap_or(0),
                })
                .sum();
        }
    }

    fn finish(&self, pool: &Pool) -> String {
        let sections = per_platform(pool, |kind| {
            let p = &self.plats[kind.index()];
            let shares = shares_from(&p.kind_counts);
            let rates = Ecdf::new(p.rates.clone());
            let volumes: Vec<u64> = p.per_user.values().copied().collect();
            let activity = activity_from(&volumes);
            let active = active_share(activity.senders, p.platform_users);
            let mut out = String::new();
            render_platform(&mut out, kind, &shares, &rates, &activity, active);
            out
        });
        let mut out = String::from("messages v1\n");
        for s in sections {
            out.push_str(&s);
        }
        out
    }

    fn save_state(&self, w: &mut Writer) {
        self.plats.save(w);
    }

    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), CheckpointError> {
        self.plats = Persist::load(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chatlens_core::run_study;
    use chatlens_workload::ScenarioConfig;
    use std::sync::OnceLock;

    fn dataset() -> &'static Dataset {
        static DS: OnceLock<Dataset> = OnceLock::new();
        DS.get_or_init(|| run_study(ScenarioConfig::tiny()))
    }

    #[test]
    fn fig8_text_dominates_everywhere() {
        let ds = dataset();
        for kind in PlatformKind::ALL {
            let shares = kind_shares(ds, kind);
            assert_eq!(shares[0].0, MessageKind::Text);
            assert!(shares[0].1 > 0.7, "{kind} text share {}", shares[0].1);
            let total: f64 = shares.iter().map(|(_, s)| s).sum();
            assert!((total - 1.0).abs() < 1e-9, "{kind}");
        }
    }

    #[test]
    fn fig8_whatsapp_multimedia_heavy() {
        let ds = dataset();
        let wa = multimedia_share(ds, PlatformKind::WhatsApp);
        let tg = multimedia_share(ds, PlatformKind::Telegram);
        let dc = multimedia_share(ds, PlatformKind::Discord);
        assert!(wa > 0.15, "WA multimedia {wa}");
        assert!(wa > tg && tg > dc, "WA {wa} > TG {tg} > DC {dc}");
        // Stickers specifically are a WhatsApp phenomenon (~10%).
        let sticker = kind_shares(ds, PlatformKind::WhatsApp)
            .into_iter()
            .find(|(k, _)| *k == MessageKind::Sticker)
            .unwrap()
            .1;
        assert!((sticker - 0.10).abs() < 0.04, "WA sticker share {sticker}");
    }

    #[test]
    fn fig8_telegram_has_service_messages() {
        let ds = dataset();
        let service = kind_shares(ds, PlatformKind::Telegram)
            .into_iter()
            .find(|(k, _)| *k == MessageKind::Service)
            .unwrap()
            .1;
        assert!(service > 0.005, "TG service share {service}");
        let dc_service = kind_shares(ds, PlatformKind::Discord)
            .into_iter()
            .find(|(k, _)| *k == MessageKind::Service)
            .unwrap()
            .1;
        assert!(dc_service < 0.005, "DC service share {dc_service}");
    }

    #[test]
    fn fig9a_telegram_least_active_per_day() {
        let ds = dataset();
        let wa = msgs_per_group_day(ds, PlatformKind::WhatsApp);
        let tg = msgs_per_group_day(ds, PlatformKind::Telegram);
        let dc = msgs_per_group_day(ds, PlatformKind::Discord);
        // Paper: ~60% of WA/DC groups above 10 msgs/day vs ~25% of TG.
        let wa_busy = wa.fraction_above(10.0);
        let tg_busy = tg.fraction_above(10.0);
        let dc_busy = dc.fraction_above(10.0);
        assert!(tg_busy < wa_busy, "TG {tg_busy} < WA {wa_busy}");
        assert!(tg_busy < dc_busy, "TG {tg_busy} < DC {dc_busy}");
        assert!(tg_busy < 0.45, "TG busy share {tg_busy}");
    }

    #[test]
    fn fig9b_low_volume_majority_and_heavy_tail() {
        let ds = dataset();
        for kind in PlatformKind::ALL {
            let ua = user_activity(ds, kind);
            assert!(ua.senders > 0, "{kind}");
            assert!(
                ua.low_volume_share > 0.5,
                "{kind}: most senders send few messages ({})",
                ua.low_volume_share
            );
            assert!(
                ua.top1_share > 0.05,
                "{kind}: the top 1% carries weight ({})",
                ua.top1_share
            );
        }
        // Telegram/Discord are more concentrated than WhatsApp (60/63% vs
        // 31% in the paper).
        let wa = user_activity(ds, PlatformKind::WhatsApp).top1_share;
        let tg = user_activity(ds, PlatformKind::Telegram).top1_share;
        assert!(tg > wa, "TG {tg} > WA {wa}");
    }

    #[test]
    fn active_member_share_ordering() {
        let ds = dataset();
        let wa = active_member_share(ds, PlatformKind::WhatsApp);
        let tg = active_member_share(ds, PlatformKind::Telegram);
        let dc = active_member_share(ds, PlatformKind::Discord);
        // Paper: 59.4% / 14.6% / 65.8% — Telegram far below the others
        // (channels mute almost everyone).
        assert!(tg < wa && tg < dc, "TG {tg} vs WA {wa}, DC {dc}");
        assert!(tg < 0.45, "TG active share {tg}");
    }

    #[test]
    fn parallel_fanout_matches_serial() {
        let ds = dataset();
        for threads in [1, 2, 8] {
            let pool = Pool::new(threads);
            let kinds = kind_shares_all(ds, &pool);
            let volumes = msgs_per_group_day_all(ds, &pool);
            let activity = user_activity_all(ds, &pool);
            for (i, kind) in PlatformKind::ALL.into_iter().enumerate() {
                assert_eq!(kinds[i], kind_shares(ds, kind), "{kind}");
                assert_eq!(volumes[i], msgs_per_group_day(ds, kind), "{kind}");
                assert_eq!(activity[i], user_activity(ds, kind), "{kind}");
            }
        }
    }
}
