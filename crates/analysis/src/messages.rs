//! In-group activity: Fig 8 (message types) and Fig 9 (volumes per group
//! and per user), plus §5's active-member shares.

use crate::fanout::per_platform;
use crate::stats::{top_share, Ecdf};
use chatlens_core::Dataset;
use chatlens_platforms::id::PlatformKind;
use chatlens_platforms::message::MessageKind;
use chatlens_simnet::par::Pool;
use std::collections::BTreeMap;

/// Fig 8: share of messages per [`MessageKind`], in `MessageKind::ALL`
/// order.
pub fn kind_shares(ds: &Dataset, kind: PlatformKind) -> Vec<(MessageKind, f64)> {
    let mut counts = [0u64; 9];
    let mut total = 0u64;
    for jg in ds.joined_of(kind) {
        for m in &jg.messages {
            counts[m.kind.index()] += 1;
            total += 1;
        }
    }
    MessageKind::ALL
        .into_iter()
        .zip(counts)
        .map(|(k, c)| (k, c as f64 / total.max(1) as f64))
        .collect()
}

/// Share of multimedia messages (image/video/audio/sticker) — §5 notes
/// WhatsApp exceeds 20%.
pub fn multimedia_share(ds: &Dataset, kind: PlatformKind) -> f64 {
    kind_shares(ds, kind)
        .into_iter()
        .filter(|(k, _)| k.is_multimedia())
        .map(|(_, s)| s)
        .sum()
}

/// Fig 9a: mean messages per day per joined group. WhatsApp rates are
/// normalised by the membership period (messages are only visible from the
/// join date); Telegram/Discord by the group's age (full history).
pub fn msgs_per_group_day(ds: &Dataset, kind: PlatformKind) -> Ecdf {
    let mut rates: Vec<f64> = Vec::new();
    let end_day = ds.window.end.day_number();
    for jg in ds.joined_of(kind) {
        let start_day = match kind {
            PlatformKind::WhatsApp => jg.joined_at.date().day_number(),
            _ => jg.created_day.unwrap_or(jg.joined_at.date().day_number()),
        };
        let days = (end_day - start_day).max(1) as f64;
        rates.push(jg.messages.len() as f64 / days);
    }
    Ecdf::new(rates)
}

/// Fig 9b data: per-user message counts across all joined groups of one
/// platform.
pub fn msgs_per_user(ds: &Dataset, kind: PlatformKind) -> Vec<u64> {
    // BTreeMap: the returned Vec is ordered by sender id, so Fig 9b's
    // series is identical run-to-run (lint rule D2).
    let mut per_user: BTreeMap<u32, u64> = BTreeMap::new();
    for jg in ds.joined_of(kind) {
        for m in &jg.messages {
            *per_user.entry(m.sender.0).or_insert(0) += 1;
        }
    }
    per_user.into_values().collect()
}

/// Fig 9b roll-up.
#[derive(Debug, Clone, PartialEq)]
pub struct UserActivity {
    /// Distinct message senders.
    pub senders: u64,
    /// Share of senders with at most 10 messages.
    pub low_volume_share: f64,
    /// Share of all messages sent by the top 1% of senders.
    pub top1_share: f64,
    /// ECDF over per-sender volumes.
    pub volumes: Ecdf,
}

/// Compute Fig 9b for one platform.
pub fn user_activity(ds: &Dataset, kind: PlatformKind) -> UserActivity {
    let volumes = msgs_per_user(ds, kind);
    let e = Ecdf::from_ints(volumes.iter().copied());
    UserActivity {
        senders: volumes.len() as u64,
        low_volume_share: e.fraction_at_most(10.0),
        top1_share: top_share(&volumes, 0.01),
        volumes: e,
    }
}

/// §5: distinct senders as a share of the joined groups' total members
/// (59.4% WhatsApp, 14.6% Telegram, 65.8% Discord in the paper).
pub fn active_member_share(ds: &Dataset, kind: PlatformKind) -> f64 {
    let senders = user_activity(ds, kind).senders as f64;
    let members = ds.summary(kind).platform_users as f64;
    if members == 0.0 {
        0.0
    } else {
        senders / members
    }
}

/// Fig 8 for all three platforms, fanned out across the pool; element `i`
/// equals `kind_shares(ds, PlatformKind::ALL[i])` at any thread count.
pub fn kind_shares_all(ds: &Dataset, pool: &Pool) -> [Vec<(MessageKind, f64)>; 3] {
    per_platform(pool, |kind| kind_shares(ds, kind))
}

/// Fig 9a for all three platforms, fanned out across the pool.
pub fn msgs_per_group_day_all(ds: &Dataset, pool: &Pool) -> [Ecdf; 3] {
    per_platform(pool, |kind| msgs_per_group_day(ds, kind))
}

/// Fig 9b for all three platforms, fanned out across the pool.
pub fn user_activity_all(ds: &Dataset, pool: &Pool) -> [UserActivity; 3] {
    per_platform(pool, |kind| user_activity(ds, kind))
}

#[cfg(test)]
mod tests {
    use super::*;
    use chatlens_core::run_study;
    use chatlens_workload::ScenarioConfig;
    use std::sync::OnceLock;

    fn dataset() -> &'static Dataset {
        static DS: OnceLock<Dataset> = OnceLock::new();
        DS.get_or_init(|| run_study(ScenarioConfig::tiny()))
    }

    #[test]
    fn fig8_text_dominates_everywhere() {
        let ds = dataset();
        for kind in PlatformKind::ALL {
            let shares = kind_shares(ds, kind);
            assert_eq!(shares[0].0, MessageKind::Text);
            assert!(shares[0].1 > 0.7, "{kind} text share {}", shares[0].1);
            let total: f64 = shares.iter().map(|(_, s)| s).sum();
            assert!((total - 1.0).abs() < 1e-9, "{kind}");
        }
    }

    #[test]
    fn fig8_whatsapp_multimedia_heavy() {
        let ds = dataset();
        let wa = multimedia_share(ds, PlatformKind::WhatsApp);
        let tg = multimedia_share(ds, PlatformKind::Telegram);
        let dc = multimedia_share(ds, PlatformKind::Discord);
        assert!(wa > 0.15, "WA multimedia {wa}");
        assert!(wa > tg && tg > dc, "WA {wa} > TG {tg} > DC {dc}");
        // Stickers specifically are a WhatsApp phenomenon (~10%).
        let sticker = kind_shares(ds, PlatformKind::WhatsApp)
            .into_iter()
            .find(|(k, _)| *k == MessageKind::Sticker)
            .unwrap()
            .1;
        assert!((sticker - 0.10).abs() < 0.04, "WA sticker share {sticker}");
    }

    #[test]
    fn fig8_telegram_has_service_messages() {
        let ds = dataset();
        let service = kind_shares(ds, PlatformKind::Telegram)
            .into_iter()
            .find(|(k, _)| *k == MessageKind::Service)
            .unwrap()
            .1;
        assert!(service > 0.005, "TG service share {service}");
        let dc_service = kind_shares(ds, PlatformKind::Discord)
            .into_iter()
            .find(|(k, _)| *k == MessageKind::Service)
            .unwrap()
            .1;
        assert!(dc_service < 0.005, "DC service share {dc_service}");
    }

    #[test]
    fn fig9a_telegram_least_active_per_day() {
        let ds = dataset();
        let wa = msgs_per_group_day(ds, PlatformKind::WhatsApp);
        let tg = msgs_per_group_day(ds, PlatformKind::Telegram);
        let dc = msgs_per_group_day(ds, PlatformKind::Discord);
        // Paper: ~60% of WA/DC groups above 10 msgs/day vs ~25% of TG.
        let wa_busy = wa.fraction_above(10.0);
        let tg_busy = tg.fraction_above(10.0);
        let dc_busy = dc.fraction_above(10.0);
        assert!(tg_busy < wa_busy, "TG {tg_busy} < WA {wa_busy}");
        assert!(tg_busy < dc_busy, "TG {tg_busy} < DC {dc_busy}");
        assert!(tg_busy < 0.45, "TG busy share {tg_busy}");
    }

    #[test]
    fn fig9b_low_volume_majority_and_heavy_tail() {
        let ds = dataset();
        for kind in PlatformKind::ALL {
            let ua = user_activity(ds, kind);
            assert!(ua.senders > 0, "{kind}");
            assert!(
                ua.low_volume_share > 0.5,
                "{kind}: most senders send few messages ({})",
                ua.low_volume_share
            );
            assert!(
                ua.top1_share > 0.05,
                "{kind}: the top 1% carries weight ({})",
                ua.top1_share
            );
        }
        // Telegram/Discord are more concentrated than WhatsApp (60/63% vs
        // 31% in the paper).
        let wa = user_activity(ds, PlatformKind::WhatsApp).top1_share;
        let tg = user_activity(ds, PlatformKind::Telegram).top1_share;
        assert!(tg > wa, "TG {tg} > WA {wa}");
    }

    #[test]
    fn active_member_share_ordering() {
        let ds = dataset();
        let wa = active_member_share(ds, PlatformKind::WhatsApp);
        let tg = active_member_share(ds, PlatformKind::Telegram);
        let dc = active_member_share(ds, PlatformKind::Discord);
        // Paper: 59.4% / 14.6% / 65.8% — Telegram far below the others
        // (channels mute almost everyone).
        assert!(tg < wa && tg < dc, "TG {tg} vs WA {wa}, DC {dc}");
        assert!(tg < 0.45, "TG active share {tg}");
    }

    #[test]
    fn parallel_fanout_matches_serial() {
        let ds = dataset();
        for threads in [1, 2, 8] {
            let pool = Pool::new(threads);
            let kinds = kind_shares_all(ds, &pool);
            let volumes = msgs_per_group_day_all(ds, &pool);
            let activity = user_activity_all(ds, &pool);
            for (i, kind) in PlatformKind::ALL.into_iter().enumerate() {
                assert_eq!(kinds[i], kind_shares(ds, kind), "{kind}");
                assert_eq!(volumes[i], msgs_per_group_day(ds, kind), "{kind}");
                assert_eq!(activity[i], user_activity(ds, kind), "{kind}");
            }
        }
    }
}
