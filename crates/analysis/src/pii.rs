//! PII exposure: Table 4 (per-platform exposure) and Table 5 (Discord
//! connected accounts).

use chatlens_checkpoint::{persist_struct, CheckpointError, Persist, Reader, Writer};
use chatlens_core::pii::PiiStore;
use chatlens_core::{Dataset, DayFold, DaySlice};
use chatlens_platforms::id::PlatformKind;
use chatlens_simnet::par::Pool;
use std::fmt::Write as _;

/// One row of Table 4.
#[derive(Debug, Clone, PartialEq)]
pub struct ExposureRow {
    /// Platform.
    pub platform: PlatformKind,
    /// Users whose information the collector observed.
    pub users_observed: u64,
    /// Distinct phone numbers (hashes) exposed, if the platform exposes
    /// any.
    pub phones: Option<u64>,
    /// Phones as a share of observed users.
    pub phone_rate: Option<f64>,
    /// Users with at least one linked social account (Discord only).
    pub linked_users: Option<u64>,
    /// Linked users as a share of observed users.
    pub link_rate: Option<f64>,
}

/// One row of Table 4 for a single platform.
pub fn exposure_row(ds: &Dataset, kind: PlatformKind) -> ExposureRow {
    exposure_from(&ds.pii, kind)
}

/// Table 4 row from the raw PII store; shared by the batch path and
/// [`PiiFold`]'s final-day capture.
pub(crate) fn exposure_from(pii: &PiiStore, kind: PlatformKind) -> ExposureRow {
    match kind {
        // WhatsApp: every member of joined groups plus every creator of an
        // accessible group exposes a phone number (100% by construction of
        // the platform — the paper's headline).
        PlatformKind::WhatsApp => {
            let wa_members: u64 = pii.wa_member_hashes.len() as u64;
            let wa_creators: u64 = pii.wa_creator_hashes.len() as u64;
            ExposureRow {
                platform: PlatformKind::WhatsApp,
                users_observed: wa_members + wa_creators,
                phones: Some(pii.wa_total_phones() as u64),
                phone_rate: Some(1.0),
                linked_users: None,
                link_rate: None,
            }
        }
        PlatformKind::Telegram => ExposureRow {
            platform: PlatformKind::Telegram,
            users_observed: pii.tg_users_observed.len() as u64,
            phones: Some(pii.tg_phone_hashes.len() as u64),
            phone_rate: Some(pii.tg_phone_rate()),
            linked_users: None,
            link_rate: None,
        },
        PlatformKind::Discord => ExposureRow {
            platform: PlatformKind::Discord,
            users_observed: pii.dc_users_observed.len() as u64,
            phones: None,
            phone_rate: None,
            linked_users: Some(pii.dc_users_with_link.len() as u64),
            link_rate: Some(pii.dc_link_rate()),
        },
    }
}

/// Compute Table 4.
pub fn exposure_table(ds: &Dataset) -> [ExposureRow; 3] {
    PlatformKind::ALL.map(|kind| exposure_row(ds, kind))
}

/// Compute Table 4 with rows fanned out across the pool; identical to
/// [`exposure_table`] at any thread count.
pub fn exposure_table_par(ds: &Dataset, pool: &chatlens_simnet::par::Pool) -> [ExposureRow; 3] {
    crate::fanout::per_platform(pool, |kind| exposure_row(ds, kind))
}

/// Table 5: Discord users per linked platform, descending, with shares of
/// observed users.
pub fn linked_accounts_table(ds: &Dataset) -> Vec<(String, u64, f64)> {
    linked_from(&ds.pii)
}

/// Table 5 rows from the raw PII store; shared by the batch path and
/// [`PiiFold`]'s final-day capture.
pub(crate) fn linked_from(pii: &PiiStore) -> Vec<(String, u64, f64)> {
    let observed = pii.dc_users_observed.len().max(1) as f64;
    let mut rows: Vec<(String, u64, f64)> = pii
        .dc_linked_counts
        .iter()
        .map(|(label, &n)| (label.clone(), n, n as f64 / observed))
        .collect();
    rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    rows
}

fn render(out: &mut String, rows: &[ExposureRow; 3], linked: &[(String, u64, f64)]) {
    for row in rows {
        writeln!(
            out,
            "{}: users={} phones={:?} phone_rate={:?} linked_users={:?} link_rate={:?}",
            row.platform.name(),
            row.users_observed,
            row.phones,
            row.phone_rate,
            row.linked_users,
            row.link_rate
        )
        .unwrap();
    }
    writeln!(out, "linked_accounts: {linked:?}").unwrap();
}

/// The batch PII fragment: Tables 4 and 5 rendered canonically from the
/// final dataset. [`PiiFold`] reproduces these bytes incrementally.
pub fn fragment(ds: &Dataset, pool: &Pool) -> String {
    let mut out = String::from("pii v1\n");
    render(
        &mut out,
        &exposure_table_par(ds, pool),
        &linked_accounts_table(ds),
    );
    out
}

/// One platform's folded Table 4 fields ([`ExposureRow`] minus the
/// platform tag, which the row's position carries).
#[derive(Debug, Clone, Default, PartialEq)]
struct FoldRow {
    /// Users whose information the collector observed.
    users_observed: u64,
    /// Distinct phone hashes exposed, where applicable.
    phones: Option<u64>,
    /// Phones as a share of observed users.
    phone_rate: Option<f64>,
    /// Users with at least one linked account (Discord only).
    linked_users: Option<u64>,
    /// Linked users as a share of observed users.
    link_rate: Option<f64>,
}

persist_struct!(FoldRow {
    users_observed,
    phones,
    phone_rate,
    linked_users,
    link_rate
});

/// Incremental twin of [`fragment`].
///
/// The PII store only grows (hash sets and tallies), so the compact
/// Table 4/5 summaries are captured once, on the final day, after the
/// collection event has filed the last joined group's member list —
/// exactly the store the batch path reads.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PiiFold {
    rows: [FoldRow; 3],
    linked: Vec<(String, u64, f64)>,
}

impl PiiFold {
    /// An empty fold.
    pub fn new() -> PiiFold {
        PiiFold::default()
    }
}

impl DayFold for PiiFold {
    fn name(&self) -> &'static str {
        "pii"
    }

    fn fold_day(&mut self, slice: &DaySlice<'_>) {
        if !slice.is_final() {
            return;
        }
        self.rows = PlatformKind::ALL.map(|kind| {
            let row = exposure_from(slice.pii, kind);
            FoldRow {
                users_observed: row.users_observed,
                phones: row.phones,
                phone_rate: row.phone_rate,
                linked_users: row.linked_users,
                link_rate: row.link_rate,
            }
        });
        self.linked = linked_from(slice.pii);
    }

    fn finish(&self, _pool: &Pool) -> String {
        let mut i = 0usize;
        let rows = PlatformKind::ALL.map(|kind| {
            let r = &self.rows[i];
            i += 1;
            ExposureRow {
                platform: kind,
                users_observed: r.users_observed,
                phones: r.phones,
                phone_rate: r.phone_rate,
                linked_users: r.linked_users,
                link_rate: r.link_rate,
            }
        });
        let mut out = String::from("pii v1\n");
        render(&mut out, &rows, &self.linked);
        out
    }

    fn save_state(&self, w: &mut Writer) {
        self.rows.save(w);
        self.linked.save(w);
    }

    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), CheckpointError> {
        self.rows = Persist::load(r)?;
        self.linked = Persist::load(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chatlens_core::run_study;
    use chatlens_workload::ScenarioConfig;
    use std::sync::OnceLock;

    fn dataset() -> &'static Dataset {
        static DS: OnceLock<Dataset> = OnceLock::new();
        DS.get_or_init(|| run_study(ScenarioConfig::tiny()))
    }

    #[test]
    fn table4_whatsapp_exposes_everyone() {
        let [wa, _, _] = exposure_table(dataset());
        assert!(wa.users_observed > 0);
        assert_eq!(wa.phone_rate, Some(1.0));
        assert!(wa.phones.unwrap() > 0);
        // Creators alone (no joining needed) are already a large share.
        assert!(dataset().pii.wa_creator_hashes.len() > 100);
    }

    #[test]
    fn table4_telegram_phone_rate_tiny() {
        let [_, tg, _] = exposure_table(dataset());
        assert!(tg.users_observed > 0);
        let rate = tg.phone_rate.unwrap();
        assert!(rate < 0.05, "TG phone rate {rate} (paper: 0.68%)");
    }

    #[test]
    fn table4_discord_no_phones_but_links() {
        let [_, _, dc] = exposure_table(dataset());
        assert_eq!(dc.phones, None, "Discord has no phone numbers");
        assert!(dc.users_observed > 0);
        let rate = dc.link_rate.unwrap();
        assert!((rate - 0.30).abs() < 0.12, "DC link rate {rate}");
    }

    #[test]
    fn table5_twitch_leads() {
        let rows = linked_accounts_table(dataset());
        assert!(!rows.is_empty());
        assert_eq!(rows[0].0, "Twitch", "rows: {rows:?}");
        // Shares are monotone by construction of the sort.
        for w in rows.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        // Facebook/Skype are near the bottom when present.
        if let Some(fb) = rows.iter().find(|r| r.0 == "Facebook") {
            assert!(fb.2 < 0.05, "Facebook share {}", fb.2);
        }
    }

    #[test]
    fn parallel_table4_matches_serial() {
        let serial = exposure_table(dataset());
        for threads in [1, 2, 8] {
            let pool = chatlens_simnet::par::Pool::new(threads);
            assert_eq!(exposure_table_par(dataset(), &pool), serial);
        }
    }

    #[test]
    fn hashes_not_numbers_in_store() {
        let ds = dataset();
        for h in ds.pii.wa_creator_hashes.iter().take(50) {
            assert_eq!(h.len(), 64);
            assert!(h.chars().all(|c| c.is_ascii_hexdigit()));
            assert!(!h.starts_with('+'));
        }
    }
}
