//! PII exposure: Table 4 (per-platform exposure) and Table 5 (Discord
//! connected accounts).

use chatlens_core::Dataset;
use chatlens_platforms::id::PlatformKind;

/// One row of Table 4.
#[derive(Debug, Clone, PartialEq)]
pub struct ExposureRow {
    /// Platform.
    pub platform: PlatformKind,
    /// Users whose information the collector observed.
    pub users_observed: u64,
    /// Distinct phone numbers (hashes) exposed, if the platform exposes
    /// any.
    pub phones: Option<u64>,
    /// Phones as a share of observed users.
    pub phone_rate: Option<f64>,
    /// Users with at least one linked social account (Discord only).
    pub linked_users: Option<u64>,
    /// Linked users as a share of observed users.
    pub link_rate: Option<f64>,
}

/// One row of Table 4 for a single platform.
pub fn exposure_row(ds: &Dataset, kind: PlatformKind) -> ExposureRow {
    match kind {
        // WhatsApp: every member of joined groups plus every creator of an
        // accessible group exposes a phone number (100% by construction of
        // the platform — the paper's headline).
        PlatformKind::WhatsApp => {
            let wa_members: u64 = ds.pii.wa_member_hashes.len() as u64;
            let wa_creators: u64 = ds.pii.wa_creator_hashes.len() as u64;
            ExposureRow {
                platform: PlatformKind::WhatsApp,
                users_observed: wa_members + wa_creators,
                phones: Some(ds.pii.wa_total_phones() as u64),
                phone_rate: Some(1.0),
                linked_users: None,
                link_rate: None,
            }
        }
        PlatformKind::Telegram => ExposureRow {
            platform: PlatformKind::Telegram,
            users_observed: ds.pii.tg_users_observed.len() as u64,
            phones: Some(ds.pii.tg_phone_hashes.len() as u64),
            phone_rate: Some(ds.pii.tg_phone_rate()),
            linked_users: None,
            link_rate: None,
        },
        PlatformKind::Discord => ExposureRow {
            platform: PlatformKind::Discord,
            users_observed: ds.pii.dc_users_observed.len() as u64,
            phones: None,
            phone_rate: None,
            linked_users: Some(ds.pii.dc_users_with_link.len() as u64),
            link_rate: Some(ds.pii.dc_link_rate()),
        },
    }
}

/// Compute Table 4.
pub fn exposure_table(ds: &Dataset) -> [ExposureRow; 3] {
    PlatformKind::ALL.map(|kind| exposure_row(ds, kind))
}

/// Compute Table 4 with rows fanned out across the pool; identical to
/// [`exposure_table`] at any thread count.
pub fn exposure_table_par(ds: &Dataset, pool: &chatlens_simnet::par::Pool) -> [ExposureRow; 3] {
    crate::fanout::per_platform(pool, |kind| exposure_row(ds, kind))
}

/// Table 5: Discord users per linked platform, descending, with shares of
/// observed users.
pub fn linked_accounts_table(ds: &Dataset) -> Vec<(String, u64, f64)> {
    let observed = ds.pii.dc_users_observed.len().max(1) as f64;
    let mut rows: Vec<(String, u64, f64)> = ds
        .pii
        .dc_linked_counts
        .iter()
        .map(|(label, &n)| (label.clone(), n, n as f64 / observed))
        .collect();
    rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use chatlens_core::run_study;
    use chatlens_workload::ScenarioConfig;
    use std::sync::OnceLock;

    fn dataset() -> &'static Dataset {
        static DS: OnceLock<Dataset> = OnceLock::new();
        DS.get_or_init(|| run_study(ScenarioConfig::tiny()))
    }

    #[test]
    fn table4_whatsapp_exposes_everyone() {
        let [wa, _, _] = exposure_table(dataset());
        assert!(wa.users_observed > 0);
        assert_eq!(wa.phone_rate, Some(1.0));
        assert!(wa.phones.unwrap() > 0);
        // Creators alone (no joining needed) are already a large share.
        assert!(dataset().pii.wa_creator_hashes.len() > 100);
    }

    #[test]
    fn table4_telegram_phone_rate_tiny() {
        let [_, tg, _] = exposure_table(dataset());
        assert!(tg.users_observed > 0);
        let rate = tg.phone_rate.unwrap();
        assert!(rate < 0.05, "TG phone rate {rate} (paper: 0.68%)");
    }

    #[test]
    fn table4_discord_no_phones_but_links() {
        let [_, _, dc] = exposure_table(dataset());
        assert_eq!(dc.phones, None, "Discord has no phone numbers");
        assert!(dc.users_observed > 0);
        let rate = dc.link_rate.unwrap();
        assert!((rate - 0.30).abs() < 0.12, "DC link rate {rate}");
    }

    #[test]
    fn table5_twitch_leads() {
        let rows = linked_accounts_table(dataset());
        assert!(!rows.is_empty());
        assert_eq!(rows[0].0, "Twitch", "rows: {rows:?}");
        // Shares are monotone by construction of the sort.
        for w in rows.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        // Facebook/Skype are near the bottom when present.
        if let Some(fb) = rows.iter().find(|r| r.0 == "Facebook") {
            assert!(fb.2 < 0.05, "Facebook share {}", fb.2);
        }
    }

    #[test]
    fn parallel_table4_matches_serial() {
        let serial = exposure_table(dataset());
        for threads in [1, 2, 8] {
            let pool = chatlens_simnet::par::Pool::new(threads);
            assert_eq!(exposure_table_par(dataset(), &pool), serial);
        }
    }

    #[test]
    fn hashes_not_numbers_in_store() {
        let ds = dataset();
        for h in ds.pii.wa_creator_hashes.iter().take(50) {
            assert_eq!(h.len(), 64);
            assert!(h.chars().all(|c| c.is_ascii_hexdigit()));
            assert!(!h.starts_with('+'));
        }
    }
}
