//! Group-sharing dynamics: Fig 1 (URLs discovered per day) and Fig 2
//! (tweets per group URL).

use crate::fanout::per_platform;
use crate::pipeline::ecdf_stats;
use crate::stats::Ecdf;
use chatlens_checkpoint::{CheckpointError, Persist, Reader, Writer};
use chatlens_core::{Dataset, DayFold, DaySlice};
use chatlens_platforms::id::PlatformKind;
use chatlens_platforms::invite::parse_invite_url;
use chatlens_simnet::par::Pool;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// Fig 1 for one platform: per study-day URL counts.
#[derive(Debug, Clone, PartialEq)]
pub struct DailyDiscovery {
    /// Panel (a): every URL occurrence collected that day (duplicates
    /// included — each tweet's each invite URL counts).
    pub all: Vec<u64>,
    /// Panel (b): distinct URLs seen that day.
    pub unique: Vec<u64>,
    /// Panel (c): URLs never seen on any earlier day.
    pub new: Vec<u64>,
}

impl DailyDiscovery {
    /// Median across days of one panel.
    fn median(series: &[u64]) -> f64 {
        Ecdf::from_ints(series.iter().copied())
            .median()
            .unwrap_or(0.0)
    }

    /// Median of panel (a).
    pub fn median_all(&self) -> f64 {
        Self::median(&self.all)
    }

    /// Median of panel (b).
    pub fn median_unique(&self) -> f64 {
        Self::median(&self.unique)
    }

    /// Median of panel (c).
    pub fn median_new(&self) -> f64 {
        Self::median(&self.new)
    }
}

/// Compute Fig 1's three panels for `kind`. Days are indexed by the
/// *collection* day (`seen_at`), so the day-0 spike from the Search API's
/// 7-day backlog shows up exactly as in the paper.
pub fn daily_discovery(ds: &Dataset, kind: PlatformKind) -> DailyDiscovery {
    let days = ds.window.num_days() as usize;
    let mut all = vec![0u64; days];
    // BTreeSets so the day-order "new" sweep below visits keys in a
    // dataset-determined order, never hasher order (lint rule D2).
    let mut unique_sets: Vec<BTreeSet<String>> = vec![BTreeSet::new(); days];
    let mut ever_seen: BTreeSet<String> = BTreeSet::new();
    let mut new = vec![0u64; days];
    for ct in &ds.tweets {
        let Some(day) = ds.window.day_index(ct.seen_at) else {
            continue;
        };
        let day = day as usize;
        for url in &ct.tweet.urls {
            let Some(invite) = parse_invite_url(url) else {
                continue;
            };
            if invite.platform() != kind {
                continue;
            }
            let key = invite.dedup_key();
            all[day] += 1;
            unique_sets[day].insert(key);
        }
    }
    // "New" needs day order, not tweet order.
    for (day, set) in unique_sets.iter().enumerate() {
        for key in set {
            if ever_seen.insert(key.clone()) {
                new[day] += 1;
            }
        }
    }
    DailyDiscovery {
        all,
        unique: unique_sets.iter().map(|s| s.len() as u64).collect(),
        new,
    }
}

/// Fig 2: the distribution of tweets per group URL for one platform.
pub fn tweets_per_url(ds: &Dataset, kind: PlatformKind) -> Ecdf {
    let mut counts: BTreeMap<String, u64> = BTreeMap::new();
    for ct in &ds.tweets {
        // Count each URL once per tweet even if repeated in the text.
        let mut seen_in_tweet: BTreeSet<String> = BTreeSet::new();
        for url in &ct.tweet.urls {
            if let Some(invite) = parse_invite_url(url) {
                if invite.platform() == kind {
                    seen_in_tweet.insert(invite.dedup_key());
                }
            }
        }
        for key in seen_in_tweet {
            *counts.entry(key).or_insert(0) += 1;
        }
    }
    Ecdf::from_ints(counts.into_values())
}

/// Fraction of `kind`'s URLs shared exactly once (the headline of Fig 2).
pub fn share_once_fraction(ds: &Dataset, kind: PlatformKind) -> f64 {
    let e = tweets_per_url(ds, kind);
    e.fraction_at_most(1.0)
}

/// Fig 1 for all three platforms, fanned out across the pool; element `i`
/// equals `daily_discovery(ds, PlatformKind::ALL[i])` at any thread count.
pub fn daily_discovery_all(ds: &Dataset, pool: &Pool) -> [DailyDiscovery; 3] {
    per_platform(pool, |kind| daily_discovery(ds, kind))
}

/// Fig 2 for all three platforms, fanned out across the pool.
pub fn tweets_per_url_all(ds: &Dataset, pool: &Pool) -> [Ecdf; 3] {
    per_platform(pool, |kind| tweets_per_url(ds, kind))
}

/// Tweets carrying invites of more than one platform — the reason
/// Table 2's per-platform rows sum to more than its printed total.
pub fn cross_platform_tweets(ds: &Dataset) -> u64 {
    ds.tweets
        .iter()
        .filter(|ct| {
            let mut seen = [false; 3];
            for url in &ct.tweet.urls {
                if let Some(inv) = parse_invite_url(url) {
                    seen[inv.platform().index()] = true;
                }
            }
            seen.iter().filter(|&&b| b).count() > 1
        })
        .count() as u64
}

/// One platform's section of the discovery report fragment.
fn render_platform(out: &mut String, kind: PlatformKind, daily: &DailyDiscovery, per_url: &Ecdf) {
    let name = kind.name();
    writeln!(out, "{name}.daily_all: {:?}", daily.all).unwrap();
    writeln!(out, "{name}.daily_unique: {:?}", daily.unique).unwrap();
    writeln!(out, "{name}.daily_new: {:?}", daily.new).unwrap();
    writeln!(out, "{name}.median_all: {:?}", daily.median_all()).unwrap();
    writeln!(out, "{name}.median_unique: {:?}", daily.median_unique()).unwrap();
    writeln!(out, "{name}.median_new: {:?}", daily.median_new()).unwrap();
    writeln!(out, "{name}.tweets_per_url: {}", ecdf_stats(per_url)).unwrap();
    writeln!(
        out,
        "{name}.share_once: {:?}",
        per_url.fraction_at_most(1.0)
    )
    .unwrap();
}

/// The batch discovery fragment: Fig 1 and Fig 2 for every platform plus
/// the cross-platform tweet count, rendered canonically from the final
/// dataset. [`DiscoveryFold`] reproduces these bytes incrementally.
pub fn fragment(ds: &Dataset, pool: &Pool) -> String {
    let daily = daily_discovery_all(ds, pool);
    let per_url = tweets_per_url_all(ds, pool);
    let mut out = String::from("discovery v1\n");
    for (i, kind) in PlatformKind::ALL.into_iter().enumerate() {
        render_platform(&mut out, kind, &daily[i], &per_url[i]);
    }
    writeln!(out, "cross_platform_tweets: {}", cross_platform_tweets(ds)).unwrap();
    out
}

/// One platform's folded discovery state.
#[derive(Debug, Clone, Default)]
struct PlatDiscovery {
    /// Fig 1a: URL occurrences per collection day.
    all: Vec<u64>,
    /// Distinct URLs per collection day (Fig 1b counts, Fig 1c input).
    unique: Vec<BTreeSet<String>>,
    /// Tweets per URL (each URL counted once per tweet), Fig 2.
    counts: BTreeMap<String, u64>,
}

impl PlatDiscovery {
    /// Reconstruct Fig 1's three panels (the "new" panel needs the
    /// day-order sweep, identical to the batch computation's).
    fn daily(&self) -> DailyDiscovery {
        let mut ever_seen: BTreeSet<String> = BTreeSet::new();
        let mut new = vec![0u64; self.unique.len()];
        for (day, set) in self.unique.iter().enumerate() {
            for key in set {
                if ever_seen.insert(key.clone()) {
                    new[day] += 1;
                }
            }
        }
        DailyDiscovery {
            all: self.all.clone(),
            unique: self.unique.iter().map(|s| s.len() as u64).collect(),
            new,
        }
    }
}

/// Incremental twin of [`fragment`]: folds each day's collected tweets
/// into per-day URL tallies, per-URL tweet counts and the cross-platform
/// counter. State grows with the number of *distinct* URLs, not with the
/// tweet volume.
#[derive(Debug, Clone, Default)]
pub struct DiscoveryFold {
    plats: [PlatDiscovery; 3],
    cross: u64,
}

impl DiscoveryFold {
    /// An empty fold.
    pub fn new() -> DiscoveryFold {
        DiscoveryFold::default()
    }
}

impl DayFold for DiscoveryFold {
    fn name(&self) -> &'static str {
        "discovery"
    }

    fn fold_day(&mut self, slice: &DaySlice<'_>) {
        let days = slice.days_total as usize;
        for p in &mut self.plats {
            if p.all.len() < days {
                p.all.resize(days, 0);
                p.unique.resize(days, BTreeSet::new());
            }
        }
        for ct in slice.tweets_today() {
            // Bucketing follows the tweet's collection timestamp, exactly
            // like the batch sweep — not the fold day it arrived in.
            let day = slice.window.day_index(ct.seen_at).map(|d| d as usize);
            let mut in_tweet: [BTreeSet<String>; 3] = Default::default();
            for url in &ct.tweet.urls {
                let Some(invite) = parse_invite_url(url) else {
                    continue;
                };
                let i = invite.platform().index();
                let key = invite.dedup_key();
                if let Some(day) = day {
                    self.plats[i].all[day] += 1;
                    self.plats[i].unique[day].insert(key.clone());
                }
                in_tweet[i].insert(key);
            }
            if in_tweet.iter().filter(|s| !s.is_empty()).count() > 1 {
                self.cross += 1;
            }
            for (i, set) in in_tweet.into_iter().enumerate() {
                for key in set {
                    *self.plats[i].counts.entry(key).or_insert(0) += 1;
                }
            }
        }
    }

    fn finish(&self, pool: &Pool) -> String {
        let sections = per_platform(pool, |kind| {
            let p = &self.plats[kind.index()];
            let daily = p.daily();
            let per_url = Ecdf::from_ints(p.counts.values().copied());
            let mut out = String::new();
            render_platform(&mut out, kind, &daily, &per_url);
            out
        });
        let mut out = String::from("discovery v1\n");
        for s in sections {
            out.push_str(&s);
        }
        writeln!(out, "cross_platform_tweets: {}", self.cross).unwrap();
        out
    }

    fn save_state(&self, w: &mut Writer) {
        for p in &self.plats {
            p.all.save(w);
            let unique: Vec<Vec<String>> = p
                .unique
                .iter()
                .map(|s| s.iter().cloned().collect())
                .collect();
            unique.save(w);
            p.counts.save(w);
        }
        self.cross.save(w);
    }

    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), CheckpointError> {
        for p in &mut self.plats {
            p.all = Persist::load(r)?;
            let unique: Vec<Vec<String>> = Persist::load(r)?;
            p.unique = unique
                .into_iter()
                .map(|v| v.into_iter().collect())
                .collect();
            p.counts = Persist::load(r)?;
        }
        self.cross = Persist::load(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chatlens_core::run_study;
    use chatlens_workload::ScenarioConfig;
    use std::sync::OnceLock;

    fn dataset() -> &'static Dataset {
        static DS: OnceLock<Dataset> = OnceLock::new();
        DS.get_or_init(|| run_study(ScenarioConfig::tiny()))
    }

    #[test]
    fn day_zero_backlog_spike() {
        for kind in PlatformKind::ALL {
            let d = daily_discovery(dataset(), kind);
            assert_eq!(d.all.len(), 38);
            let later_max = d.new[3..].iter().copied().max().unwrap_or(0);
            assert!(
                d.new[0] > later_max,
                "{kind}: day-0 new {} should beat later days' {later_max}",
                d.new[0]
            );
        }
    }

    #[test]
    fn panels_are_consistent() {
        for kind in PlatformKind::ALL {
            let d = daily_discovery(dataset(), kind);
            for day in 0..38 {
                assert!(d.unique[day] <= d.all[day], "{kind} day {day}");
                assert!(d.new[day] <= d.unique[day], "{kind} day {day}");
            }
            // Sum of "new" equals total distinct discovered via tweets.
            let total_new: u64 = d.new.iter().sum();
            let urls = dataset().summary(kind).group_urls;
            assert!(
                total_new <= urls,
                "{kind}: new {total_new} > discovered {urls}"
            );
            assert!(
                total_new * 10 >= urls * 9,
                "{kind}: new {total_new} far below discovered {urls}"
            );
        }
    }

    #[test]
    fn telegram_urls_shared_most() {
        // Fig 1a/2: Telegram URLs are shared in the most tweets per URL.
        let ds = dataset();
        let tg = tweets_per_url(ds, PlatformKind::Telegram).mean().unwrap();
        let wa = tweets_per_url(ds, PlatformKind::WhatsApp).mean().unwrap();
        let dc = tweets_per_url(ds, PlatformKind::Discord).mean().unwrap();
        assert!(tg > wa, "TG {tg:.1} vs WA {wa:.1}");
        assert!(tg > dc, "TG {tg:.1} vs DC {dc:.1}");
    }

    #[test]
    fn cross_platform_tweets_exist_but_rare() {
        let ds = dataset();
        let cross = cross_platform_tweets(ds);
        assert!(cross > 0, "some tweets advertise two platforms");
        let rate = cross as f64 / ds.tweets.len() as f64;
        assert!(rate < 0.02, "cross-platform rate {rate}");
        // These tweets are exactly why per-platform rows overcount the
        // distinct total, as in the paper's Table 2.
        let row_sum: u64 = PlatformKind::ALL
            .iter()
            .map(|&k| ds.summary(k).tweets)
            .sum();
        assert!(row_sum > ds.tweets.len() as u64);
        assert_eq!(row_sum - ds.tweets.len() as u64, cross);
    }

    #[test]
    fn share_once_fractions_match_fig2() {
        let ds = dataset();
        let wa = share_once_fraction(ds, PlatformKind::WhatsApp);
        let tg = share_once_fraction(ds, PlatformKind::Telegram);
        let dc = share_once_fraction(ds, PlatformKind::Discord);
        assert!((wa - 0.50).abs() < 0.08, "WA {wa}");
        assert!((tg - 0.50).abs() < 0.08, "TG {tg}");
        assert!((dc - 0.62).abs() < 0.08, "DC {dc}");
        assert!(dc > wa && dc > tg, "Discord has the most share-once URLs");
    }

    #[test]
    fn parallel_fanout_matches_serial() {
        let ds = dataset();
        for threads in [1, 2, 8] {
            let pool = chatlens_simnet::par::Pool::new(threads);
            let daily = daily_discovery_all(ds, &pool);
            let per_url = tweets_per_url_all(ds, &pool);
            for (i, kind) in PlatformKind::ALL.into_iter().enumerate() {
                assert_eq!(daily[i], daily_discovery(ds, kind), "{kind}");
                assert_eq!(per_url[i], tweets_per_url(ds, kind), "{kind}");
            }
        }
    }
}
