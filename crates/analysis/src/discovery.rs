//! Group-sharing dynamics: Fig 1 (URLs discovered per day) and Fig 2
//! (tweets per group URL).

use crate::fanout::per_platform;
use crate::stats::Ecdf;
use chatlens_core::Dataset;
use chatlens_platforms::id::PlatformKind;
use chatlens_platforms::invite::parse_invite_url;
use chatlens_simnet::par::Pool;
use std::collections::{BTreeMap, BTreeSet};

/// Fig 1 for one platform: per study-day URL counts.
#[derive(Debug, Clone, PartialEq)]
pub struct DailyDiscovery {
    /// Panel (a): every URL occurrence collected that day (duplicates
    /// included — each tweet's each invite URL counts).
    pub all: Vec<u64>,
    /// Panel (b): distinct URLs seen that day.
    pub unique: Vec<u64>,
    /// Panel (c): URLs never seen on any earlier day.
    pub new: Vec<u64>,
}

impl DailyDiscovery {
    /// Median across days of one panel.
    fn median(series: &[u64]) -> f64 {
        Ecdf::from_ints(series.iter().copied())
            .median()
            .unwrap_or(0.0)
    }

    /// Median of panel (a).
    pub fn median_all(&self) -> f64 {
        Self::median(&self.all)
    }

    /// Median of panel (b).
    pub fn median_unique(&self) -> f64 {
        Self::median(&self.unique)
    }

    /// Median of panel (c).
    pub fn median_new(&self) -> f64 {
        Self::median(&self.new)
    }
}

/// Compute Fig 1's three panels for `kind`. Days are indexed by the
/// *collection* day (`seen_at`), so the day-0 spike from the Search API's
/// 7-day backlog shows up exactly as in the paper.
pub fn daily_discovery(ds: &Dataset, kind: PlatformKind) -> DailyDiscovery {
    let days = ds.window.num_days() as usize;
    let mut all = vec![0u64; days];
    // BTreeSets so the day-order "new" sweep below visits keys in a
    // dataset-determined order, never hasher order (lint rule D2).
    let mut unique_sets: Vec<BTreeSet<String>> = vec![BTreeSet::new(); days];
    let mut ever_seen: BTreeSet<String> = BTreeSet::new();
    let mut new = vec![0u64; days];
    for ct in &ds.tweets {
        let Some(day) = ds.window.day_index(ct.seen_at) else {
            continue;
        };
        let day = day as usize;
        for url in &ct.tweet.urls {
            let Some(invite) = parse_invite_url(url) else {
                continue;
            };
            if invite.platform() != kind {
                continue;
            }
            let key = invite.dedup_key();
            all[day] += 1;
            unique_sets[day].insert(key);
        }
    }
    // "New" needs day order, not tweet order.
    for (day, set) in unique_sets.iter().enumerate() {
        for key in set {
            if ever_seen.insert(key.clone()) {
                new[day] += 1;
            }
        }
    }
    DailyDiscovery {
        all,
        unique: unique_sets.iter().map(|s| s.len() as u64).collect(),
        new,
    }
}

/// Fig 2: the distribution of tweets per group URL for one platform.
pub fn tweets_per_url(ds: &Dataset, kind: PlatformKind) -> Ecdf {
    let mut counts: BTreeMap<String, u64> = BTreeMap::new();
    for ct in &ds.tweets {
        // Count each URL once per tweet even if repeated in the text.
        let mut seen_in_tweet: BTreeSet<String> = BTreeSet::new();
        for url in &ct.tweet.urls {
            if let Some(invite) = parse_invite_url(url) {
                if invite.platform() == kind {
                    seen_in_tweet.insert(invite.dedup_key());
                }
            }
        }
        for key in seen_in_tweet {
            *counts.entry(key).or_insert(0) += 1;
        }
    }
    Ecdf::from_ints(counts.into_values())
}

/// Fraction of `kind`'s URLs shared exactly once (the headline of Fig 2).
pub fn share_once_fraction(ds: &Dataset, kind: PlatformKind) -> f64 {
    let e = tweets_per_url(ds, kind);
    e.fraction_at_most(1.0)
}

/// Fig 1 for all three platforms, fanned out across the pool; element `i`
/// equals `daily_discovery(ds, PlatformKind::ALL[i])` at any thread count.
pub fn daily_discovery_all(ds: &Dataset, pool: &Pool) -> [DailyDiscovery; 3] {
    per_platform(pool, |kind| daily_discovery(ds, kind))
}

/// Fig 2 for all three platforms, fanned out across the pool.
pub fn tweets_per_url_all(ds: &Dataset, pool: &Pool) -> [Ecdf; 3] {
    per_platform(pool, |kind| tweets_per_url(ds, kind))
}

/// Tweets carrying invites of more than one platform — the reason
/// Table 2's per-platform rows sum to more than its printed total.
pub fn cross_platform_tweets(ds: &Dataset) -> u64 {
    ds.tweets
        .iter()
        .filter(|ct| {
            let mut seen = [false; 3];
            for url in &ct.tweet.urls {
                if let Some(inv) = parse_invite_url(url) {
                    seen[inv.platform().index()] = true;
                }
            }
            seen.iter().filter(|&&b| b).count() > 1
        })
        .count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use chatlens_core::run_study;
    use chatlens_workload::ScenarioConfig;
    use std::sync::OnceLock;

    fn dataset() -> &'static Dataset {
        static DS: OnceLock<Dataset> = OnceLock::new();
        DS.get_or_init(|| run_study(ScenarioConfig::tiny()))
    }

    #[test]
    fn day_zero_backlog_spike() {
        for kind in PlatformKind::ALL {
            let d = daily_discovery(dataset(), kind);
            assert_eq!(d.all.len(), 38);
            let later_max = d.new[3..].iter().copied().max().unwrap_or(0);
            assert!(
                d.new[0] > later_max,
                "{kind}: day-0 new {} should beat later days' {later_max}",
                d.new[0]
            );
        }
    }

    #[test]
    fn panels_are_consistent() {
        for kind in PlatformKind::ALL {
            let d = daily_discovery(dataset(), kind);
            for day in 0..38 {
                assert!(d.unique[day] <= d.all[day], "{kind} day {day}");
                assert!(d.new[day] <= d.unique[day], "{kind} day {day}");
            }
            // Sum of "new" equals total distinct discovered via tweets.
            let total_new: u64 = d.new.iter().sum();
            let urls = dataset().summary(kind).group_urls;
            assert!(
                total_new <= urls,
                "{kind}: new {total_new} > discovered {urls}"
            );
            assert!(
                total_new * 10 >= urls * 9,
                "{kind}: new {total_new} far below discovered {urls}"
            );
        }
    }

    #[test]
    fn telegram_urls_shared_most() {
        // Fig 1a/2: Telegram URLs are shared in the most tweets per URL.
        let ds = dataset();
        let tg = tweets_per_url(ds, PlatformKind::Telegram).mean().unwrap();
        let wa = tweets_per_url(ds, PlatformKind::WhatsApp).mean().unwrap();
        let dc = tweets_per_url(ds, PlatformKind::Discord).mean().unwrap();
        assert!(tg > wa, "TG {tg:.1} vs WA {wa:.1}");
        assert!(tg > dc, "TG {tg:.1} vs DC {dc:.1}");
    }

    #[test]
    fn cross_platform_tweets_exist_but_rare() {
        let ds = dataset();
        let cross = cross_platform_tweets(ds);
        assert!(cross > 0, "some tweets advertise two platforms");
        let rate = cross as f64 / ds.tweets.len() as f64;
        assert!(rate < 0.02, "cross-platform rate {rate}");
        // These tweets are exactly why per-platform rows overcount the
        // distinct total, as in the paper's Table 2.
        let row_sum: u64 = PlatformKind::ALL
            .iter()
            .map(|&k| ds.summary(k).tweets)
            .sum();
        assert!(row_sum > ds.tweets.len() as u64);
        assert_eq!(row_sum - ds.tweets.len() as u64, cross);
    }

    #[test]
    fn share_once_fractions_match_fig2() {
        let ds = dataset();
        let wa = share_once_fraction(ds, PlatformKind::WhatsApp);
        let tg = share_once_fraction(ds, PlatformKind::Telegram);
        let dc = share_once_fraction(ds, PlatformKind::Discord);
        assert!((wa - 0.50).abs() < 0.08, "WA {wa}");
        assert!((tg - 0.50).abs() < 0.08, "TG {tg}");
        assert!((dc - 0.62).abs() < 0.08, "DC {dc}");
        assert!(dc > wa && dc > tg, "Discord has the most share-once URLs");
    }

    #[test]
    fn parallel_fanout_matches_serial() {
        let ds = dataset();
        for threads in [1, 2, 8] {
            let pool = chatlens_simnet::par::Pool::new(threads);
            let daily = daily_discovery_all(ds, &pool);
            let per_url = tweets_per_url_all(ds, &pool);
            for (i, kind) in PlatformKind::ALL.into_iter().enumerate() {
                assert_eq!(daily[i], daily_discovery(ds, kind), "{kind}");
                assert_eq!(per_url[i], tweets_per_url(ds, kind), "{kind}");
            }
        }
    }
}
