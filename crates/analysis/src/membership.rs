//! Group composition: Fig 7 (member counts, online share, growth) and
//! §5's "Group Creators" analysis.

use crate::fanout::per_platform;
use crate::pipeline::ecdf_stats;
use crate::stats::Ecdf;
use chatlens_checkpoint::{persist_struct, CheckpointError, Persist, Reader, Writer};
use chatlens_core::intern::Interner;
use chatlens_core::joiner::JoinedGroup;
use chatlens_core::monitor::{ObservedStatus, TimelineStore};
use chatlens_core::pii::PiiStore;
use chatlens_core::{discovery::DiscoveryRecord, Dataset, DayFold, DaySlice};
use chatlens_platforms::id::PlatformKind;
use chatlens_simnet::par::Pool;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Fig 7a: member counts at each group's first alive observation.
pub fn member_counts(ds: &Dataset, kind: PlatformKind) -> Ecdf {
    let mut sizes: Vec<f64> = Vec::new();
    for rec in ds.groups.iter().filter(|g| g.platform == kind) {
        if let Some(tl) = ds.timeline_of(rec) {
            if let Some((first, _)) = tl.size_span() {
                sizes.push(f64::from(first));
            }
        }
    }
    Ecdf::new(sizes)
}

/// Fig 7b: online members as a fraction of total, at the first alive
/// observation (only meaningful for Telegram and Discord).
pub fn online_fractions(ds: &Dataset, kind: PlatformKind) -> Ecdf {
    let mut fracs: Vec<f64> = Vec::new();
    for rec in ds.groups.iter().filter(|g| g.platform == kind) {
        let Some(tl) = ds.timeline_of(rec) else {
            continue;
        };
        for o in tl.iter() {
            if let ObservedStatus::Alive { size, online } = o.status {
                if size > 0 {
                    fracs.push(f64::from(online) / f64::from(size));
                }
                break;
            }
        }
    }
    Ecdf::new(fracs)
}

/// Fig 7c roll-up: growth between first and last observation.
#[derive(Debug, Clone, PartialEq)]
pub struct GrowthStats {
    /// Signed member-count deltas (last − first observation).
    pub deltas: Ecdf,
    /// Share of groups that grew.
    pub grew: f64,
    /// Share that shrank.
    pub shrank: f64,
    /// Share that ended exactly where they started.
    pub flat: f64,
}

/// Compute Fig 7c for one platform. Growth is only measurable for groups
/// with at least two alive observations (a single snapshot has no "first
/// and last day" to difference).
pub fn growth(ds: &Dataset, kind: PlatformKind) -> GrowthStats {
    let mut deltas: Vec<f64> = Vec::new();
    let (mut grew, mut shrank, mut flat) = (0u64, 0u64, 0u64);
    for rec in ds.groups.iter().filter(|g| g.platform == kind) {
        let Some(tl) = ds.timeline_of(rec) else {
            continue;
        };
        if tl.alive_days() < 2 {
            continue;
        }
        let Some((first, last)) = tl.size_span() else {
            continue;
        };
        let delta = f64::from(last) - f64::from(first);
        deltas.push(delta);
        if last > first {
            grew += 1;
        } else if last < first {
            shrank += 1;
        } else {
            flat += 1;
        }
    }
    let n = (grew + shrank + flat).max(1) as f64;
    GrowthStats {
        deltas: Ecdf::new(deltas),
        grew: grew as f64 / n,
        shrank: shrank as f64 / n,
        flat: flat as f64 / n,
    }
}

/// §5 "Group Creators" roll-up.
#[derive(Debug, Clone, PartialEq)]
pub struct CreatorStats {
    /// Distinct creators identified.
    pub creators: u64,
    /// Groups attributable to a creator.
    pub groups: u64,
    /// Share of creators with exactly one group.
    pub single_group_share: f64,
    /// The largest number of groups by one creator.
    pub max_groups: u64,
}

/// Creator statistics for one platform. WhatsApp creators are identified
/// by the landing page's (hashed) phone; Discord creators by the invite
/// API's creator id; Telegram creators are only known for joined groups
/// (each had a distinct creator in the paper — and here, by
/// construction of the generator).
pub fn creators(ds: &Dataset, kind: PlatformKind) -> CreatorStats {
    creators_from(&ds.groups, &ds.interner, &ds.timelines, &ds.joined, kind)
}

/// [`creators`] over the raw collections — the shared core the batch
/// path and [`MembershipFold`]'s final-day capture both call, so the two
/// report paths share every creator aggregate and division.
pub(crate) fn creators_from(
    groups: &[DiscoveryRecord],
    interner: &Interner,
    timelines: &TimelineStore,
    joined: &[JoinedGroup],
    kind: PlatformKind,
) -> CreatorStats {
    let timeline_of = |rec: &DiscoveryRecord| {
        interner
            .get(&rec.invite.dedup_key())
            .and_then(|s| timelines.get(s.index()))
    };
    // BTreeMap so the creator aggregates iterate in key order — a pure
    // function of the dataset, never of hasher state (lint rule D2).
    let mut per_creator: BTreeMap<String, u64> = BTreeMap::new();
    match kind {
        PlatformKind::WhatsApp => {
            for rec in groups.iter().filter(|g| g.platform == kind) {
                if let Some(h) = timeline_of(rec).and_then(|t| t.wa_creator_hash.as_ref()) {
                    *per_creator.entry(h.clone()).or_insert(0) += 1;
                }
            }
        }
        PlatformKind::Discord => {
            for rec in groups.iter().filter(|g| g.platform == kind) {
                if let Some(c) = timeline_of(rec).and_then(|t| t.dc_creator) {
                    *per_creator.entry(c.to_string()).or_insert(0) += 1;
                }
            }
        }
        PlatformKind::Telegram => {
            // Creator identity is only visible for joined groups; the API
            // exposes no cross-group creator handle beyond that, so each
            // joined group contributes one creator (as in §5).
            for (i, _) in joined.iter().filter(|j| j.platform == kind).enumerate() {
                per_creator.insert(format!("joined-{i}"), 1);
            }
        }
    }
    let creators = per_creator.len() as u64;
    let groups: u64 = per_creator.values().sum();
    let single = per_creator.values().filter(|&&c| c == 1).count() as u64;
    CreatorStats {
        creators,
        groups,
        single_group_share: single as f64 / creators.max(1) as f64,
        max_groups: per_creator.values().copied().max().unwrap_or(0),
    }
}

/// §5 "Group Countries": WhatsApp creator country counts, descending.
pub fn whatsapp_countries(ds: &Dataset) -> Vec<(String, u64)> {
    countries_from(&ds.pii)
}

/// [`whatsapp_countries`] over the raw PII store (shared with
/// [`MembershipFold`]'s final-day capture).
pub(crate) fn countries_from(pii: &PiiStore) -> Vec<(String, u64)> {
    let mut v: Vec<(String, u64)> = pii
        .wa_creator_countries
        .iter()
        .map(|(k, &n)| (k.clone(), n))
        .collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    v
}

/// Fig 7a for all three platforms, fanned out across the pool; element
/// `i` equals `member_counts(ds, PlatformKind::ALL[i])` at any thread
/// count.
pub fn member_counts_all(ds: &Dataset, pool: &Pool) -> [Ecdf; 3] {
    per_platform(pool, |kind| member_counts(ds, kind))
}

/// Fig 7b for all three platforms, fanned out across the pool.
pub fn online_fractions_all(ds: &Dataset, pool: &Pool) -> [Ecdf; 3] {
    per_platform(pool, |kind| online_fractions(ds, kind))
}

/// Fig 7c for all three platforms, fanned out across the pool.
pub fn growth_all(ds: &Dataset, pool: &Pool) -> [GrowthStats; 3] {
    per_platform(pool, |kind| growth(ds, kind))
}

persist_struct!(CreatorStats {
    creators,
    groups,
    single_group_share,
    max_groups
});

fn render_platform(
    out: &mut String,
    kind: PlatformKind,
    counts: &Ecdf,
    online: &Ecdf,
    growth: &GrowthStats,
    creators: &CreatorStats,
) {
    let name = kind.name();
    writeln!(out, "{name}.member_counts: {}", ecdf_stats(counts)).unwrap();
    writeln!(out, "{name}.online_fractions: {}", ecdf_stats(online)).unwrap();
    writeln!(out, "{name}.growth_deltas: {}", ecdf_stats(&growth.deltas)).unwrap();
    writeln!(
        out,
        "{name}.growth: grew={:?} shrank={:?} flat={:?}",
        growth.grew, growth.shrank, growth.flat
    )
    .unwrap();
    writeln!(
        out,
        "{name}.creators: creators={} groups={} single_group_share={:?} max_groups={}",
        creators.creators, creators.groups, creators.single_group_share, creators.max_groups
    )
    .unwrap();
}

/// The batch membership fragment: Fig 7 and the §5 creator/country
/// roll-ups, rendered canonically from the final dataset.
/// [`MembershipFold`] reproduces these bytes incrementally.
pub fn fragment(ds: &Dataset, pool: &Pool) -> String {
    let counts = member_counts_all(ds, pool);
    let online = online_fractions_all(ds, pool);
    let grown = growth_all(ds, pool);
    let mut out = String::from("membership v1\n");
    for (i, kind) in PlatformKind::ALL.into_iter().enumerate() {
        render_platform(
            &mut out,
            kind,
            &counts[i],
            &online[i],
            &grown[i],
            &creators(ds, kind),
        );
    }
    writeln!(out, "whatsapp_countries: {:?}", whatsapp_countries(ds)).unwrap();
    out
}

/// One monitored group's folded membership state, updated from the day's
/// timeline observation.
#[derive(Debug, Clone, PartialEq)]
struct SlotMembership {
    /// [`PlatformKind::index`] of the group's platform.
    platform: u8,
    /// Size at the first alive observation (Fig 7a).
    first_size: Option<u32>,
    /// Size at the latest alive observation (Fig 7c's "last").
    last_size: Option<u32>,
    /// Alive observations so far (growth needs at least two).
    alive_days: u32,
    /// Whether the first alive observation has been consumed.
    online_seen: bool,
    /// Online share at the first alive observation, when its size was
    /// non-zero (Fig 7b).
    online_frac: Option<f64>,
}

persist_struct!(SlotMembership {
    platform,
    first_size,
    last_size,
    alive_days,
    online_seen,
    online_frac
});

/// Incremental twin of [`fragment`]: one compact record per monitored
/// group, updated from each day's observation, plus the creator and
/// country roll-ups captured on the final day (their inputs — landing
/// metadata and joined groups — are only complete then).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MembershipFold {
    slots: Vec<SlotMembership>,
    creators: Vec<CreatorStats>,
    countries: Vec<(String, u64)>,
}

impl MembershipFold {
    /// An empty fold.
    pub fn new() -> MembershipFold {
        MembershipFold::default()
    }
}

impl DayFold for MembershipFold {
    fn name(&self) -> &'static str {
        "membership"
    }

    fn fold_day(&mut self, slice: &DaySlice<'_>) {
        let day = slice.day;
        for rec in slice.groups_today() {
            self.slots.push(SlotMembership {
                platform: rec.platform.index() as u8,
                first_size: None,
                last_size: None,
                alive_days: 0,
                online_seen: false,
                online_frac: None,
            });
        }
        for (slot, s) in self.slots.iter_mut().enumerate() {
            let Some(tl) = slice.timelines.get(slot) else {
                continue;
            };
            if let Some(ObservedStatus::Alive { size, online }) = tl.status_on(day) {
                s.alive_days += 1;
                if s.first_size.is_none() {
                    s.first_size = Some(size);
                }
                s.last_size = Some(size);
                if !s.online_seen {
                    s.online_seen = true;
                    if size > 0 {
                        s.online_frac = Some(f64::from(online) / f64::from(size));
                    }
                }
            }
        }
        if slice.is_final() {
            self.creators = PlatformKind::ALL
                .into_iter()
                .map(|kind| {
                    creators_from(
                        slice.groups(),
                        slice.interner,
                        slice.timelines,
                        slice.joined(),
                        kind,
                    )
                })
                .collect();
            self.countries = countries_from(slice.pii);
        }
    }

    fn finish(&self, pool: &Pool) -> String {
        let sections = per_platform(pool, |kind| {
            let p = kind.index() as u8;
            let mut sizes: Vec<f64> = Vec::new();
            let mut fracs: Vec<f64> = Vec::new();
            let mut deltas: Vec<f64> = Vec::new();
            let (mut grew, mut shrank, mut flat) = (0u64, 0u64, 0u64);
            for s in self.slots.iter().filter(|s| s.platform == p) {
                if let Some(first) = s.first_size {
                    sizes.push(f64::from(first));
                }
                if let Some(f) = s.online_frac {
                    fracs.push(f);
                }
                if s.alive_days >= 2 {
                    if let (Some(first), Some(last)) = (s.first_size, s.last_size) {
                        deltas.push(f64::from(last) - f64::from(first));
                        if last > first {
                            grew += 1;
                        } else if last < first {
                            shrank += 1;
                        } else {
                            flat += 1;
                        }
                    }
                }
            }
            let n = (grew + shrank + flat).max(1) as f64;
            let growth = GrowthStats {
                deltas: Ecdf::new(deltas),
                grew: grew as f64 / n,
                shrank: shrank as f64 / n,
                flat: flat as f64 / n,
            };
            let zero = CreatorStats {
                creators: 0,
                groups: 0,
                single_group_share: 0.0,
                max_groups: 0,
            };
            let creators = self.creators.get(kind.index()).unwrap_or(&zero);
            let mut out = String::new();
            render_platform(
                &mut out,
                kind,
                &Ecdf::new(sizes),
                &Ecdf::new(fracs),
                &growth,
                creators,
            );
            out
        });
        let mut out = String::from("membership v1\n");
        for s in sections {
            out.push_str(&s);
        }
        writeln!(out, "whatsapp_countries: {:?}", self.countries).unwrap();
        out
    }

    fn save_state(&self, w: &mut Writer) {
        self.slots.save(w);
        self.creators.save(w);
        self.countries.save(w);
    }

    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), CheckpointError> {
        self.slots = Persist::load(r)?;
        self.creators = Persist::load(r)?;
        self.countries = Persist::load(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chatlens_core::run_study;
    use chatlens_workload::ScenarioConfig;
    use std::sync::OnceLock;

    fn dataset() -> &'static Dataset {
        static DS: OnceLock<Dataset> = OnceLock::new();
        DS.get_or_init(|| run_study(ScenarioConfig::tiny()))
    }

    #[test]
    fn fig7a_size_ordering() {
        let ds = dataset();
        let wa = member_counts(ds, PlatformKind::WhatsApp);
        let tg = member_counts(ds, PlatformKind::Telegram);
        let dc = member_counts(ds, PlatformKind::Discord);
        assert!(wa.max().unwrap() <= 257.0, "WhatsApp cap");
        assert!(
            tg.max().unwrap() > 10_000.0,
            "Telegram tail reaches 10k+: {}",
            tg.max().unwrap()
        );
        // Paper: ~60% of Discord groups under 100 members vs ~40% for
        // Telegram.
        let dc_small = dc.fraction_at_most(100.0);
        let tg_small = tg.fraction_at_most(100.0);
        assert!(dc_small > tg_small, "DC {dc_small} vs TG {tg_small}");
    }

    #[test]
    fn fig7b_online_fractions() {
        let ds = dataset();
        let dc = online_fractions(ds, PlatformKind::Discord);
        let tg = online_fractions(ds, PlatformKind::Telegram);
        let dc_active = dc.fraction_above(0.5);
        let tg_active = tg.fraction_above(0.5);
        assert!(
            (0.05..0.3).contains(&dc_active),
            "DC >50% online: {dc_active}"
        );
        assert!(tg_active < dc_active, "TG {tg_active} < DC {dc_active}");
        let wa = online_fractions(ds, PlatformKind::WhatsApp);
        assert_eq!(
            wa.max().unwrap_or(0.0),
            0.0,
            "WhatsApp shows no online counts"
        );
    }

    #[test]
    fn fig7c_growth() {
        let ds = dataset();
        for kind in PlatformKind::ALL {
            let g = growth(ds, kind);
            assert!(
                g.grew > g.shrank,
                "{kind}: sharing on Twitter grows groups ({} vs {})",
                g.grew,
                g.shrank
            );
            assert!((g.grew + g.shrank + g.flat - 1.0).abs() < 1e-9);
        }
        // WhatsApp deltas are bounded by the cap.
        let wa = growth(ds, PlatformKind::WhatsApp);
        assert!(wa.deltas.max().unwrap() <= 257.0);
    }

    #[test]
    fn creators_mostly_single_group() {
        let ds = dataset();
        for kind in [PlatformKind::WhatsApp, PlatformKind::Discord] {
            let c = creators(ds, kind);
            assert!(c.creators > 0, "{kind}");
            assert!(c.creators <= c.groups);
            assert!(
                c.single_group_share > 0.85,
                "{kind} single-group share {}",
                c.single_group_share
            );
        }
        let tg = creators(ds, PlatformKind::Telegram);
        assert_eq!(tg.single_group_share, 1.0);
        assert_eq!(tg.creators, tg.groups);
    }

    #[test]
    fn whatsapp_countries_brazil_first() {
        let ds = dataset();
        let countries = whatsapp_countries(ds);
        assert!(!countries.is_empty());
        assert_eq!(countries[0].0, "BR", "countries: {countries:?}");
    }

    #[test]
    fn parallel_fanout_matches_serial() {
        let ds = dataset();
        for threads in [1, 2, 8] {
            let pool = Pool::new(threads);
            let counts = member_counts_all(ds, &pool);
            let online = online_fractions_all(ds, &pool);
            let grown = growth_all(ds, &pool);
            for (i, kind) in PlatformKind::ALL.into_iter().enumerate() {
                assert_eq!(counts[i], member_counts(ds, kind), "{kind}");
                assert_eq!(online[i], online_fractions(ds, kind), "{kind}");
                assert_eq!(grown[i], growth(ds, kind), "{kind}");
            }
        }
    }
}
