//! Per-platform parallel fan-out.
//!
//! Most of the paper's artifacts are "the same computation, once per
//! platform" — independent by construction, so they parallelize without
//! any determinism risk: each platform's analysis reads the shared
//! dataset immutably and the results land in `PlatformKind::ALL` order
//! regardless of which worker ran what. The `*_all` functions in the
//! sibling modules are built on [`per_platform`].

use chatlens_platforms::id::PlatformKind;
use chatlens_simnet::par::Pool;

/// Runs `f` once per platform on the pool, returning results in
/// [`PlatformKind::ALL`] order (WhatsApp, Telegram, Discord) — the same
/// order a serial loop over `ALL` would produce, at any thread count.
pub fn per_platform<R, F>(pool: &Pool, f: F) -> [R; 3]
where
    R: Send,
    F: Fn(PlatformKind) -> R + Sync,
{
    let mut results = pool
        .par_map_chunked(1, &PlatformKind::ALL, |&kind| f(kind))
        .into_iter();
    match (results.next(), results.next(), results.next()) {
        (Some(a), Some(b), Some(c)) => [a, b, c],
        _ => unreachable!("PlatformKind::ALL has exactly three entries"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_follow_platform_order_at_any_thread_count() {
        for threads in [1, 2, 8] {
            let pool = Pool::new(threads);
            let names = per_platform(&pool, |kind| format!("{kind:?}"));
            assert_eq!(names, ["WhatsApp", "Telegram", "Discord"]);
        }
    }
}
