//! # chatlens-analysis — the paper's analyses, one module per section
//!
//! Everything here consumes the [`Dataset`] produced by the collection
//! campaign (never the simulator's ground truth — the analyses must work
//! from what the instrument saw, like the paper's did):
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`discovery`] | Fig 1 (URLs/day: all, unique, new), Fig 2 (tweets per URL) |
//! | [`content`] | Fig 3 (hashtags/mentions/retweets), Fig 4 (languages) |
//! | [`lda`] + [`topics`] | Table 3 (LDA topics over English tweets) |
//! | [`lifecycle`] | Fig 5 (staleness), Fig 6 (lifetime & revocation) |
//! | [`membership`] | Fig 7 (sizes, online share, growth), §5 creators |
//! | [`messages`] | Fig 8 (message types), Fig 9 (volumes) |
//! | [`pii`] | Table 4 (exposure), Table 5 (Discord linked accounts) |
//!
//! Supporting machinery: [`text`] (tokenization and stopword removal),
//! [`lda`] (collapsed-Gibbs Latent Dirichlet Allocation, from scratch),
//! and [`stats`] (ECDFs, quantiles, concentration shares).
//!
//! Every module above also ships an incremental [`DayFold`] twin of its
//! batch computation; [`pipeline`] registers the full fold set and the
//! matching batch fragments, locked byte-for-byte against each other by
//! `tests/fold_parity.rs`.
//!
//! [`Dataset`]: chatlens_core::Dataset
//! [`DayFold`]: chatlens_core::DayFold

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod content;
pub mod discovery;
pub mod fanout;
pub mod lda;
pub mod lifecycle;
pub mod membership;
pub mod messages;
pub mod pii;
pub mod pipeline;
pub mod stats;
pub mod text;
pub mod topics;

pub use lda::{LdaConfig, LdaModel};
pub use pipeline::{batch_fragments, standard_folds};
pub use stats::Ecdf;
