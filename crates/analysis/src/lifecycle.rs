//! Group lifecycle: Fig 5 (staleness — group age when shared on Twitter)
//! and Fig 6 (URL lifetime and revocation).

use crate::fanout::per_platform;
use crate::pipeline::ecdf_stats;
use crate::stats::Ecdf;
use chatlens_checkpoint::{persist_struct, CheckpointError, Persist, Reader, Writer};
use chatlens_core::discovery::DiscoveryRecord;
use chatlens_core::intern::Interner;
use chatlens_core::joiner::JoinedGroup;
use chatlens_core::monitor::{ObservedStatus, TimelineStore};
use chatlens_core::{Dataset, DayFold, DaySlice};
use chatlens_platforms::id::PlatformKind;
use chatlens_simnet::par::Pool;
use std::fmt::Write as _;

/// Fig 5: group ages (in days) at the moment their URL was first tweeted.
///
/// Availability follows the paper (§5): WhatsApp and Telegram creation
/// dates are only known for *joined* groups; Discord's come from the
/// invite API for every monitored group.
pub fn staleness_days(ds: &Dataset, kind: PlatformKind) -> Ecdf {
    Ecdf::new(staleness_from(
        &ds.joined,
        &ds.groups,
        &ds.interner,
        &ds.timelines,
        kind,
    ))
}

/// Raw Fig 5 ages from the campaign's constituent stores; shared by the
/// batch path ([`staleness_days`]) and [`LifecycleFold`]'s final-day
/// capture so both run the identical arithmetic.
pub(crate) fn staleness_from(
    joined: &[JoinedGroup],
    groups: &[DiscoveryRecord],
    interner: &Interner,
    timelines: &TimelineStore,
    kind: PlatformKind,
) -> Vec<f64> {
    let mut ages: Vec<f64> = Vec::new();
    match kind {
        PlatformKind::WhatsApp | PlatformKind::Telegram => {
            for jg in joined.iter().filter(|j| j.platform == kind) {
                let Some(created_day) = jg.created_day else {
                    continue;
                };
                let Some(rec) = interner.get(&jg.key).and_then(|s| groups.get(s.index())) else {
                    continue;
                };
                let share_day = rec.first_tweet_at.date().day_number();
                ages.push((share_day - created_day).max(0) as f64);
            }
        }
        PlatformKind::Discord => {
            for (slot, rec) in groups.iter().enumerate() {
                if rec.platform != kind {
                    continue;
                }
                let Some(tl) = timelines.get(slot) else {
                    continue;
                };
                let Some(created_day) = tl.dc_created_day else {
                    continue;
                };
                let share_day = rec.first_tweet_at.date().day_number();
                ages.push((share_day - created_day).max(0) as f64);
            }
        }
    }
    ages
}

/// Fig 6 roll-up for one platform.
#[derive(Debug, Clone, PartialEq)]
pub struct RevocationStats {
    /// Groups with at least one observation.
    pub observed: u64,
    /// Share of groups whose URL was seen revoked at some point.
    pub revoked_fraction: f64,
    /// Share whose *first* observation was already a revocation (the
    /// "revoked before our first observation" bucket).
    pub dead_on_arrival_fraction: f64,
    /// Fig 6a: accessible lifetime (days from first observation to the
    /// observed revocation) over revoked URLs. Revocations whose
    /// preceding day sits in the dataset's gap ledger are *censored* out
    /// of this ECDF: the group may have died unobserved inside the gap,
    /// so its lifetime is only known up to the gap length and would bias
    /// the distribution upward.
    pub lifetime_days: Ecdf,
    /// Revocations censored out of `lifetime_days` by the gap ledger.
    pub censored: u64,
    /// Fig 6b: share of the platform's groups revoked on each study day.
    pub revoked_per_day: Vec<f64>,
}

/// Compute Fig 6 for one platform.
pub fn revocation_stats(ds: &Dataset, kind: PlatformKind) -> RevocationStats {
    let days = ds.window.num_days() as usize;
    let mut observed = 0u64;
    let mut revoked = 0u64;
    let mut doa = 0u64;
    let mut censored = 0u64;
    let mut lifetimes: Vec<f64> = Vec::new();
    let mut per_day = vec![0u64; days];
    for (slot, rec) in ds.groups.iter().enumerate() {
        if rec.platform != kind {
            continue;
        }
        let Some(tl) = ds.timeline_at(slot) else {
            continue;
        };
        let Some(first) = tl.first() else {
            continue;
        };
        observed += 1;
        if tl.dead_on_arrival() {
            doa += 1;
        }
        if let Some(rd) = tl.revoked_day() {
            revoked += 1;
            per_day[rd as usize] += 1;
            // A revocation first seen right after a censored day may have
            // happened any time inside the gap — the exact lifetime is
            // unknowable, so it is excluded from the ECDF instead of
            // being fabricated. With an empty gap ledger this branch
            // never fires and the statistics are unchanged.
            let gap_before = rd > 0 && ds.gaps.get(slot).is_some_and(|g| g.contains(&(rd - 1)));
            if gap_before {
                censored += 1;
            } else {
                lifetimes.push(f64::from(rd - first.day));
            }
        }
    }
    let denom = observed.max(1) as f64;
    RevocationStats {
        observed,
        revoked_fraction: revoked as f64 / denom,
        dead_on_arrival_fraction: doa as f64 / denom,
        lifetime_days: Ecdf::new(lifetimes),
        censored,
        revoked_per_day: per_day.into_iter().map(|c| c as f64 / denom).collect(),
    }
}

/// Sanity view used by tests and EXPERIMENTS.md: sizes observed alive at
/// least once.
pub fn ever_alive_fraction(ds: &Dataset, kind: PlatformKind) -> f64 {
    let mut observed = 0u64;
    let mut alive = 0u64;
    for rec in ds.groups.iter().filter(|g| g.platform == kind) {
        if let Some(tl) = ds.timeline_of(rec) {
            if tl.first().is_some() {
                observed += 1;
                if tl
                    .iter()
                    .any(|o| matches!(o.status, ObservedStatus::Alive { .. }))
                {
                    alive += 1;
                }
            }
        }
    }
    alive as f64 / observed.max(1) as f64
}

/// Fig 5 for all three platforms, fanned out across the pool; element `i`
/// equals `staleness_days(ds, PlatformKind::ALL[i])` at any thread count.
pub fn staleness_days_all(ds: &Dataset, pool: &Pool) -> [Ecdf; 3] {
    per_platform(pool, |kind| staleness_days(ds, kind))
}

/// Fig 6 for all three platforms, fanned out across the pool.
pub fn revocation_stats_all(ds: &Dataset, pool: &Pool) -> [RevocationStats; 3] {
    per_platform(pool, |kind| revocation_stats(ds, kind))
}

fn render_platform(
    out: &mut String,
    kind: PlatformKind,
    stale: &Ecdf,
    rev: &RevocationStats,
    ever_alive: f64,
) {
    let name = kind.name();
    writeln!(out, "{name}.staleness: {}", ecdf_stats(stale)).unwrap();
    writeln!(
        out,
        "{name}.revocation: observed={} revoked_fraction={:?} dead_on_arrival={:?} censored={}",
        rev.observed, rev.revoked_fraction, rev.dead_on_arrival_fraction, rev.censored
    )
    .unwrap();
    writeln!(
        out,
        "{name}.lifetime_days: {}",
        ecdf_stats(&rev.lifetime_days)
    )
    .unwrap();
    writeln!(out, "{name}.revoked_per_day: {:?}", rev.revoked_per_day).unwrap();
    writeln!(out, "{name}.ever_alive_fraction: {ever_alive:?}").unwrap();
}

/// The batch lifecycle fragment: Fig 5 staleness, Fig 6 revocation, and
/// the ever-alive sanity view, rendered canonically from the final
/// dataset. [`LifecycleFold`] reproduces these bytes incrementally.
pub fn fragment(ds: &Dataset, pool: &Pool) -> String {
    let stale = staleness_days_all(ds, pool);
    let rev = revocation_stats_all(ds, pool);
    let mut out = String::from("lifecycle v1\n");
    for (i, kind) in PlatformKind::ALL.into_iter().enumerate() {
        render_platform(
            &mut out,
            kind,
            &stale[i],
            &rev[i],
            ever_alive_fraction(ds, kind),
        );
    }
    out
}

/// One monitored group's folded lifecycle state, advanced from the
/// day's timeline observation.
#[derive(Debug, Clone, PartialEq)]
struct SlotLifecycle {
    /// [`PlatformKind::index`] of the group's platform.
    platform: u8,
    /// Day of the first observation (None until observed at all).
    first_day: Option<u32>,
    /// Whether the first observation was already a revocation.
    doa: bool,
    /// Day the URL was first observed revoked.
    revoked_day: Option<u32>,
    /// Whether the revocation followed a gap day, censoring the lifetime.
    censored: bool,
    /// Whether the group was ever observed alive.
    ever_alive: bool,
}

persist_struct!(SlotLifecycle {
    platform,
    first_day,
    doa,
    revoked_day,
    censored,
    ever_alive
});

/// Incremental twin of [`fragment`]: one compact record per monitored
/// group, advanced from each day's observation — censoring consults the
/// gap ledger on the revocation day, which is sound because a gap for
/// day `d` is filed at day `d`'s own backfill, before any later fold
/// step runs. Fig 5 staleness is captured on the final day (its joined
/// metadata is only complete then).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LifecycleFold {
    slots: Vec<SlotLifecycle>,
    staleness: [Vec<f64>; 3],
    days_total: u32,
}

impl LifecycleFold {
    /// An empty fold.
    pub fn new() -> LifecycleFold {
        LifecycleFold::default()
    }
}

impl DayFold for LifecycleFold {
    fn name(&self) -> &'static str {
        "lifecycle"
    }

    fn fold_day(&mut self, slice: &DaySlice<'_>) {
        let day = slice.day;
        self.days_total = slice.days_total;
        for rec in slice.groups_today() {
            self.slots.push(SlotLifecycle {
                platform: rec.platform.index() as u8,
                first_day: None,
                doa: false,
                revoked_day: None,
                censored: false,
                ever_alive: false,
            });
        }
        for (slot, s) in self.slots.iter_mut().enumerate() {
            let Some(tl) = slice.timelines.get(slot) else {
                continue;
            };
            let Some(status) = tl.status_on(day) else {
                continue;
            };
            if s.first_day.is_none() {
                s.first_day = Some(day);
                s.doa = matches!(status, ObservedStatus::Revoked);
            }
            match status {
                ObservedStatus::Alive { .. } => s.ever_alive = true,
                ObservedStatus::Revoked => {
                    if s.revoked_day.is_none() {
                        s.revoked_day = Some(day);
                        s.censored =
                            day > 0 && slice.gaps.get(slot).is_some_and(|g| g.contains(&(day - 1)));
                    }
                }
                ObservedStatus::Failed => {}
            }
        }
        if slice.is_final() {
            self.staleness = PlatformKind::ALL.map(|kind| {
                staleness_from(
                    slice.joined(),
                    slice.groups(),
                    slice.interner,
                    slice.timelines,
                    kind,
                )
            });
        }
    }

    fn finish(&self, pool: &Pool) -> String {
        let sections = per_platform(pool, |kind| {
            let p = kind.index() as u8;
            let days = self.days_total as usize;
            let mut observed = 0u64;
            let mut revoked = 0u64;
            let mut doa = 0u64;
            let mut censored = 0u64;
            let mut alive = 0u64;
            let mut lifetimes: Vec<f64> = Vec::new();
            let mut per_day = vec![0u64; days];
            for s in self.slots.iter().filter(|s| s.platform == p) {
                let Some(first_day) = s.first_day else {
                    continue;
                };
                observed += 1;
                if s.doa {
                    doa += 1;
                }
                if s.ever_alive {
                    alive += 1;
                }
                if let Some(rd) = s.revoked_day {
                    revoked += 1;
                    per_day[rd as usize] += 1;
                    if s.censored {
                        censored += 1;
                    } else {
                        lifetimes.push(f64::from(rd - first_day));
                    }
                }
            }
            let denom = observed.max(1) as f64;
            let rev = RevocationStats {
                observed,
                revoked_fraction: revoked as f64 / denom,
                dead_on_arrival_fraction: doa as f64 / denom,
                lifetime_days: Ecdf::new(lifetimes),
                censored,
                revoked_per_day: per_day.into_iter().map(|c| c as f64 / denom).collect(),
            };
            let stale = Ecdf::new(self.staleness[kind.index()].clone());
            let ever_alive = alive as f64 / observed.max(1) as f64;
            let mut out = String::new();
            render_platform(&mut out, kind, &stale, &rev, ever_alive);
            out
        });
        let mut out = String::from("lifecycle v1\n");
        for s in sections {
            out.push_str(&s);
        }
        out
    }

    fn save_state(&self, w: &mut Writer) {
        self.slots.save(w);
        self.staleness.save(w);
        self.days_total.save(w);
    }

    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), CheckpointError> {
        self.slots = Persist::load(r)?;
        self.staleness = Persist::load(r)?;
        self.days_total = Persist::load(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chatlens_core::run_study;
    use chatlens_workload::ScenarioConfig;
    use std::sync::OnceLock;

    fn dataset() -> &'static Dataset {
        static DS: OnceLock<Dataset> = OnceLock::new();
        DS.get_or_init(|| run_study(ScenarioConfig::tiny()))
    }

    #[test]
    fn fig5_whatsapp_is_fresh() {
        let ds = dataset();
        let wa = staleness_days(ds, PlatformKind::WhatsApp);
        assert!(!wa.is_empty());
        let same_day = wa.fraction_at_most(0.0);
        assert!(same_day > 0.55, "WA same-day {same_day}");
        let dc = staleness_days(ds, PlatformKind::Discord);
        let dc_same_day = dc.fraction_at_most(0.0);
        assert!(
            dc_same_day < same_day,
            "Discord groups are older when shared: {dc_same_day} vs {same_day}"
        );
    }

    #[test]
    fn fig5_old_groups_exist() {
        let ds = dataset();
        let dc = staleness_days(ds, PlatformKind::Discord);
        let over_year = dc.fraction_above(365.0);
        assert!(
            (0.1..=0.4).contains(&over_year),
            "Discord >1y share {over_year}"
        );
    }

    #[test]
    fn fig6_revocation_ordering() {
        let ds = dataset();
        let wa = revocation_stats(ds, PlatformKind::WhatsApp);
        let tg = revocation_stats(ds, PlatformKind::Telegram);
        let dc = revocation_stats(ds, PlatformKind::Discord);
        // Paper: 27.3% / 20.4% / 68.4%.
        assert!(
            dc.revoked_fraction > 0.55,
            "DC revoked {}",
            dc.revoked_fraction
        );
        assert!(
            dc.revoked_fraction > wa.revoked_fraction,
            "DC {} > WA {}",
            dc.revoked_fraction,
            wa.revoked_fraction
        );
        assert!(
            wa.revoked_fraction > tg.revoked_fraction,
            "WA {} > TG {}",
            wa.revoked_fraction,
            tg.revoked_fraction
        );
        // Paper: 6.4% / 16.3% / 67.4% dead before first observation.
        assert!(
            dc.dead_on_arrival_fraction > 0.5,
            "DC dead-on-arrival {}",
            dc.dead_on_arrival_fraction
        );
        assert!(
            tg.dead_on_arrival_fraction > wa.dead_on_arrival_fraction,
            "TG {} > WA {}",
            tg.dead_on_arrival_fraction,
            wa.dead_on_arrival_fraction
        );
    }

    #[test]
    fn fig6_internal_consistency() {
        let ds = dataset();
        for kind in PlatformKind::ALL {
            let s = revocation_stats(ds, kind);
            assert!(s.observed > 0);
            assert!(s.dead_on_arrival_fraction <= s.revoked_fraction + 1e-9);
            let per_day_total: f64 = s.revoked_per_day.iter().sum();
            assert!(
                (per_day_total - s.revoked_fraction).abs() < 1e-9,
                "{kind}: per-day revocations must sum to the total"
            );
            // Lifetimes are within the window.
            if let Some(max) = s.lifetime_days.max() {
                assert!(max <= 37.0);
            }
        }
    }

    #[test]
    fn most_whatsapp_groups_observed_alive() {
        let ds = dataset();
        let f = ever_alive_fraction(ds, PlatformKind::WhatsApp);
        assert!(f > 0.85, "WA ever-alive {f}");
        let f_dc = ever_alive_fraction(ds, PlatformKind::Discord);
        assert!(f_dc < 0.5, "DC ever-alive {f_dc}");
    }

    #[test]
    fn parallel_fanout_matches_serial() {
        let ds = dataset();
        for threads in [1, 2, 8] {
            let pool = Pool::new(threads);
            let stale = staleness_days_all(ds, &pool);
            let revoked = revocation_stats_all(ds, &pool);
            for (i, kind) in PlatformKind::ALL.into_iter().enumerate() {
                assert_eq!(stale[i], staleness_days(ds, kind), "{kind}");
                assert_eq!(revoked[i], revocation_stats(ds, kind), "{kind}");
            }
        }
    }
}
