//! Group lifecycle: Fig 5 (staleness — group age when shared on Twitter)
//! and Fig 6 (URL lifetime and revocation).

use crate::fanout::per_platform;
use crate::stats::Ecdf;
use chatlens_core::monitor::ObservedStatus;
use chatlens_core::Dataset;
use chatlens_platforms::id::PlatformKind;
use chatlens_simnet::par::Pool;

/// Fig 5: group ages (in days) at the moment their URL was first tweeted.
///
/// Availability follows the paper (§5): WhatsApp and Telegram creation
/// dates are only known for *joined* groups; Discord's come from the
/// invite API for every monitored group.
pub fn staleness_days(ds: &Dataset, kind: PlatformKind) -> Ecdf {
    let mut ages: Vec<f64> = Vec::new();
    match kind {
        PlatformKind::WhatsApp | PlatformKind::Telegram => {
            for jg in ds.joined_of(kind) {
                let Some(created_day) = jg.created_day else {
                    continue;
                };
                let Some(rec) = ds.slot_of_key(&jg.key).and_then(|s| ds.groups.get(s)) else {
                    continue;
                };
                let share_day = rec.first_tweet_at.date().day_number();
                ages.push((share_day - created_day).max(0) as f64);
            }
        }
        PlatformKind::Discord => {
            for rec in ds.groups.iter().filter(|g| g.platform == kind) {
                let Some(tl) = ds.timeline_of(rec) else {
                    continue;
                };
                let Some(created_day) = tl.dc_created_day else {
                    continue;
                };
                let share_day = rec.first_tweet_at.date().day_number();
                ages.push((share_day - created_day).max(0) as f64);
            }
        }
    }
    Ecdf::new(ages)
}

/// Fig 6 roll-up for one platform.
#[derive(Debug, Clone, PartialEq)]
pub struct RevocationStats {
    /// Groups with at least one observation.
    pub observed: u64,
    /// Share of groups whose URL was seen revoked at some point.
    pub revoked_fraction: f64,
    /// Share whose *first* observation was already a revocation (the
    /// "revoked before our first observation" bucket).
    pub dead_on_arrival_fraction: f64,
    /// Fig 6a: accessible lifetime (days from first observation to the
    /// observed revocation) over revoked URLs. Revocations whose
    /// preceding day sits in the dataset's gap ledger are *censored* out
    /// of this ECDF: the group may have died unobserved inside the gap,
    /// so its lifetime is only known up to the gap length and would bias
    /// the distribution upward.
    pub lifetime_days: Ecdf,
    /// Revocations censored out of `lifetime_days` by the gap ledger.
    pub censored: u64,
    /// Fig 6b: share of the platform's groups revoked on each study day.
    pub revoked_per_day: Vec<f64>,
}

/// Compute Fig 6 for one platform.
pub fn revocation_stats(ds: &Dataset, kind: PlatformKind) -> RevocationStats {
    let days = ds.window.num_days() as usize;
    let mut observed = 0u64;
    let mut revoked = 0u64;
    let mut doa = 0u64;
    let mut censored = 0u64;
    let mut lifetimes: Vec<f64> = Vec::new();
    let mut per_day = vec![0u64; days];
    for (slot, rec) in ds.groups.iter().enumerate() {
        if rec.platform != kind {
            continue;
        }
        let Some(tl) = ds.timeline_at(slot) else {
            continue;
        };
        let Some(first) = tl.first() else {
            continue;
        };
        observed += 1;
        if tl.dead_on_arrival() {
            doa += 1;
        }
        if let Some(rd) = tl.revoked_day() {
            revoked += 1;
            per_day[rd as usize] += 1;
            // A revocation first seen right after a censored day may have
            // happened any time inside the gap — the exact lifetime is
            // unknowable, so it is excluded from the ECDF instead of
            // being fabricated. With an empty gap ledger this branch
            // never fires and the statistics are unchanged.
            let gap_before = rd > 0 && ds.gaps.get(slot).is_some_and(|g| g.contains(&(rd - 1)));
            if gap_before {
                censored += 1;
            } else {
                lifetimes.push(f64::from(rd - first.day));
            }
        }
    }
    let denom = observed.max(1) as f64;
    RevocationStats {
        observed,
        revoked_fraction: revoked as f64 / denom,
        dead_on_arrival_fraction: doa as f64 / denom,
        lifetime_days: Ecdf::new(lifetimes),
        censored,
        revoked_per_day: per_day.into_iter().map(|c| c as f64 / denom).collect(),
    }
}

/// Sanity view used by tests and EXPERIMENTS.md: sizes observed alive at
/// least once.
pub fn ever_alive_fraction(ds: &Dataset, kind: PlatformKind) -> f64 {
    let mut observed = 0u64;
    let mut alive = 0u64;
    for rec in ds.groups.iter().filter(|g| g.platform == kind) {
        if let Some(tl) = ds.timeline_of(rec) {
            if tl.first().is_some() {
                observed += 1;
                if tl
                    .iter()
                    .any(|o| matches!(o.status, ObservedStatus::Alive { .. }))
                {
                    alive += 1;
                }
            }
        }
    }
    alive as f64 / observed.max(1) as f64
}

/// Fig 5 for all three platforms, fanned out across the pool; element `i`
/// equals `staleness_days(ds, PlatformKind::ALL[i])` at any thread count.
pub fn staleness_days_all(ds: &Dataset, pool: &Pool) -> [Ecdf; 3] {
    per_platform(pool, |kind| staleness_days(ds, kind))
}

/// Fig 6 for all three platforms, fanned out across the pool.
pub fn revocation_stats_all(ds: &Dataset, pool: &Pool) -> [RevocationStats; 3] {
    per_platform(pool, |kind| revocation_stats(ds, kind))
}

#[cfg(test)]
mod tests {
    use super::*;
    use chatlens_core::run_study;
    use chatlens_workload::ScenarioConfig;
    use std::sync::OnceLock;

    fn dataset() -> &'static Dataset {
        static DS: OnceLock<Dataset> = OnceLock::new();
        DS.get_or_init(|| run_study(ScenarioConfig::tiny()))
    }

    #[test]
    fn fig5_whatsapp_is_fresh() {
        let ds = dataset();
        let wa = staleness_days(ds, PlatformKind::WhatsApp);
        assert!(!wa.is_empty());
        let same_day = wa.fraction_at_most(0.0);
        assert!(same_day > 0.55, "WA same-day {same_day}");
        let dc = staleness_days(ds, PlatformKind::Discord);
        let dc_same_day = dc.fraction_at_most(0.0);
        assert!(
            dc_same_day < same_day,
            "Discord groups are older when shared: {dc_same_day} vs {same_day}"
        );
    }

    #[test]
    fn fig5_old_groups_exist() {
        let ds = dataset();
        let dc = staleness_days(ds, PlatformKind::Discord);
        let over_year = dc.fraction_above(365.0);
        assert!(
            (0.1..=0.4).contains(&over_year),
            "Discord >1y share {over_year}"
        );
    }

    #[test]
    fn fig6_revocation_ordering() {
        let ds = dataset();
        let wa = revocation_stats(ds, PlatformKind::WhatsApp);
        let tg = revocation_stats(ds, PlatformKind::Telegram);
        let dc = revocation_stats(ds, PlatformKind::Discord);
        // Paper: 27.3% / 20.4% / 68.4%.
        assert!(
            dc.revoked_fraction > 0.55,
            "DC revoked {}",
            dc.revoked_fraction
        );
        assert!(
            dc.revoked_fraction > wa.revoked_fraction,
            "DC {} > WA {}",
            dc.revoked_fraction,
            wa.revoked_fraction
        );
        assert!(
            wa.revoked_fraction > tg.revoked_fraction,
            "WA {} > TG {}",
            wa.revoked_fraction,
            tg.revoked_fraction
        );
        // Paper: 6.4% / 16.3% / 67.4% dead before first observation.
        assert!(
            dc.dead_on_arrival_fraction > 0.5,
            "DC dead-on-arrival {}",
            dc.dead_on_arrival_fraction
        );
        assert!(
            tg.dead_on_arrival_fraction > wa.dead_on_arrival_fraction,
            "TG {} > WA {}",
            tg.dead_on_arrival_fraction,
            wa.dead_on_arrival_fraction
        );
    }

    #[test]
    fn fig6_internal_consistency() {
        let ds = dataset();
        for kind in PlatformKind::ALL {
            let s = revocation_stats(ds, kind);
            assert!(s.observed > 0);
            assert!(s.dead_on_arrival_fraction <= s.revoked_fraction + 1e-9);
            let per_day_total: f64 = s.revoked_per_day.iter().sum();
            assert!(
                (per_day_total - s.revoked_fraction).abs() < 1e-9,
                "{kind}: per-day revocations must sum to the total"
            );
            // Lifetimes are within the window.
            if let Some(max) = s.lifetime_days.max() {
                assert!(max <= 37.0);
            }
        }
    }

    #[test]
    fn most_whatsapp_groups_observed_alive() {
        let ds = dataset();
        let f = ever_alive_fraction(ds, PlatformKind::WhatsApp);
        assert!(f > 0.85, "WA ever-alive {f}");
        let f_dc = ever_alive_fraction(ds, PlatformKind::Discord);
        assert!(f_dc < 0.5, "DC ever-alive {f_dc}");
    }

    #[test]
    fn parallel_fanout_matches_serial() {
        let ds = dataset();
        for threads in [1, 2, 8] {
            let pool = Pool::new(threads);
            let stale = staleness_days_all(ds, &pool);
            let revoked = revocation_stats_all(ds, &pool);
            for (i, kind) in PlatformKind::ALL.into_iter().enumerate() {
                assert_eq!(stale[i], staleness_days(ds, kind), "{kind}");
                assert_eq!(revoked[i], revocation_stats(ds, kind), "{kind}");
            }
        }
    }
}
