//! Table 3 regeneration: LDA over the English tweets of each platform,
//! plus automatic labeling of the recovered topics.
//!
//! The paper's authors labelled topics by eye; here labeling is done by
//! matching each recovered topic's top terms against the known Table 3
//! vocabularies (the closest label wins and the overlap score is
//! reported), which makes the comparison mechanical and testable.

use crate::fanout::per_platform;
use crate::lda::{LdaConfig, LdaModel};
use crate::pipeline::report_lda_config;
use crate::text::StopwordFilter;
use chatlens_checkpoint::{CheckpointError, Persist, Reader, Writer};
use chatlens_core::{Dataset, DayFold, DaySlice};
use chatlens_platforms::id::PlatformKind;
use chatlens_platforms::invite::parse_invite_url;
use chatlens_simnet::par::Pool;
use chatlens_twitter::Lang;
use chatlens_workload::topics::{topics_for, topics_for_lang, Topic};
use chatlens_workload::Vocabulary;
use std::fmt::Write as _;

/// One recovered, labelled topic.
#[derive(Debug, Clone)]
pub struct LabeledTopic {
    /// The matched Table 3 label.
    pub label: String,
    /// Overlap score with the matched reference topic (matched terms /
    /// compared terms, in `[0, 1]`).
    pub match_score: f64,
    /// The topic's top terms (most probable first).
    pub top_terms: Vec<String>,
    /// Share of English tweets whose dominant topic this is (Table 3's
    /// percentage column).
    pub tweet_share: f64,
}

/// Table 3 for one platform: the fitted model and its labelled topics.
pub struct TopicAnalysis {
    /// Platform analysed.
    pub platform: PlatformKind,
    /// Number of English tweets that went into the model.
    pub num_docs: usize,
    /// Labelled topics, in model order.
    pub topics: Vec<LabeledTopic>,
}

/// Build the tweet corpus for one platform in one language:
/// stopword-filtered token-id documents.
pub fn corpus_for_lang(
    ds: &Dataset,
    kind: PlatformKind,
    lang: Lang,
    vocab: &Vocabulary,
) -> Vec<Vec<u16>> {
    let filter = StopwordFilter::new(vocab);
    ds.tweets_of(kind)
        .filter(|t| t.tweet.lang == lang)
        .map(|t| filter.filter(&t.tweet.tokens))
        .filter(|doc| !doc.is_empty())
        .collect()
}

/// Build the English-tweet corpus for one platform (Table 3's input).
pub fn english_corpus(ds: &Dataset, kind: PlatformKind, vocab: &Vocabulary) -> Vec<Vec<u16>> {
    corpus_for_lang(ds, kind, Lang::En, vocab)
}

/// Fit LDA and label the topics for one platform (Table 3, one column
/// group).
pub fn analyze_topics(
    ds: &Dataset,
    kind: PlatformKind,
    vocab: &Vocabulary,
    cfg: LdaConfig,
) -> TopicAnalysis {
    analyze_corpus(kind, &english_corpus(ds, kind, vocab), vocab, cfg)
}

/// Fit LDA and label the topics over an already-built English corpus;
/// shared by the batch path ([`analyze_topics`]) and [`TopicsFold`],
/// whose corpus accrues day by day instead of being rebuilt at the end.
pub fn analyze_corpus(
    kind: PlatformKind,
    docs: &[Vec<u16>],
    vocab: &Vocabulary,
    cfg: LdaConfig,
) -> TopicAnalysis {
    let model = LdaModel::fit(docs, vocab.len(), cfg);
    let doc_shares = model.topic_doc_shares();
    let topics = (0..model.k())
        .map(|t| {
            let top: Vec<String> = model
                .top_words(t, 10)
                .into_iter()
                .map(|(w, _)| vocab.word(w).to_string())
                .collect();
            let (label, score) = best_label(kind, &top);
            LabeledTopic {
                label,
                match_score: score,
                top_terms: top,
                tweet_share: doc_shares[t],
            }
        })
        .collect();
    TopicAnalysis {
        platform: kind,
        num_docs: docs.len(),
        topics,
    }
}

/// Match a recovered topic's top terms against a reference topic set;
/// returns the best label and its overlap score.
pub fn best_label_among(refs: &[Topic], top_terms: &[String]) -> (String, f64) {
    let mut best = ("(unmatched)".to_string(), 0.0f64);
    for r in refs {
        let overlap = top_terms
            .iter()
            .filter(|t| r.terms.contains(&t.as_str()))
            .count() as f64;
        let score = overlap / top_terms.len().max(1) as f64;
        if score > best.1 {
            best = (r.label.to_string(), score);
        }
    }
    best
}

/// Match against the platform's English reference topics (Table 3).
pub fn best_label(kind: PlatformKind, top_terms: &[String]) -> (String, f64) {
    best_label_among(&topics_for(kind), top_terms)
}

/// The multilingual analysis of §4's closing remark: fit LDA over one
/// platform's tweets in `lang` and label against that language's
/// reference set (COVID-19 / politics vocabularies). Returns `None` for
/// (platform, language) pairs the paper found no distinct topics for.
pub fn analyze_topics_lang(
    ds: &Dataset,
    kind: PlatformKind,
    lang: Lang,
    vocab: &Vocabulary,
    cfg: LdaConfig,
) -> Option<TopicAnalysis> {
    let refs = topics_for_lang(kind, lang)?;
    let docs = corpus_for_lang(ds, kind, lang, vocab);
    let model = LdaModel::fit(&docs, vocab.len(), cfg);
    let doc_shares = model.topic_doc_shares();
    let topics = (0..model.k())
        .map(|t| {
            let top: Vec<String> = model
                .top_words(t, 8)
                .into_iter()
                .map(|(w, _)| vocab.word(w).to_string())
                .collect();
            let (label, score) = best_label_among(&refs, &top);
            LabeledTopic {
                label,
                match_score: score,
                top_terms: top,
                tweet_share: doc_shares[t],
            }
        })
        .collect();
    Some(TopicAnalysis {
        platform: kind,
        num_docs: docs.len(),
        topics,
    })
}

/// Aggregate the share of English tweets per *label* (several recovered
/// topics can map to the same label, exactly as Table 3 repeats labels).
pub fn share_by_label(analysis: &TopicAnalysis) -> Vec<(String, f64)> {
    let mut map: std::collections::BTreeMap<String, f64> = std::collections::BTreeMap::new();
    for t in &analysis.topics {
        *map.entry(t.label.clone()).or_insert(0.0) += t.tweet_share;
    }
    let mut out: Vec<(String, f64)> = map.into_iter().collect();
    out.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    out
}

fn render_platform(out: &mut String, analysis: &TopicAnalysis) {
    let name = analysis.platform.name();
    writeln!(out, "{name}.num_docs: {}", analysis.num_docs).unwrap();
    for (i, t) in analysis.topics.iter().enumerate() {
        writeln!(
            out,
            "{name}.topic {i}: label={:?} score={:?} share={:?} terms={:?}",
            t.label, t.match_score, t.tweet_share, t.top_terms
        )
        .unwrap();
    }
    writeln!(out, "{name}.share_by_label: {:?}", share_by_label(analysis)).unwrap();
}

/// The batch topics fragment: Table 3 refit with the report's fixed LDA
/// settings ([`report_lda_config`]) and rendered canonically from the
/// final dataset. [`TopicsFold`] reproduces these bytes incrementally.
pub fn fragment(ds: &Dataset, pool: &Pool) -> String {
    let vocab = Vocabulary::build();
    let sections = per_platform(pool, |kind| {
        let analysis = analyze_topics(ds, kind, &vocab, report_lda_config());
        let mut out = String::new();
        render_platform(&mut out, &analysis);
        out
    });
    let mut out = String::from("topics v1\n");
    for s in sections {
        out.push_str(&s);
    }
    out
}

/// Incremental twin of [`fragment`]: accrues each platform's
/// stopword-filtered English corpus day by day (tokenising only the
/// day's tweets), then fits and labels once at `finish` with the same
/// fixed-seed configuration as the batch path. The vocabulary and
/// stopword filter are dataset-independent and rebuilt on construction,
/// so only the token-id corpus rides in the checkpoint.
pub struct TopicsFold {
    corpora: [Vec<Vec<u16>>; 3],
    vocab: Vocabulary,
    filter: StopwordFilter,
}

impl TopicsFold {
    /// An empty fold over a freshly built vocabulary.
    pub fn new() -> TopicsFold {
        let vocab = Vocabulary::build();
        let filter = StopwordFilter::new(&vocab);
        TopicsFold {
            corpora: [Vec::new(), Vec::new(), Vec::new()],
            vocab,
            filter,
        }
    }
}

impl Default for TopicsFold {
    fn default() -> TopicsFold {
        TopicsFold::new()
    }
}

impl DayFold for TopicsFold {
    fn name(&self) -> &'static str {
        "topics"
    }

    fn fold_day(&mut self, slice: &DaySlice<'_>) {
        for ct in slice.tweets_today() {
            if ct.tweet.lang != Lang::En {
                continue;
            }
            let mut on = [false; 3];
            for url in &ct.tweet.urls {
                if let Some(inv) = parse_invite_url(url) {
                    on[inv.platform().index()] = true;
                }
            }
            if !on.iter().any(|&b| b) {
                continue;
            }
            let doc = self.filter.filter(&ct.tweet.tokens);
            if doc.is_empty() {
                continue;
            }
            for (i, hit) in on.into_iter().enumerate() {
                if hit {
                    self.corpora[i].push(doc.clone());
                }
            }
        }
    }

    fn finish(&self, pool: &Pool) -> String {
        let sections = per_platform(pool, |kind| {
            let analysis = analyze_corpus(
                kind,
                &self.corpora[kind.index()],
                &self.vocab,
                report_lda_config(),
            );
            let mut out = String::new();
            render_platform(&mut out, &analysis);
            out
        });
        let mut out = String::from("topics v1\n");
        for s in sections {
            out.push_str(&s);
        }
        out
    }

    fn save_state(&self, w: &mut Writer) {
        self.corpora.save(w);
    }

    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), CheckpointError> {
        self.corpora = Persist::load(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chatlens_core::run_study;
    use chatlens_workload::ScenarioConfig;
    use std::sync::OnceLock;

    fn dataset() -> &'static Dataset {
        static DS: OnceLock<Dataset> = OnceLock::new();
        DS.get_or_init(|| run_study(ScenarioConfig::tiny()))
    }

    fn vocab() -> Vocabulary {
        Vocabulary::build()
    }

    #[test]
    fn corpus_is_english_and_filtered() {
        let v = vocab();
        let docs = english_corpus(dataset(), PlatformKind::Telegram, &v);
        assert!(docs.len() > 100, "corpus size {}", docs.len());
        let filter = StopwordFilter::new(&v);
        for doc in docs.iter().take(200) {
            assert!(doc.iter().all(|&t| !filter.is_stop(t)));
        }
    }

    #[test]
    fn discord_advertising_topic_recovered() {
        // Discord's dominant Table 3 topic is "Advertising Discord groups"
        // (33% + 10% + 4%); even a tiny corpus recovers it as the largest
        // label.
        let v = vocab();
        let analysis = analyze_topics(
            dataset(),
            PlatformKind::Discord,
            &v,
            LdaConfig {
                k: 10,
                iterations: 40,
                seed: 7,
                ..LdaConfig::default()
            },
        );
        assert_eq!(analysis.topics.len(), 10);
        let shares = share_by_label(&analysis);
        // At tiny scale one viral group can push another label past it;
        // require the advertising label to be top-2 with a solid share
        // (the 0.1-scale repro reports it on top, as in the paper).
        let rank = shares
            .iter()
            .position(|(l, _)| l == "Advertising Discord groups")
            .expect("advertising label recovered");
        assert!(rank <= 1, "label shares: {shares:?}");
        assert!(
            shares[rank].1 > 0.15,
            "advertising share {}",
            shares[rank].1
        );
    }

    #[test]
    fn recovered_topics_match_reference_vocabulary() {
        let v = vocab();
        let analysis = analyze_topics(
            dataset(),
            PlatformKind::WhatsApp,
            &v,
            LdaConfig {
                k: 10,
                iterations: 40,
                seed: 8,
                ..LdaConfig::default()
            },
        );
        // Most recovered topics should match a reference topic well.
        let good = analysis
            .topics
            .iter()
            .filter(|t| t.match_score >= 0.5)
            .count();
        assert!(good >= 6, "only {good}/10 topics matched >= 0.5");
        // Shares sum to 1 over English tweets.
        let total: f64 = analysis.topics.iter().map(|t| t.tweet_share).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn spanish_whatsapp_recovers_covid() {
        // §4: "topics that do not emerge in our English analysis mainly
        // due to the COVID-19 pandemic (in Spanish for WhatsApp...)".
        let v = vocab();
        let analysis = analyze_topics_lang(
            dataset(),
            PlatformKind::WhatsApp,
            Lang::Es,
            &v,
            LdaConfig {
                k: 4,
                iterations: 40,
                // Seed recalibrated for the chunked sampler's RNG forking
                // (the topic recovery itself is robust; which seeds show
                // all four labels at k=4 is not).
                seed: 1,
                ..LdaConfig::default()
            },
        )
        .expect("Spanish WhatsApp has a reference topic set");
        assert!(analysis.num_docs > 50, "docs {}", analysis.num_docs);
        let labels: Vec<&str> = analysis.topics.iter().map(|t| t.label.as_str()).collect();
        assert!(labels.contains(&"COVID-19"), "labels: {labels:?}");
    }

    #[test]
    fn portuguese_whatsapp_recovers_politics() {
        let v = vocab();
        let analysis = analyze_topics_lang(
            dataset(),
            PlatformKind::WhatsApp,
            Lang::Pt,
            &v,
            LdaConfig {
                k: 4,
                iterations: 40,
                seed: 6,
                ..LdaConfig::default()
            },
        )
        .unwrap();
        let labels: Vec<&str> = analysis.topics.iter().map(|t| t.label.as_str()).collect();
        assert!(labels.contains(&"Politics (pt)"), "labels: {labels:?}");
    }

    #[test]
    fn no_lang_topics_where_paper_found_none() {
        let v = vocab();
        assert!(analyze_topics_lang(
            dataset(),
            PlatformKind::Discord,
            Lang::Ja,
            &v,
            LdaConfig::default()
        )
        .is_none());
    }

    #[test]
    fn best_label_scores_overlap() {
        let terms: Vec<String> = ["join", "discord", "server", "come", "hentai"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (label, score) = best_label(PlatformKind::Discord, &terms);
        assert_eq!(label, "Hentai");
        assert!(score >= 0.9);
        let nonsense: Vec<String> = ["zzz", "qqq"].iter().map(|s| s.to_string()).collect();
        let (label, score) = best_label(PlatformKind::Discord, &nonsense);
        assert_eq!(label, "(unmatched)");
        assert_eq!(score, 0.0);
    }
}
