//! Tokenization and stopword removal (§4's preprocessing: "extract all
//! the English tweets, remove stop words").
//!
//! Collected tweets carry token ids against the workload vocabulary, so
//! the fast path filters ids directly ([`StopwordFilter`]); a plain-string
//! tokenizer ([`tokenize`]) is provided for library users bringing their
//! own text.

use chatlens_workload::Vocabulary;
use std::collections::HashSet;

/// The English stopword list used before LDA. Deliberately includes every
/// filler word the workload mixes into tweets, plus the usual suspects.
pub const STOPWORDS: &[&str] = &[
    "the", "to", "a", "of", "and", "in", "for", "is", "on", "with", "this", "that", "you", "we",
    "are", "it", "be", "at", "my", "our", "i", "me", "your", "from", "by", "as", "or", "an", "if",
    "so", "was", "were", "has", "have", "had", "not", "no", "yes", "do", "does", "did", "but",
    "they", "them", "their", "he", "she", "his", "her", "its", "am",
];

/// Lowercase and split a raw string into alphanumeric word tokens.
pub fn tokenize(text: &str) -> Vec<String> {
    text.to_lowercase()
        .split(|c: char| !c.is_alphanumeric())
        .filter(|w| !w.is_empty())
        .map(str::to_string)
        .collect()
}

/// Remove stopwords from a token list (string form).
pub fn remove_stopwords(tokens: &[String]) -> Vec<String> {
    let set: HashSet<&str> = STOPWORDS.iter().copied().collect();
    tokens
        .iter()
        .filter(|t| !set.contains(t.as_str()))
        .cloned()
        .collect()
}

/// Precomputed id-level stopword filter against a vocabulary.
#[derive(Debug, Clone)]
pub struct StopwordFilter {
    stop_ids: HashSet<u16>,
}

impl StopwordFilter {
    /// Build the filter for `vocab`.
    pub fn new(vocab: &Vocabulary) -> StopwordFilter {
        let stop_ids = STOPWORDS.iter().filter_map(|w| vocab.id(w)).collect();
        StopwordFilter { stop_ids }
    }

    /// Whether a token id is a stopword.
    pub fn is_stop(&self, id: u16) -> bool {
        self.stop_ids.contains(&id)
    }

    /// Filter a token id list.
    pub fn filter(&self, tokens: &[u16]) -> Vec<u16> {
        tokens
            .iter()
            .copied()
            .filter(|t| !self.is_stop(*t))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_splits_and_lowercases() {
        let toks = tokenize("Join NOW: free-crypto signals!! 100%");
        assert_eq!(
            toks,
            vec!["join", "now", "free", "crypto", "signals", "100"]
        );
    }

    #[test]
    fn tokenize_empty_and_punctuation() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("!!! ... ???").is_empty());
    }

    #[test]
    fn remove_stopwords_strings() {
        let toks = tokenize("join the group and earn money");
        let kept = remove_stopwords(&toks);
        assert_eq!(kept, vec!["join", "group", "earn", "money"]);
    }

    #[test]
    fn id_filter_matches_string_filter() {
        let vocab = Vocabulary::build();
        let filter = StopwordFilter::new(&vocab);
        // "the" and "to" are filler words interned in the vocabulary.
        let the = vocab.id("the").unwrap();
        let to = vocab.id("to").unwrap();
        let bitcoin = vocab.id("bitcoin").unwrap();
        assert!(filter.is_stop(the));
        assert!(filter.is_stop(to));
        assert!(!filter.is_stop(bitcoin));
        assert_eq!(filter.filter(&[the, bitcoin, to]), vec![bitcoin]);
    }

    #[test]
    fn every_workload_filler_is_a_stopword() {
        // If the workload mixes a filler word LDA can't remove, topics get
        // polluted; pin the invariant.
        for w in chatlens_workload::topics::FILLER {
            assert!(STOPWORDS.contains(w), "filler {w:?} missing from stopwords");
        }
    }
}
