//! Hot-path regression gate: `cargo run --release -p chatlens-bench`.
//!
//! Runs the collection campaign at bench scale three times, takes the
//! per-stage median of the campaign's own `stage.*` wall-clock counters
//! (recorded by [`Metrics::time_stage`] inside the study loop), times the
//! canonical report render the same way, and compares every stage against
//! the committed `BENCH_hotpath.json` baseline in the workspace root.
//!
//! Exit status is the CI contract:
//!
//! - any stage more than [`REGRESSION_PCT`]% slower than its baseline
//!   fails the run (exit 1) with a per-stage table on stderr;
//! - stages whose baseline is under [`NOISE_FLOOR_MICROS`] are reported
//!   but never gated — at bench scale they sit inside scheduler noise;
//! - a stage present in the baseline but absent from the run fails it
//!   (a stage silently vanishing is a harness bug, not a speedup).
//!
//! Refreshing the baseline (after an intentional perf change, or on a
//! machine with a different clock base):
//!
//! ```sh
//! BENCH_HOTPATH_UPDATE=1 cargo run --release -p chatlens-bench
//! ```
//!
//! then commit the rewritten `BENCH_hotpath.json` and justify the new
//! numbers in the PR description. `BENCH_OUT_DIR` relocates the record
//! (same knob the `par` bench honours); `BENCH_HOTPATH_SCALE` overrides
//! the campaign scale (default [`HOTPATH_SCALE`]).

use chatlens_core::run_study;
use chatlens_simnet::metrics::{keys, Metrics};
use chatlens_workload::ScenarioConfig;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Default campaign scale: double the Criterion bench scale, so every
/// stage clears the noise floor while three runs stay under ~10 s.
const HOTPATH_SCALE: f64 = 0.02;

/// Fail on a stage more than this much slower than its baseline.
const REGRESSION_PCT: u64 = 25;

/// Stages whose baseline median is below this are too small to gate.
const NOISE_FLOOR_MICROS: u64 = 10_000;

/// Campaign runs per measurement (median taken per stage).
const RUNS: usize = 3;

/// One campaign + report render, returning `stage name -> micros`.
fn measure(scale: f64) -> BTreeMap<String, u64> {
    let ds = run_study(ScenarioConfig::at_scale(scale));
    let mut report_clock = Metrics::new();
    report_clock.time_stage(keys::STAGE_REPORT, || ds.campaign_report());

    let mut out = BTreeMap::new();
    for (name, micros) in ds.metrics.stages().chain(report_clock.stages()) {
        if let Some(stage) = name
            .strip_prefix("stage.")
            .and_then(|n| n.strip_suffix(".micros"))
        {
            out.insert(stage.to_string(), micros);
        }
    }
    out
}

/// Median per stage across `RUNS` measurements.
fn medians(scale: f64) -> BTreeMap<String, u64> {
    let mut all: BTreeMap<String, Vec<u64>> = BTreeMap::new();
    for run in 0..RUNS {
        for (stage, micros) in measure(scale) {
            all.entry(stage).or_default().push(micros);
        }
        eprintln!("hotpath bench: run {}/{RUNS} done", run + 1);
    }
    all.into_iter()
        .map(|(stage, mut v)| {
            v.sort_unstable();
            let mid = v[v.len() / 2];
            (stage, mid)
        })
        .collect()
}

/// Render the machine-readable record (hand-rolled: no format crate in
/// the offline set, and the layout doubles as the baseline file format).
fn render_json(scale: f64, stages: &BTreeMap<String, u64>) -> String {
    let mut json = String::from("{\n  \"bench\": \"hotpath\",\n  \"scale\": ");
    let _ = write!(json, "{scale},\n  \"stages\": [\n");
    for (i, (stage, micros)) in stages.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"stage\": \"{stage}\", \"micros\": {micros}}}{}",
            if i + 1 == stages.len() { "" } else { "," }
        );
    }
    json.push_str("  ]\n}\n");
    json
}

/// Parse a record previously written by [`render_json`]. Line-oriented on
/// purpose: the only accepted input is this binary's own output.
fn parse_baseline(text: &str) -> BTreeMap<String, u64> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let Some(rest) = line.trim().strip_prefix("{\"stage\": \"") else {
            continue;
        };
        let Some((stage, rest)) = rest.split_once("\", \"micros\": ") else {
            continue;
        };
        let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
        if let Ok(micros) = digits.parse::<u64>() {
            out.insert(stage.to_string(), micros);
        }
    }
    out
}

fn main() {
    let scale = std::env::var("BENCH_HOTPATH_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(HOTPATH_SCALE);
    let dir = std::env::var("BENCH_OUT_DIR").unwrap_or_else(|_| {
        // `cargo run -p` keeps CWD at the invocation site; anchor the
        // record to the workspace root via the manifest dir instead.
        concat!(env!("CARGO_MANIFEST_DIR"), "/../..").to_string()
    });
    let path = format!("{dir}/BENCH_hotpath.json");

    let current = medians(scale);
    let update = std::env::var("BENCH_HOTPATH_UPDATE").is_ok_and(|v| v == "1");
    // lint:allow(D13) bench baselines live outside the simulation's durability domain
    let baseline_text = std::fs::read_to_string(&path).ok();

    if update || baseline_text.is_none() {
        let why = if update {
            "refresh requested"
        } else {
            "no baseline"
        };
        // lint:allow(D6, D13) the regression gate's whole job is maintaining this record
        std::fs::write(&path, render_json(scale, &current)).expect("write BENCH_hotpath.json");
        eprintln!("hotpath bench: wrote baseline {path} ({why})");
        for (stage, micros) in &current {
            eprintln!("hotpath bench: {stage:<10} {micros:>10} us  (baseline)");
        }
        return;
    }

    let baseline = parse_baseline(&baseline_text.unwrap_or_default());
    let mut failures = Vec::new();
    for (stage, &base) in &baseline {
        let Some(&now) = current.get(stage) else {
            failures.push(format!(
                "stage {stage:?} present in baseline but not in this run"
            ));
            continue;
        };
        let gated = base >= NOISE_FLOOR_MICROS;
        let limit = base + base * REGRESSION_PCT / 100;
        let verdict = if !gated {
            "ungated (noise floor)"
        } else if now > limit {
            failures.push(format!(
                "stage {stage:?} regressed: {now} us vs baseline {base} us (limit {limit} us)"
            ));
            "REGRESSED"
        } else {
            "ok"
        };
        eprintln!("hotpath bench: {stage:<10} {now:>10} us  baseline {base:>10} us  {verdict}");
    }
    for stage in current.keys().filter(|s| !baseline.contains_key(*s)) {
        eprintln!("hotpath bench: {stage:<10} (new stage, not in baseline — not gated)");
    }

    if failures.is_empty() {
        eprintln!("hotpath bench: all stages within {REGRESSION_PCT}% of baseline");
    } else {
        for f in &failures {
            eprintln!("hotpath bench: FAIL: {f}");
        }
        eprintln!(
            "hotpath bench: refresh with BENCH_HOTPATH_UPDATE=1 cargo run --release -p chatlens-bench \
             if the change is intentional"
        );
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_round_trips_through_the_record_format() {
        let stages: BTreeMap<String, u64> =
            [("monitor".to_string(), 123_456), ("join".to_string(), 7)]
                .into_iter()
                .collect();
        let json = render_json(0.02, &stages);
        assert_eq!(parse_baseline(&json), stages);
    }

    #[test]
    fn foreign_lines_do_not_parse_as_stages() {
        let parsed = parse_baseline("{\n \"bench\": \"hotpath\",\n \"scale\": 0.02\n}\n");
        assert!(parsed.is_empty());
    }
}
