//! Shared fixtures for the chatlens benchmark suite.
//!
//! Every artifact bench regenerates its table/figure from the same
//! pre-collected dataset, so the numbers measure *analysis* cost; the
//! pipeline benches measure the collection campaign itself.

use chatlens_core::{run_study, Dataset};
use chatlens_workload::{Ecosystem, ScenarioConfig};
use std::sync::OnceLock;

/// The benchmark scale: 1% of the paper (a full campaign at this scale
/// runs in about a second in release mode).
pub const BENCH_SCALE: f64 = 0.01;

/// The scenario every bench shares.
pub fn bench_scenario() -> ScenarioConfig {
    ScenarioConfig::at_scale(BENCH_SCALE)
}

/// A campaign dataset shared by all artifact benches (built once).
pub fn shared_dataset() -> &'static Dataset {
    static DS: OnceLock<Dataset> = OnceLock::new();
    DS.get_or_init(|| run_study(bench_scenario()))
}

/// A built ecosystem shared by transport-level benches.
pub fn shared_ecosystem() -> Ecosystem {
    Ecosystem::build(bench_scenario())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        assert!(shared_dataset().groups.len() > 500);
        assert!(shared_ecosystem().twitter.stats().total > 10_000);
    }
}
