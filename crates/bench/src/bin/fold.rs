//! Fold regression gate: `cargo run --release -p chatlens-bench --bin fold`.
//!
//! The incremental-analysis twin of the hotpath gate. Runs the campaign
//! at bench scale three times with the standard [`DayFold`] set threaded
//! through the day loop, measures
//!
//! - `batch_report` — wall micros to render every batch analysis
//!   fragment from the final dataset (the report-stage latency the
//!   incremental path amortises across the campaign),
//! - `fold_day` — total wall micros spent folding days, summed over all
//!   folds (`stage.fold.*` counters),
//! - `fold_finish` — wall micros to render every fragment from folded
//!   state (`stage.fold_finish.*` counters),
//! - `state_peak_bytes` — peak total encoded fold-state bytes at any day
//!   boundary (deterministic, so a byte-level regression gate),
//!
//! takes per-entry medians, and compares against the committed
//! `BENCH_fold.json` baseline in the workspace root. Entries more than
//! [`REGRESSION_PCT`]% above baseline fail the run (exit 1); entries
//! with baselines under [`NOISE_FLOOR`] are reported but never gated.
//!
//! Refresh after an intentional change (mirroring the hotpath knob):
//!
//! ```sh
//! BENCH_FOLD_UPDATE=1 cargo run --release -p chatlens-bench --bin fold
//! ```
//!
//! `BENCH_OUT_DIR` relocates the record; `BENCH_FOLD_SCALE` overrides
//! the campaign scale (default [`FOLD_SCALE`]).
//!
//! [`DayFold`]: chatlens_core::DayFold

use chatlens_analysis::{batch_fragments, standard_folds};
use chatlens_core::{run_study_folded, FoldDriver};
use chatlens_simnet::metrics::{keys, Metrics};
use chatlens_simnet::par::Pool;
use chatlens_workload::ScenarioConfig;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Default campaign scale — same as the hotpath gate.
const FOLD_SCALE: f64 = 0.02;

/// Fail on an entry more than this much above its baseline.
const REGRESSION_PCT: u64 = 25;

/// Entries whose baseline is below this are too small to gate.
const NOISE_FLOOR: u64 = 10_000;

/// Campaign runs per measurement (median taken per entry).
const RUNS: usize = 3;

/// One folded campaign + one batch report render, as `entry -> value`.
fn measure(scale: f64) -> BTreeMap<String, u64> {
    let mut driver = FoldDriver::new(standard_folds(), 1);
    let ds = run_study_folded(
        ScenarioConfig::at_scale(scale),
        Default::default(),
        &mut driver,
    );
    let outcome = driver.finish();

    let pool = Pool::new(1);
    let mut batch_clock = Metrics::new();
    batch_clock.time_stage(keys::STAGE_BATCH_REPORT, || batch_fragments(&ds, &pool));

    let sum_prefix = |prefix: &str| -> u64 {
        outcome
            .metrics
            .stages()
            .filter(|(name, _)| name.starts_with(prefix) && name.ends_with(".micros"))
            .map(|(_, micros)| micros)
            .sum()
    };
    let mut out = BTreeMap::new();
    out.insert(
        "batch_report".to_string(),
        batch_clock.stage_micros(keys::STAGE_BATCH_REPORT),
    );
    out.insert("fold_day".to_string(), sum_prefix("stage.fold."));
    out.insert("fold_finish".to_string(), sum_prefix("stage.fold_finish."));
    out.insert("state_peak_bytes".to_string(), outcome.peak_state_bytes);
    out
}

/// Median per entry across `RUNS` measurements.
fn medians(scale: f64) -> BTreeMap<String, u64> {
    let mut all: BTreeMap<String, Vec<u64>> = BTreeMap::new();
    for run in 0..RUNS {
        for (entry, value) in measure(scale) {
            all.entry(entry).or_default().push(value);
        }
        eprintln!("fold bench: run {}/{RUNS} done", run + 1);
    }
    all.into_iter()
        .map(|(entry, mut v)| {
            v.sort_unstable();
            let mid = v[v.len() / 2];
            (entry, mid)
        })
        .collect()
}

/// Render the machine-readable record (hand-rolled, mirroring the
/// hotpath gate: the layout doubles as the baseline file format).
fn render_json(scale: f64, entries: &BTreeMap<String, u64>) -> String {
    let mut json = String::from("{\n  \"bench\": \"fold\",\n  \"scale\": ");
    let _ = write!(json, "{scale},\n  \"entries\": [\n");
    for (i, (entry, value)) in entries.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"entry\": \"{entry}\", \"value\": {value}}}{}",
            if i + 1 == entries.len() { "" } else { "," }
        );
    }
    json.push_str("  ]\n}\n");
    json
}

/// Parse a record previously written by [`render_json`]. Line-oriented on
/// purpose: the only accepted input is this binary's own output.
fn parse_baseline(text: &str) -> BTreeMap<String, u64> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let Some(rest) = line.trim().strip_prefix("{\"entry\": \"") else {
            continue;
        };
        let Some((entry, rest)) = rest.split_once("\", \"value\": ") else {
            continue;
        };
        let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
        if let Ok(value) = digits.parse::<u64>() {
            out.insert(entry.to_string(), value);
        }
    }
    out
}

fn main() {
    let scale = std::env::var("BENCH_FOLD_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(FOLD_SCALE);
    let dir = std::env::var("BENCH_OUT_DIR").unwrap_or_else(|_| {
        // `cargo run -p` keeps CWD at the invocation site; anchor the
        // record to the workspace root via the manifest dir instead.
        concat!(env!("CARGO_MANIFEST_DIR"), "/../..").to_string()
    });
    let path = format!("{dir}/BENCH_fold.json");

    let current = medians(scale);
    let update = std::env::var("BENCH_FOLD_UPDATE").is_ok_and(|v| v == "1");
    // lint:allow(D13) bench baselines live outside the simulation's durability domain
    let baseline_text = std::fs::read_to_string(&path).ok();

    if update || baseline_text.is_none() {
        let why = if update {
            "refresh requested"
        } else {
            "no baseline"
        };
        // lint:allow(D6, D13) the regression gate's whole job is maintaining this record
        std::fs::write(&path, render_json(scale, &current)).expect("write BENCH_fold.json");
        eprintln!("fold bench: wrote baseline {path} ({why})");
        for (entry, value) in &current {
            eprintln!("fold bench: {entry:<16} {value:>10}  (baseline)");
        }
        return;
    }

    let baseline = parse_baseline(&baseline_text.unwrap_or_default());
    let mut failures = Vec::new();
    for (entry, &base) in &baseline {
        let Some(&now) = current.get(entry) else {
            failures.push(format!(
                "entry {entry:?} present in baseline but not in this run"
            ));
            continue;
        };
        let gated = base >= NOISE_FLOOR;
        let limit = base + base * REGRESSION_PCT / 100;
        let verdict = if !gated {
            "ungated (noise floor)"
        } else if now > limit {
            failures.push(format!(
                "entry {entry:?} regressed: {now} vs baseline {base} (limit {limit})"
            ));
            "REGRESSED"
        } else {
            "ok"
        };
        eprintln!("fold bench: {entry:<16} {now:>10}  baseline {base:>10}  {verdict}");
    }
    for entry in current.keys().filter(|e| !baseline.contains_key(*e)) {
        eprintln!("fold bench: {entry:<16} (new entry, not in baseline — not gated)");
    }

    if failures.is_empty() {
        eprintln!("fold bench: all entries within {REGRESSION_PCT}% of baseline");
    } else {
        for f in &failures {
            eprintln!("fold bench: FAIL: {f}");
        }
        eprintln!(
            "fold bench: refresh with BENCH_FOLD_UPDATE=1 cargo run --release -p chatlens-bench --bin fold \
             if the change is intentional"
        );
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_round_trips_through_the_record_format() {
        let entries: BTreeMap<String, u64> = [
            ("batch_report".to_string(), 123_456),
            ("state_peak_bytes".to_string(), 7),
        ]
        .into_iter()
        .collect();
        let json = render_json(0.02, &entries);
        assert_eq!(parse_baseline(&json), entries);
    }

    #[test]
    fn foreign_lines_do_not_parse_as_entries() {
        let parsed = parse_baseline("{\n \"bench\": \"fold\",\n \"scale\": 0.02\n}\n");
        assert!(parsed.is_empty());
    }
}
