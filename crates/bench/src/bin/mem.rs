//! Memory-budget regression gate:
//! `cargo run --release -p chatlens-bench --bin mem`.
//!
//! The accounting twin of the hotpath and fold gates. Runs the campaign
//! through the budget accountant at two scales — the bench "paper"
//! stand-in ([`MEM_SCALE`]) and its 10× stand-in — and records, per
//! scale:
//!
//! - `*_resident_peak_bytes` / `*_floor_bytes` — peak and floor of the
//!   accountant's encoded-size ledger under an unreachable ceiling (the
//!   unbounded probe: accounting on, eviction never triggered),
//! - `*_spill_partitions` / `*_spilled_bytes` / `*_faults` — the spill
//!   traffic under a tight ceiling (floor + a quarter of the unbounded
//!   headroom), which forces the eviction path through its paces.
//!
//! Every entry is a **deterministic** function of `(seed, scale)` — byte
//! counts and partition counts, not wall-clock — so a single run
//! suffices and any drift is a real accounting change, not noise.
//! Entries more than [`REGRESSION_PCT`]% above the committed
//! `BENCH_mem.json` baseline fail the run (exit 1).
//!
//! Refresh after an intentional change (mirroring the other gates):
//!
//! ```sh
//! BENCH_MEM_UPDATE=1 cargo run --release -p chatlens-bench --bin mem
//! ```
//!
//! `BENCH_OUT_DIR` relocates the record; `BENCH_MEM_SCALE` overrides the
//! paper stand-in scale (the 10× stand-in always tracks it).

use chatlens_core::budget::{BudgetLimit, BudgetPolicy};
use chatlens_core::{run_study_budgeted, CampaignConfig};
use chatlens_workload::ScenarioConfig;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::PathBuf;

/// Paper stand-in scale — same as the hotpath and fold gates.
const MEM_SCALE: f64 = 0.02;

/// Fail on an entry more than this much above its baseline.
const REGRESSION_PCT: u64 = 25;

/// Fresh scratch directory for one budgeted run's spill files.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("chatlens-bench-mem-{tag}-{}", std::process::id()));
    // lint:allow(D6, D13) bench spill scratch lives outside the simulation's durability domain
    let _ = std::fs::remove_dir_all(&dir);
    // lint:allow(D6, D13) bench spill scratch lives outside the simulation's durability domain
    std::fs::create_dir_all(&dir).expect("bench scratch dir");
    dir
}

/// One scale's entries: the unbounded probe, then a tight-ceiling run.
fn measure(scale: f64, prefix: &str, out: &mut BTreeMap<String, u64>) {
    let scenario = ScenarioConfig::at_scale(scale);

    // Unbounded probe: the accountant meters every store but the ceiling
    // is unreachable, so eviction never fires — this measures the true
    // resident peak the budget must beat.
    let probe_dir = scratch(&format!("{prefix}-probe"));
    let probe = run_study_budgeted(
        scenario.clone(),
        CampaignConfig::default(),
        &BudgetPolicy::new(BudgetLimit::Bytes(u64::MAX), &probe_dir),
    )
    .expect("an unreachable ceiling never refuses");
    assert_eq!(probe.stats.evictions, 0, "nothing evicts under u64::MAX");
    out.insert(
        format!("{prefix}_resident_peak_bytes"),
        probe.stats.resident_peak,
    );
    out.insert(format!("{prefix}_floor_bytes"), probe.stats.floor);

    // Tight ceiling — floor plus half of the unbounded headroom — forces
    // the spill/fault machinery through a realistic workout. (Tighter
    // ceilings run into the warm residency window, which is deliberately
    // not evictable: the accountant refuses instead.)
    let limit = probe.stats.floor + (probe.stats.resident_peak - probe.stats.floor) / 2;
    let spill_dir = scratch(&format!("{prefix}-tight"));
    let run = run_study_budgeted(
        scenario,
        CampaignConfig::default(),
        &BudgetPolicy::new(BudgetLimit::Bytes(limit), &spill_dir),
    )
    .expect("a ceiling above the floor spills, never refuses");
    assert!(run.stats.partitions > 0, "the tight ceiling must spill");
    out.insert(format!("{prefix}_spill_partitions"), run.stats.partitions);
    out.insert(format!("{prefix}_spilled_bytes"), run.stats.spilled_bytes);
    out.insert(format!("{prefix}_faults"), run.stats.faults);

    // lint:allow(D6, D13) bench spill scratch lives outside the simulation's durability domain
    let _ = std::fs::remove_dir_all(&probe_dir);
    // lint:allow(D6, D13) bench spill scratch lives outside the simulation's durability domain
    let _ = std::fs::remove_dir_all(&spill_dir);
}

/// Render the machine-readable record (hand-rolled, mirroring the other
/// gates: the layout doubles as the baseline file format).
fn render_json(scale: f64, entries: &BTreeMap<String, u64>) -> String {
    let mut json = String::from("{\n  \"bench\": \"mem\",\n  \"scale\": ");
    let _ = write!(json, "{scale},\n  \"entries\": [\n");
    for (i, (entry, value)) in entries.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"entry\": \"{entry}\", \"value\": {value}}}{}",
            if i + 1 == entries.len() { "" } else { "," }
        );
    }
    json.push_str("  ]\n}\n");
    json
}

/// Parse a record previously written by [`render_json`]. Line-oriented on
/// purpose: the only accepted input is this binary's own output.
fn parse_baseline(text: &str) -> BTreeMap<String, u64> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let Some(rest) = line.trim().strip_prefix("{\"entry\": \"") else {
            continue;
        };
        let Some((entry, rest)) = rest.split_once("\", \"value\": ") else {
            continue;
        };
        let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
        if let Ok(value) = digits.parse::<u64>() {
            out.insert(entry.to_string(), value);
        }
    }
    out
}

fn main() {
    let scale = std::env::var("BENCH_MEM_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(MEM_SCALE);
    let dir = std::env::var("BENCH_OUT_DIR").unwrap_or_else(|_| {
        // `cargo run -p` keeps CWD at the invocation site; anchor the
        // record to the workspace root via the manifest dir instead.
        concat!(env!("CARGO_MANIFEST_DIR"), "/../..").to_string()
    });
    let path = format!("{dir}/BENCH_mem.json");

    let mut current = BTreeMap::new();
    measure(scale, "paper", &mut current);
    eprintln!("mem bench: paper stand-in (scale {scale}) done");
    measure(scale * 10.0, "x10", &mut current);
    eprintln!("mem bench: 10x stand-in (scale {}) done", scale * 10.0);

    let update = std::env::var("BENCH_MEM_UPDATE").is_ok_and(|v| v == "1");
    // lint:allow(D13) bench baselines live outside the simulation's durability domain
    let baseline_text = std::fs::read_to_string(&path).ok();

    if update || baseline_text.is_none() {
        let why = if update {
            "refresh requested"
        } else {
            "no baseline"
        };
        // lint:allow(D6, D13) the regression gate's whole job is maintaining this record
        std::fs::write(&path, render_json(scale, &current)).expect("write BENCH_mem.json");
        eprintln!("mem bench: wrote baseline {path} ({why})");
        for (entry, value) in &current {
            eprintln!("mem bench: {entry:<26} {value:>14}  (baseline)");
        }
        return;
    }

    let baseline = parse_baseline(&baseline_text.unwrap_or_default());
    let mut failures = Vec::new();
    for (entry, &base) in &baseline {
        let Some(&now) = current.get(entry) else {
            failures.push(format!(
                "entry {entry:?} present in baseline but not in this run"
            ));
            continue;
        };
        // Every entry is deterministic — no noise floor, everything gates.
        let limit = base + base * REGRESSION_PCT / 100;
        let verdict = if now > limit {
            failures.push(format!(
                "entry {entry:?} regressed: {now} vs baseline {base} (limit {limit})"
            ));
            "REGRESSED"
        } else {
            "ok"
        };
        eprintln!("mem bench: {entry:<26} {now:>14}  baseline {base:>14}  {verdict}");
    }
    for entry in current.keys().filter(|e| !baseline.contains_key(*e)) {
        eprintln!("mem bench: {entry:<26} (new entry, not in baseline — not gated)");
    }

    if failures.is_empty() {
        eprintln!("mem bench: all entries within {REGRESSION_PCT}% of baseline");
    } else {
        for f in &failures {
            eprintln!("mem bench: FAIL: {f}");
        }
        eprintln!(
            "mem bench: refresh with BENCH_MEM_UPDATE=1 cargo run --release -p chatlens-bench --bin mem \
             if the change is intentional"
        );
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_round_trips_through_the_record_format() {
        let entries: BTreeMap<String, u64> = [
            ("paper_resident_peak_bytes".to_string(), 123_456),
            ("x10_spill_partitions".to_string(), 30),
        ]
        .into_iter()
        .collect();
        let json = render_json(0.02, &entries);
        assert_eq!(parse_baseline(&json), entries);
    }

    #[test]
    fn foreign_lines_do_not_parse_as_entries() {
        let parsed = parse_baseline("{\n \"bench\": \"mem\",\n \"scale\": 0.02\n}\n");
        assert!(parsed.is_empty());
    }
}
