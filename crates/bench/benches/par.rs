//! Timing record for the deterministic parallel runtime (`simnet::par`).
//!
//! Unlike the Criterion benches, this harness emits a machine-readable
//! `BENCH_par.json` in the workspace root (override the directory with
//! `BENCH_OUT_DIR`): one record per (stage, thread count) with wall-clock
//! micros from `simnet::metrics`, plus the speedup over the serial run.
//! CI consumes it; humans get the same numbers on stderr.

use chatlens_analysis::{topics, LdaConfig, LdaModel};
use chatlens_bench::{bench_scenario, shared_dataset};
use chatlens_core::CampaignConfig;
use chatlens_core::{run_study_with, Dataset};
use chatlens_platforms::id::PlatformKind;
use chatlens_simnet::metrics::Metrics;
use chatlens_simnet::par::Pool;
use chatlens_workload::Vocabulary;
use std::fmt::Write as _;

/// One timed measurement, destined for the JSON record.
struct Sample {
    stage: &'static str,
    threads: usize,
    micros: u64,
}

/// Median-of-3 wall-clock for `f`, recorded through `Metrics::time_stage`
/// so the benches exercise the same timing path as the campaign.
fn timed<R>(stage: &'static str, threads: usize, mut f: impl FnMut() -> R) -> Sample {
    let mut runs = Vec::new();
    for i in 0..3 {
        let mut m = Metrics::new();
        let name = format!("{stage}.r{i}");
        m.time_stage(&name, &mut f);
        runs.push(m.stage_micros(&name));
    }
    runs.sort_unstable();
    Sample {
        stage,
        threads,
        micros: runs[1],
    }
}

fn lda_corpus(ds: &Dataset) -> Vec<Vec<u16>> {
    let vocab = Vocabulary::build();
    topics::english_corpus(ds, PlatformKind::Telegram, &vocab)
}

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let thread_counts: &[usize] = if cores >= 4 { &[1, 2, 4] } else { &[1, 2] };
    let mut samples = Vec::new();

    // Raw pool throughput: a compute-bound par_map over a large input.
    let items: Vec<u64> = (0..200_000u64).collect();
    for &t in thread_counts {
        let pool = Pool::new(t);
        samples.push(timed("par_map", t, || {
            pool.par_map(&items, |&x| {
                let mut acc = x;
                for _ in 0..64 {
                    acc = acc.wrapping_mul(6364136223846793005).rotate_left(13);
                }
                acc
            })
        }));
    }

    // The LDA stage on the bench-scale campaign corpus — the acceptance
    // path for the parallel runtime.
    let ds = shared_dataset();
    let docs = lda_corpus(ds);
    let vocab_len = docs
        .iter()
        .flatten()
        .map(|&w| w as usize + 1)
        .max()
        .unwrap_or(1);
    for &t in thread_counts {
        samples.push(timed("lda", t, || {
            LdaModel::fit(
                &docs,
                vocab_len,
                LdaConfig {
                    k: 8,
                    iterations: 10,
                    seed: 7,
                    threads: t,
                    ..LdaConfig::default()
                },
            )
        }));
    }

    // Whole campaign at bench scale, serial vs max threads.
    for &t in thread_counts {
        samples.push(timed("campaign", t, || {
            run_study_with(
                bench_scenario(),
                CampaignConfig {
                    threads: t,
                    ..CampaignConfig::default()
                },
            )
        }));
    }

    // Render the JSON record by hand (no format crate in the offline set).
    let mut json = String::from("{\n  \"bench\": \"par\",\n  \"cores\": ");
    let _ = write!(json, "{cores},\n  \"samples\": [\n");
    for (i, s) in samples.iter().enumerate() {
        let serial = samples
            .iter()
            .find(|o| o.stage == s.stage && o.threads == 1)
            .map_or(s.micros, |o| o.micros);
        let speedup = serial as f64 / s.micros.max(1) as f64;
        let _ = writeln!(
            json,
            "    {{\"stage\": \"{}\", \"threads\": {}, \"micros\": {}, \"speedup\": {:.3}}}{}",
            s.stage,
            s.threads,
            s.micros,
            speedup,
            if i + 1 == samples.len() { "" } else { "," }
        );
        eprintln!(
            "par bench: {:<8} threads={} {:>10} us  ({:.2}x)",
            s.stage, s.threads, s.micros, speedup
        );
    }
    json.push_str("  ]\n}\n");

    let dir = std::env::var("BENCH_OUT_DIR").unwrap_or_else(|_| {
        // `cargo bench` runs with CWD = the bench package; the record
        // belongs in the workspace root two levels up.
        concat!(env!("CARGO_MANIFEST_DIR"), "/../..").to_string()
    });
    let path = format!("{dir}/BENCH_par.json");
    std::fs::write(&path, json).expect("write BENCH_par.json");
    eprintln!("par bench: wrote {path}");
}
