//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! dual-API merge, monitoring cadence, search cadence, and the LDA topic
//! count. (Runtime is measured here; the quality deltas are reported by
//! `cargo run --release --example ablation_study`.)

use chatlens_analysis::{LdaConfig, LdaModel};
use chatlens_bench::{bench_scenario, shared_dataset};
use chatlens_core::{run_study_with, CampaignConfig};
use chatlens_platforms::id::PlatformKind;
use chatlens_workload::Vocabulary;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_discovery");
    g.sample_size(10);
    for (name, use_search, use_stream) in [
        ("merged", true, true),
        ("search_only", true, false),
        ("stream_only", false, true),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                black_box(run_study_with(
                    bench_scenario(),
                    CampaignConfig {
                        use_search,
                        use_stream,
                        ..CampaignConfig::default()
                    },
                ))
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("ablation_cadence");
    g.sample_size(10);
    for days in [1u32, 3, 7] {
        g.bench_function(format!("monitor_every_{days}d"), |b| {
            b.iter(|| {
                black_box(run_study_with(
                    bench_scenario(),
                    CampaignConfig {
                        monitor_interval_days: days,
                        ..CampaignConfig::default()
                    },
                ))
            })
        });
    }
    for hours in [1u32, 6, 24] {
        g.bench_function(format!("search_every_{hours}h"), |b| {
            b.iter(|| {
                black_box(run_study_with(
                    bench_scenario(),
                    CampaignConfig {
                        search_interval_hours: hours,
                        ..CampaignConfig::default()
                    },
                ))
            })
        });
    }
    g.finish();

    // LDA K-sweep over the shared dataset's Discord corpus (the paper's
    // footnote 1 re-ran with up to 50 topics).
    let mut g = c.benchmark_group("ablation_lda_k");
    g.sample_size(10);
    let ds = shared_dataset();
    let vocab = Vocabulary::build();
    let docs = chatlens_analysis::topics::english_corpus(ds, PlatformKind::Discord, &vocab);
    for k in [5usize, 10, 25, 50] {
        g.bench_function(format!("k{k}"), |b| {
            b.iter(|| {
                black_box(LdaModel::fit(
                    &docs,
                    vocab.len(),
                    LdaConfig {
                        k,
                        iterations: 20,
                        seed: 9,
                        ..LdaConfig::default()
                    },
                ))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
