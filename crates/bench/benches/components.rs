//! Micro-benchmarks of the substrate components.

use chatlens_platforms::id::PlatformKind;
use chatlens_platforms::invite::{parse_invite_url, InviteCode};
use chatlens_platforms::wire::WireDoc;
use chatlens_simnet::dist::{Categorical, LogNormal, Poisson, Zipf};
use chatlens_simnet::hash::sha256;
use chatlens_simnet::rng::Rng;
use chatlens_simnet::time::{SimDuration, SimTime};
use chatlens_simnet::transport::{Client, Request, Response, Router};
use chatlens_simnet::Engine;
use chatlens_twitter::{Lang, Tweet, TweetId, TwitterUserId};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench_rng_and_dists(c: &mut Criterion) {
    let mut g = c.benchmark_group("rng");
    g.throughput(Throughput::Elements(1));
    let mut rng = Rng::new(1);
    g.bench_function("next_u64", |b| b.iter(|| black_box(rng.next_u64())));
    g.bench_function("below_1000", |b| b.iter(|| black_box(rng.below(1000))));
    g.bench_function("normal", |b| b.iter(|| black_box(rng.normal())));
    let cat = Categorical::new(&(1..=100).map(f64::from).collect::<Vec<_>>());
    g.bench_function("categorical_100", |b| {
        b.iter(|| black_box(cat.sample(&mut rng)))
    });
    let zipf = Zipf::new(10_000, 1.15);
    g.bench_function("zipf_10k", |b| b.iter(|| black_box(zipf.sample(&mut rng))));
    let ln = LogNormal::from_median(10.0, 1.5);
    g.bench_function("lognormal", |b| b.iter(|| black_box(ln.sample(&mut rng))));
    let poisson = Poisson::new(8.0);
    g.bench_function("poisson_8", |b| {
        b.iter(|| black_box(poisson.sample(&mut rng)))
    });
    g.finish();
}

fn bench_hash(c: &mut Criterion) {
    let mut g = c.benchmark_group("sha256");
    for size in [32usize, 1024, 65_536] {
        let data = vec![0xabu8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("{size}B"), |b| b.iter(|| black_box(sha256(&data))));
    }
    g.finish();
}

fn bench_parsing(c: &mut Criterion) {
    let mut g = c.benchmark_group("parsing");
    let mut rng = Rng::new(2);
    let urls: Vec<String> = (0..256)
        .map(|i| InviteCode::generate(PlatformKind::ALL[i % 3], &mut rng).url())
        .collect();
    g.throughput(Throughput::Elements(urls.len() as u64));
    g.bench_function("parse_invite_url_x256", |b| {
        b.iter(|| {
            for u in &urls {
                black_box(parse_invite_url(u));
            }
        })
    });
    let tweet = Tweet {
        id: TweetId(123_456),
        author: TwitterUserId(42),
        at: SimTime::from_secs(1_586_000_000),
        lang: Lang::En,
        hashtags: 2,
        mentions: 1,
        retweet_of: Some(TweetId(99)),
        urls: vec!["https://discord.gg/abc123XY".into()],
        tokens: (0..12).collect(),
        is_control: false,
    };
    let encoded = tweet.encode();
    g.throughput(Throughput::Elements(1));
    g.bench_function("tweet_encode", |b| b.iter(|| black_box(tweet.encode())));
    g.bench_function("tweet_decode", |b| {
        b.iter(|| black_box(Tweet::decode(&encoded)))
    });
    let doc = WireDoc::new("wa-landing")
        .field("title", "Crypto Signals 2020")
        .field("size", 142u32)
        .field("creator_cc", "BR")
        .field("creator_phone", "+5511987654321");
    let body = doc.render();
    g.bench_function("wire_render", |b| b.iter(|| black_box(doc.render())));
    g.bench_function("wire_parse", |b| {
        b.iter(|| black_box(WireDoc::parse(&body)))
    });
    g.finish();
}

fn bench_engine_and_transport(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("schedule_drain_10k", |b| {
        b.iter(|| {
            let mut engine: Engine<u32> = Engine::new(SimTime::EPOCH);
            for i in 0..10_000u32 {
                engine.schedule_in(SimDuration::secs(u64::from(i % 977)), i);
            }
            let mut sum = 0u64;
            engine.run_to_exhaustion(|_, ev| sum += u64::from(ev));
            black_box(sum)
        })
    });
    g.finish();

    let mut g = c.benchmark_group("transport");
    g.throughput(Throughput::Elements(1));
    let mut svc = |_: SimTime, req: &Request| Response::ok(format!("echo\npath: {}", req.endpoint));
    g.bench_function("client_roundtrip", |b| {
        let mut client = Client::plain(7, SimTime::EPOCH);
        let req = Request::new("svc/op").with("code", "abc");
        b.iter(|| {
            let mut router = Router::new();
            router.mount("svc", &mut svc);
            black_box(client.call(&mut router, SimTime::EPOCH, &req).unwrap())
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_rng_and_dists,
    bench_hash,
    bench_parsing,
    bench_engine_and_transport
);
criterion_main!(benches);
