//! One benchmark per table and figure: the cost of regenerating each
//! artifact from an already-collected dataset (the DESIGN.md experiment
//! index maps each to its implementing modules).

use chatlens_analysis::LdaConfig;
use chatlens_analysis::{content, discovery, lifecycle, membership, messages, pii, topics};
use chatlens_bench::shared_dataset;
use chatlens_platforms::id::PlatformKind;
use chatlens_platforms::spec::PlatformSpec;
use chatlens_workload::Vocabulary;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_artifacts(c: &mut Criterion) {
    let ds = shared_dataset();
    let mut g = c.benchmark_group("artifacts");

    g.bench_function("table1_specs", |b| {
        b.iter(|| black_box(PlatformSpec::all()))
    });

    g.bench_function("table2_summary", |b| {
        b.iter(|| {
            for kind in PlatformKind::ALL {
                black_box(ds.summary(kind));
            }
            black_box(ds.totals())
        })
    });

    g.bench_function("fig1_daily_discovery", |b| {
        b.iter(|| {
            for kind in PlatformKind::ALL {
                black_box(discovery::daily_discovery(ds, kind));
            }
        })
    });

    g.bench_function("fig2_tweets_per_url", |b| {
        b.iter(|| {
            for kind in PlatformKind::ALL {
                black_box(discovery::tweets_per_url(ds, kind));
            }
        })
    });

    g.bench_function("fig3_content_features", |b| {
        b.iter(|| {
            for kind in PlatformKind::ALL {
                black_box(content::platform_features(ds, kind));
            }
            black_box(content::control_features(ds))
        })
    });

    g.bench_function("fig4_language_shares", |b| {
        b.iter(|| {
            for kind in PlatformKind::ALL {
                black_box(content::language_shares(ds, kind));
            }
        })
    });

    g.bench_function("fig5_staleness", |b| {
        b.iter(|| {
            for kind in PlatformKind::ALL {
                black_box(lifecycle::staleness_days(ds, kind));
            }
        })
    });

    g.bench_function("fig6_revocation", |b| {
        b.iter(|| {
            for kind in PlatformKind::ALL {
                black_box(lifecycle::revocation_stats(ds, kind));
            }
        })
    });

    g.bench_function("fig7_membership", |b| {
        b.iter(|| {
            for kind in PlatformKind::ALL {
                black_box(membership::member_counts(ds, kind));
                black_box(membership::online_fractions(ds, kind));
                black_box(membership::growth(ds, kind));
            }
        })
    });

    g.bench_function("fig8_message_types", |b| {
        b.iter(|| {
            for kind in PlatformKind::ALL {
                black_box(messages::kind_shares(ds, kind));
            }
        })
    });

    g.bench_function("fig9_volumes", |b| {
        b.iter(|| {
            for kind in PlatformKind::ALL {
                black_box(messages::msgs_per_group_day(ds, kind));
                black_box(messages::user_activity(ds, kind));
            }
        })
    });

    g.bench_function("table4_exposure", |b| {
        b.iter(|| black_box(pii::exposure_table(ds)))
    });

    g.bench_function("table5_linked_accounts", |b| {
        b.iter(|| black_box(pii::linked_accounts_table(ds)))
    });

    g.finish();

    // Table 3 (LDA) is orders of magnitude heavier; its own group keeps
    // the sample count low.
    let mut g = c.benchmark_group("artifacts_lda");
    g.sample_size(10);
    let vocab = Vocabulary::build();
    g.bench_function("table3_lda_discord", |b| {
        b.iter(|| {
            black_box(topics::analyze_topics(
                ds,
                PlatformKind::Discord,
                &vocab,
                LdaConfig {
                    k: 10,
                    iterations: 30,
                    seed: 1,
                    ..LdaConfig::default()
                },
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_artifacts);
criterion_main!(benches);
