//! End-to-end pipeline benchmarks: world building and the full collection
//! campaign at the benchmark scale, plus the per-round costs of each
//! campaign component.

use chatlens_bench::{bench_scenario, shared_ecosystem};
use chatlens_core::discovery::Discovery;
use chatlens_core::net::Net;
use chatlens_core::{run_study, run_study_with, CampaignConfig};
use chatlens_simnet::time::SimDuration;
use chatlens_workload::Ecosystem;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);

    g.bench_function("ecosystem_build", |b| {
        b.iter(|| black_box(Ecosystem::build(bench_scenario())))
    });

    g.bench_function("full_study", |b| {
        b.iter(|| black_box(run_study(bench_scenario())))
    });

    g.bench_function("full_study_no_faults", |b| {
        b.iter(|| {
            black_box(run_study_with(
                bench_scenario(),
                CampaignConfig {
                    faults: chatlens_simnet::fault::FaultInjector::none(),
                    ..CampaignConfig::default()
                },
            ))
        })
    });

    // One search round against a fresh (backlog-heavy) index vs an
    // incremental one.
    g.bench_function("search_round_backlog", |b| {
        let mut eco = shared_ecosystem();
        let start = eco.window.start_time();
        b.iter(|| {
            let mut net = Net::reliable(1, start);
            let mut disco = Discovery::new(start);
            disco
                .run_search(&mut net, &mut eco, start + SimDuration::hours(1))
                .unwrap();
            black_box(disco.group_count())
        })
    });

    g.bench_function("search_round_incremental", |b| {
        let mut eco = shared_ecosystem();
        let start = eco.window.start_time();
        let mut net = Net::reliable(2, start);
        let mut disco = Discovery::new(start);
        disco
            .run_search(&mut net, &mut eco, start + SimDuration::hours(1))
            .unwrap();
        let mut hour = 2u64;
        b.iter(|| {
            disco
                .run_search(&mut net, &mut eco, start + SimDuration::hours(hour))
                .unwrap();
            hour += 1;
            black_box(disco.group_count())
        })
    });

    g.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
