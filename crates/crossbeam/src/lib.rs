//! Vendored offline shim exposing the subset of the `crossbeam` API this
//! workspace uses — `crossbeam::scope` with spawn closures that receive the
//! scope handle — implemented over `std::thread::scope`.

use std::any::Any;

/// Error type carried by a panicked scope (mirrors crossbeam's boxed payload).
pub type PanicPayload = Box<dyn Any + Send + 'static>;

/// A handle to a thread scope; passed to `scope` closures and to each
/// spawned thread's closure (crossbeam convention: `|scope|`, `|_|`).
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Clone for Scope<'scope, 'env> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives the scope handle so it
    /// can spawn further threads, matching crossbeam's signature.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let handle = Scope { inner: self.inner };
        self.inner.spawn(move || f(&handle))
    }
}

/// Creates a scope in which threads can borrow from the enclosing stack
/// frame; joins all spawned threads before returning. Unlike crossbeam's
/// original (which collects child panics), a child panic propagates after
/// the join — so the `Err` arm is never constructed, but the `Result`
/// return type preserves call-site compatibility (`.expect(..)`).
pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn scoped_threads_borrow_stack_data() {
        let total = AtomicU64::new(0);
        super::scope(|scope| {
            for i in 0..4u64 {
                let total = &total;
                scope.spawn(move |_| {
                    total.fetch_add(i, Ordering::Relaxed);
                });
            }
        })
        .expect("scope");
        assert_eq!(total.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn join_handles_return_values() {
        let out = super::scope(|scope| {
            let h = scope.spawn(|_| 41 + 1);
            h.join().expect("join")
        })
        .expect("scope");
        assert_eq!(out, 42);
    }
}
