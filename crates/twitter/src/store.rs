//! The time-indexed tweet store and its three feed endpoints.
//!
//! Mounted on the transport as `twitter`, the store serves:
//!
//! * `twitter/search` — the Search API (§3.1): returns tweets matching a
//!   host pattern posted in the **seven days** before the query instant,
//!   paginated (100/page), with `since_id` for incremental collection.
//!   Coverage is *incomplete*: each tweet is deterministically either
//!   visible to search or not (same answer on every query), modelling the
//!   well-known gap between search and streaming results.
//! * `twitter/stream` — the filtered Streaming API: tweets matching the
//!   track patterns in a time range, minus its own deterministic losses
//!   (disconnects, rate spikes).
//! * `twitter/sample` — the 1% sample stream used as the control dataset.
//!
//! Because each feed's misses are a *fixed* property of the tweet, merging
//! search and stream genuinely recovers more than either alone — the exact
//! discrepancy that made the paper's authors merge the two feeds.

use crate::tweet::{Tweet, TweetId};
use chatlens_platforms::wire::WireDoc;
use chatlens_simnet::rng::SplitMix64;
use chatlens_simnet::time::{SimDuration, SimTime};
use chatlens_simnet::transport::{Request, Response, Service, Status};

/// The six host patterns Twitter is asked to track (§3.1). The store
/// matches on these directly — like Twitter's `track` parameter — while
/// the collector separately *parses and validates* every URL.
pub const TRACK_HOSTS: [&str; 6] = [
    "chat.whatsapp.com",
    "t.me",
    "telegram.me",
    "telegram.org",
    "discord.gg",
    "discord.com",
];

/// Tweets per page on the search endpoint (the v1.1 API's maximum).
pub const SEARCH_PAGE: usize = 100;
/// Tweets per page on the stream/sample drain endpoints.
pub const STREAM_PAGE: usize = 500;
/// The search index horizon: queries see seven days back (§3.1).
pub const SEARCH_WINDOW: SimDuration = SimDuration::days(7);

/// Whether `url` matches one of the tracked host patterns; returns the
/// matching host.
pub fn matches_track(url: &str) -> Option<&'static str> {
    // Twitter's track matching is effectively substring-based on the
    // entity's expanded URL host.
    TRACK_HOSTS
        .into_iter()
        .find(|host| url_host(url).is_some_and(|h| h.eq_ignore_ascii_case(host)))
}

fn url_host(url: &str) -> Option<&str> {
    let rest = url
        .strip_prefix("https://")
        .or_else(|| url.strip_prefix("http://"))
        .unwrap_or(url);
    let rest = if rest.len() >= 4 && rest[..4].eq_ignore_ascii_case("www.") {
        &rest[4..]
    } else {
        rest
    };
    let end = rest.find(['/', '?', '#']).unwrap_or(rest.len());
    let host = &rest[..end];
    (!host.is_empty()).then_some(host)
}

/// Aggregate statistics over the stored tweets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Total tweets stored (matching + control).
    pub total: usize,
    /// Tweets carrying at least one tracked URL.
    pub matching: usize,
    /// Control-sample tweets.
    pub control: usize,
}

/// The tweet store. Tweets must be pushed in chronological order (the
/// workload generator emits them day by day); ids are assigned densely in
/// push order, so id order == time order, as on real Twitter snowflakes.
pub struct TweetStore {
    tweets: Vec<Tweet>,
    /// Per-tweet bitmask over [`TRACK_HOSTS`]: bit `i` is set iff some
    /// URL's host equals `TRACK_HOSTS[i]` (case-insensitive). Computed
    /// once at push; the search filter runs hundreds of millions of
    /// host-match tests per campaign and must not re-parse URLs for each.
    host_bits: Vec<u8>,
    /// Indices of tweets with >= 1 tracked URL, in id order.
    matching: Vec<u32>,
    /// Indices of control tweets, in id order.
    control: Vec<u32>,
    /// Probability a tweet is invisible to the Search API.
    pub search_miss: f64,
    /// Probability a tweet is lost by the Streaming API.
    pub stream_miss: f64,
    salt: u64,
}

impl TweetStore {
    /// An empty store with the given deterministic feed-miss rates and a
    /// salt decorrelating the miss patterns across scenario seeds.
    pub fn new(search_miss: f64, stream_miss: f64, salt: u64) -> TweetStore {
        TweetStore {
            tweets: Vec::new(),
            host_bits: Vec::new(),
            matching: Vec::new(),
            control: Vec::new(),
            search_miss: search_miss.clamp(0.0, 1.0),
            stream_miss: stream_miss.clamp(0.0, 1.0),
            salt,
        }
    }

    /// A store with perfect feeds (tests).
    pub fn perfect() -> TweetStore {
        TweetStore::new(0.0, 0.0, 0)
    }

    /// Append a tweet; its `id` field is overwritten with the assigned id.
    ///
    /// # Panics
    /// Panics if `tweet.at` precedes the previous tweet's time.
    pub fn push(&mut self, mut tweet: Tweet) -> TweetId {
        if let Some(last) = self.tweets.last() {
            assert!(
                tweet.at >= last.at,
                "tweets must be pushed chronologically ({} < {})",
                tweet.at,
                last.at
            );
        }
        let idx = self.tweets.len() as u32;
        tweet.id = TweetId(u64::from(idx));
        let mut bits = 0u8;
        for url in &tweet.urls {
            if let Some(h) = url_host(url) {
                for (b, host) in TRACK_HOSTS.iter().enumerate() {
                    if h.eq_ignore_ascii_case(host) {
                        bits |= 1 << b;
                    }
                }
            }
        }
        if tweet.is_control {
            self.control.push(idx);
        } else if bits != 0 {
            self.matching.push(idx);
        }
        self.tweets.push(tweet);
        self.host_bits.push(bits);
        TweetId(u64::from(idx))
    }

    /// Borrow a tweet by id.
    pub fn get(&self, id: TweetId) -> Option<&Tweet> {
        self.tweets.get(id.0 as usize)
    }

    /// All tweets, in id order.
    pub fn tweets(&self) -> &[Tweet] {
        &self.tweets
    }

    /// Store statistics.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            total: self.tweets.len(),
            matching: self.matching.len(),
            control: self.control.len(),
        }
    }

    /// Encoded size of the world feed in bytes: the sum of every tweet's
    /// wire encoding plus the per-tweet index bytes (`host_bits` and the
    /// `matching`/`control` id lists). This is the memory-budget
    /// accounting floor for the store — a deterministic function of the
    /// scenario, never of allocator behavior.
    pub fn encoded_bytes(&self) -> u64 {
        let wire: u64 = self.tweets.iter().map(|t| t.encode().len() as u64).sum();
        wire + self.host_bits.len() as u64
            + 4 * (self.matching.len() as u64 + self.control.len() as u64)
    }

    fn feed_visible(&self, id: u32, feed_salt: u64, miss: f64) -> bool {
        if miss <= 0.0 {
            return true;
        }
        // One SplitMix64 step keyed by (tweet, feed, scenario salt): the
        // same tweet gets the same answer on every query.
        let mut sm = SplitMix64::new(u64::from(id) ^ feed_salt ^ self.salt);
        let u = (sm.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u >= miss
    }

    /// Whether the Search API can see this tweet (stable per tweet).
    pub fn search_visible(&self, id: TweetId) -> bool {
        self.feed_visible(id.0 as u32, 0x005E_A2C4_0001, self.search_miss)
    }

    /// Whether the Streaming API delivered this tweet (stable per tweet).
    pub fn stream_visible(&self, id: TweetId) -> bool {
        self.feed_visible(id.0 as u32, 0x0005_7EAA_0002, self.stream_miss)
    }

    // ---- endpoint implementations --------------------------------------

    fn search(&self, now: SimTime, req: &Request) -> Response {
        let host = req.param("host").unwrap_or("any");
        let since_id: Option<u64> = match req.param("since_id").map(str::parse) {
            None => None,
            Some(Ok(v)) => Some(v),
            Some(Err(_)) => return bad("since_id"),
        };
        let page: usize = match req.param("page").map(str::parse) {
            None => 0,
            Some(Ok(v)) => v,
            Some(Err(_)) => return bad("page"),
        };
        let horizon = now.checked_sub(SEARCH_WINDOW).unwrap_or(SimTime::EPOCH);
        // `matching` is in id order == time order, so the 7-day window and
        // the since_id high-water mark are contiguous ranges: binary-search
        // them instead of scanning the whole index on every page request
        // (the campaign issues hundreds of thousands of these).
        let lo_time = self
            .matching
            .partition_point(|&i| self.tweets[i as usize].at < horizon);
        let lo = match since_id {
            Some(s) => {
                let lo_id = self.matching.partition_point(|&i| u64::from(i) <= s);
                lo_id.max(lo_time)
            }
            None => lo_time,
        };
        let hi = self
            .matching
            .partition_point(|&i| self.tweets[i as usize].at <= now);
        // Host match via the precomputed per-tweet bitmask: a stalled
        // `since_id` (a host with no recent deliveries) re-scans up to a
        // full 7-day window of candidates every hour, so the per-candidate
        // test must be flat. Hosts outside the tracked set (tests, hostile
        // queries) keep the exact URL-parsing semantics on the slow path.
        let host_bit = TRACK_HOSTS
            .iter()
            .position(|h| h.eq_ignore_ascii_case(host));
        let mut hits = self.matching[lo..hi.max(lo)].iter().copied().filter(|&i| {
            let by_host = host == "any"
                || match host_bit {
                    Some(b) => self.host_bits[i as usize] & (1 << b) != 0,
                    None => self.tweets[i as usize]
                        .urls
                        .iter()
                        .any(|u| url_host(u).is_some_and(|h| h.eq_ignore_ascii_case(host))),
                };
            by_host && self.search_visible(TweetId(u64::from(i)))
        });
        // Echo the query identity (host + page) so collectors can detect a
        // cross-document splice: a cached page served for the wrong query.
        let mut doc = WireDoc::new("tw-search")
            .field("host", host)
            .field("page", page);
        let mut emitted = 0usize;
        let mut skipped = 0usize;
        let mut more = false;
        for i in hits.by_ref() {
            if skipped < page * SEARCH_PAGE {
                skipped += 1;
                continue;
            }
            if emitted == SEARCH_PAGE {
                more = true;
                break;
            }
            doc = doc.field_string("tweet", self.tweets[i as usize].encode());
            emitted += 1;
        }
        if more {
            doc = doc.field("next_page", page + 1);
        }
        Response::ok(doc.render())
    }

    fn drain(
        &self,
        req: &Request,
        index: &[u32],
        doc_kind: &'static str,
        check_stream_loss: bool,
    ) -> Response {
        let from = match req.param("from").map(str::parse::<u64>) {
            Some(Ok(v)) => SimTime::from_secs(v),
            _ => return bad("from"),
        };
        let to = match req.param("to").map(str::parse::<u64>) {
            Some(Ok(v)) => SimTime::from_secs(v),
            _ => return bad("to"),
        };
        let page: usize = match req.param("page").map(str::parse) {
            None => 0,
            Some(Ok(v)) => v,
            Some(Err(_)) => return bad("page"),
        };
        // Same contiguity argument as search: the [from, to) range is a
        // slice of the id-ordered index.
        let lo = index.partition_point(|&i| self.tweets[i as usize].at < from);
        let hi = index.partition_point(|&i| self.tweets[i as usize].at < to);
        let mut hits = index[lo..hi.max(lo)]
            .iter()
            .copied()
            .filter(|&i| !check_stream_loss || self.stream_visible(TweetId(u64::from(i))));
        // Echo the window identity so a spliced page is detectable.
        let mut doc = WireDoc::new(doc_kind)
            .field("from", from.as_secs())
            .field("to", to.as_secs())
            .field("page", page);
        let mut emitted = 0usize;
        let mut skipped = 0usize;
        let mut more = false;
        for i in hits.by_ref() {
            if skipped < page * STREAM_PAGE {
                skipped += 1;
                continue;
            }
            if emitted == STREAM_PAGE {
                more = true;
                break;
            }
            doc = doc.field_string("tweet", self.tweets[i as usize].encode());
            emitted += 1;
        }
        if more {
            doc = doc.field("next_page", page + 1);
        }
        Response::ok(doc.render())
    }
}

fn bad(what: &str) -> Response {
    // lint:allow(D10) error-path only: a rejected request leaves the hot search loop entirely
    Response::status(Status::NotFound, format!("bad-request\nwhat: {what}"))
}

impl Service for TweetStore {
    fn handle(&mut self, now: SimTime, req: &Request) -> Response {
        let op = req
            .endpoint
            .split_once('/')
            .map(|(_, rest)| rest)
            .unwrap_or("");
        match op {
            "search" => self.search(now, req),
            "stream" => {
                let matching = std::mem::take(&mut self.matching);
                let resp = self.drain(req, &matching, "tw-stream", true);
                self.matching = matching;
                resp
            }
            "sample" => {
                let control = std::mem::take(&mut self.control);
                let resp = self.drain(req, &control, "tw-sample", false);
                self.control = control;
                resp
            }
            _ => bad("operation"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tweet::{Lang, TwitterUserId};
    use chatlens_simnet::time::Date;

    fn tweet(at: SimTime, urls: Vec<&str>, control: bool) -> Tweet {
        Tweet {
            id: TweetId(0),
            author: TwitterUserId(1),
            at,
            lang: Lang::En,
            hashtags: 0,
            mentions: 0,
            retweet_of: None,
            urls: urls.into_iter().map(str::to_string).collect(),
            tokens: vec![],
            is_control: control,
        }
    }

    fn day(d: u8) -> SimTime {
        Date::new(2020, 4, d).midnight()
    }

    fn parse_tweets(body: &str, kind: &'static str) -> (Vec<Tweet>, Option<u64>) {
        let doc = WireDoc::parse_as(body, kind).unwrap();
        let tweets = doc
            .get_all("tweet")
            .map(|s| Tweet::decode(s).unwrap())
            .collect();
        let next = doc.opt_u64("next_page").unwrap();
        (tweets, next)
    }

    #[test]
    fn track_matching() {
        assert_eq!(
            matches_track("https://chat.whatsapp.com/XYZ"),
            Some("chat.whatsapp.com")
        );
        assert_eq!(matches_track("http://t.me/joinchat/AB"), Some("t.me"));
        assert_eq!(matches_track("https://discord.gg/abc"), Some("discord.gg"));
        assert_eq!(matches_track("https://example.com/t.me"), None, "host only");
        assert_eq!(
            matches_track("https://WWW.DISCORD.GG/x"),
            Some("discord.gg")
        );
        assert_eq!(matches_track("not a url"), None);
    }

    #[test]
    fn push_assigns_chronological_ids() {
        let mut s = TweetStore::perfect();
        let a = s.push(tweet(day(8), vec!["https://t.me/x"], false));
        let b = s.push(tweet(day(9), vec![], true));
        assert_eq!(a, TweetId(0));
        assert_eq!(b, TweetId(1));
        assert_eq!(s.stats().total, 2);
        assert_eq!(s.stats().matching, 1);
        assert_eq!(s.stats().control, 1);
    }

    #[test]
    #[should_panic(expected = "chronologically")]
    fn push_rejects_time_travel() {
        let mut s = TweetStore::perfect();
        s.push(tweet(day(9), vec![], true));
        s.push(tweet(day(8), vec![], true));
    }

    #[test]
    fn search_seven_day_window() {
        let mut s = TweetStore::perfect();
        s.push(tweet(day(1), vec!["https://t.me/old"], false));
        s.push(tweet(day(9), vec!["https://t.me/fresh"], false));
        // Query on day 10: day 1 is outside the 7-day window.
        let resp = s.handle(day(10), &Request::new("twitter/search"));
        let (tweets, next) = parse_tweets(&resp.body, "tw-search");
        assert_eq!(tweets.len(), 1);
        assert!(tweets[0].urls[0].contains("fresh"));
        assert_eq!(next, None);
    }

    #[test]
    fn search_host_filter() {
        let mut s = TweetStore::perfect();
        s.push(tweet(day(9), vec!["https://t.me/a"], false));
        s.push(tweet(day(9), vec!["https://discord.gg/b"], false));
        let resp = s.handle(
            day(10),
            &Request::new("twitter/search").with("host", "discord.gg"),
        );
        let (tweets, _) = parse_tweets(&resp.body, "tw-search");
        assert_eq!(tweets.len(), 1);
        assert!(tweets[0].urls[0].contains("discord.gg"));
    }

    #[test]
    fn search_since_id_incremental() {
        let mut s = TweetStore::perfect();
        for i in 0..5 {
            s.push(tweet(day(9), vec![&format!("https://t.me/g{i}")], false));
        }
        let resp = s.handle(
            day(10),
            &Request::new("twitter/search").with("since_id", "2"),
        );
        let (tweets, _) = parse_tweets(&resp.body, "tw-search");
        assert_eq!(tweets.len(), 2, "only ids 3 and 4");
        assert!(tweets.iter().all(|t| t.id.0 > 2));
    }

    #[test]
    fn search_pagination() {
        let mut s = TweetStore::perfect();
        for i in 0..250 {
            s.push(tweet(day(9), vec![&format!("https://t.me/g{i}")], false));
        }
        let mut collected = Vec::new();
        let mut page = 0u64;
        loop {
            let resp = s.handle(
                day(10),
                &Request::new("twitter/search").with("page", page.to_string()),
            );
            let (tweets, next) = parse_tweets(&resp.body, "tw-search");
            collected.extend(tweets);
            match next {
                Some(n) => page = n,
                None => break,
            }
        }
        assert_eq!(collected.len(), 250);
        assert_eq!(page, 2);
    }

    #[test]
    fn control_tweets_never_in_search() {
        let mut s = TweetStore::perfect();
        // A control tweet that *would* match the track patterns still only
        // flows through the sample stream (it was sampled, not tracked).
        s.push(tweet(day(9), vec!["https://t.me/x"], true));
        let resp = s.handle(day(10), &Request::new("twitter/search"));
        let (tweets, _) = parse_tweets(&resp.body, "tw-search");
        assert!(tweets.is_empty());
    }

    #[test]
    fn stream_range_and_pagination() {
        let mut s = TweetStore::perfect();
        for d in 8..12u8 {
            for i in 0..3 {
                s.push(tweet(
                    day(d),
                    vec![&format!("https://t.me/d{d}i{i}")],
                    false,
                ));
            }
        }
        let resp = s.handle(
            day(15),
            &Request::new("twitter/stream")
                .with("from", day(9).as_secs().to_string())
                .with("to", day(11).as_secs().to_string()),
        );
        let (tweets, next) = parse_tweets(&resp.body, "tw-stream");
        assert_eq!(tweets.len(), 6, "days 9 and 10 only (to is exclusive)");
        assert_eq!(next, None);
    }

    #[test]
    fn sample_returns_control_only() {
        let mut s = TweetStore::perfect();
        s.push(tweet(day(9), vec!["https://t.me/x"], false));
        s.push(tweet(day(9), vec![], true));
        let resp = s.handle(
            day(15),
            &Request::new("twitter/sample")
                .with("from", day(8).as_secs().to_string())
                .with("to", day(10).as_secs().to_string()),
        );
        let (tweets, _) = parse_tweets(&resp.body, "tw-sample");
        assert_eq!(tweets.len(), 1);
        assert!(tweets[0].urls.is_empty());
    }

    #[test]
    fn feed_misses_are_deterministic_and_complementary() {
        let mut s = TweetStore::new(0.3, 0.2, 99);
        for i in 0..2000 {
            s.push(tweet(day(9), vec![&format!("https://t.me/g{i}")], false));
        }
        // Determinism: same visibility on repeated evaluation.
        for i in (0..2000).step_by(97) {
            let id = TweetId(i);
            assert_eq!(s.search_visible(id), s.search_visible(id));
            assert_eq!(s.stream_visible(id), s.stream_visible(id));
        }
        let search_seen = (0..2000).filter(|&i| s.search_visible(TweetId(i))).count();
        let stream_seen = (0..2000).filter(|&i| s.stream_visible(TweetId(i))).count();
        let union = (0..2000)
            .filter(|&i| s.search_visible(TweetId(i)) || s.stream_visible(TweetId(i)))
            .count();
        assert!((search_seen as f64 / 2000.0 - 0.7).abs() < 0.05);
        assert!((stream_seen as f64 / 2000.0 - 0.8).abs() < 0.05);
        assert!(
            union > search_seen && union > stream_seen,
            "merging feeds must recover more than either alone"
        );
    }

    #[test]
    fn bad_params_rejected() {
        let mut s = TweetStore::perfect();
        let resp = s.handle(day(10), &Request::new("twitter/stream"));
        assert_eq!(resp.status, Status::NotFound, "missing from/to");
        let resp = s.handle(day(10), &Request::new("twitter/search").with("page", "x"));
        assert_eq!(resp.status, Status::NotFound);
        let resp = s.handle(day(10), &Request::new("twitter/nope"));
        assert_eq!(resp.status, Status::NotFound);
    }
}
