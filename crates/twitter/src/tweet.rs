//! The tweet model.
//!
//! A simulated tweet carries exactly the attributes the paper's analyses
//! read: author and time (discovery dynamics, Fig 1–2), hashtag/mention
//! counts and retweet linkage (content features, Fig 3), language (Fig 4),
//! embedded URLs as **raw strings** the extraction pipeline must parse
//! (§3.1), and tokenized text for LDA (Table 3).

use chatlens_simnet::time::SimTime;
use std::fmt;

/// Tweet identifier. Ids are assigned in chronological order by the store,
/// so `since_id`-style incremental queries work like on real Twitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TweetId(pub u64);

/// Twitter account identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TwitterUserId(pub u32);

/// Tweet language, as reported by Twitter's `lang` field (Fig 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Lang {
    /// English.
    En,
    /// Spanish.
    Es,
    /// Portuguese.
    Pt,
    /// Arabic.
    Ar,
    /// Turkish.
    Tr,
    /// Japanese.
    Ja,
    /// Indonesian.
    In,
    /// Hindi.
    Hi,
    /// French.
    Fr,
    /// German.
    De,
    /// Russian.
    Ru,
    /// Thai.
    Th,
    /// Korean.
    Ko,
    /// Undetermined (Twitter's `und`).
    Und,
    /// Any other language.
    Other,
}

impl Lang {
    /// All languages, in a fixed order.
    pub const ALL: [Lang; 15] = [
        Lang::En,
        Lang::Es,
        Lang::Pt,
        Lang::Ar,
        Lang::Tr,
        Lang::Ja,
        Lang::In,
        Lang::Hi,
        Lang::Fr,
        Lang::De,
        Lang::Ru,
        Lang::Th,
        Lang::Ko,
        Lang::Und,
        Lang::Other,
    ];

    /// BCP-47-ish code as Twitter reports it.
    pub fn code(self) -> &'static str {
        match self {
            Lang::En => "en",
            Lang::Es => "es",
            Lang::Pt => "pt",
            Lang::Ar => "ar",
            Lang::Tr => "tr",
            Lang::Ja => "ja",
            Lang::In => "in",
            Lang::Hi => "hi",
            Lang::Fr => "fr",
            Lang::De => "de",
            Lang::Ru => "ru",
            Lang::Th => "th",
            Lang::Ko => "ko",
            Lang::Und => "und",
            Lang::Other => "other",
        }
    }

    /// Parse a code produced by [`Lang::code`].
    pub fn from_code(code: &str) -> Option<Lang> {
        Lang::ALL.into_iter().find(|l| l.code() == code)
    }

    /// Stable index into [`Lang::ALL`].
    pub fn index(self) -> usize {
        Lang::ALL
            .iter()
            .position(|&l| l == self)
            .expect("lang present in ALL")
    }
}

impl fmt::Display for Lang {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// One tweet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tweet {
    /// Chronologically-assigned id.
    pub id: TweetId,
    /// Author account.
    pub author: TwitterUserId,
    /// Posting instant.
    pub at: SimTime,
    /// Language tag.
    pub lang: Lang,
    /// Number of hashtags in the tweet.
    pub hashtags: u8,
    /// Number of @-mentions in the tweet.
    pub mentions: u8,
    /// For retweets, the original tweet (content is mirrored from it).
    pub retweet_of: Option<TweetId>,
    /// Embedded URLs, verbatim. The collector's extractor parses these;
    /// most are invite URLs, some are unrelated links it must ignore.
    pub urls: Vec<String>,
    /// Tokenized text (vocabulary ids from the workload's lexicon); used by
    /// the LDA pipeline. Empty for tweets outside the topic-modeled set.
    pub tokens: Vec<u16>,
    /// Whether this tweet belongs to the 1% control sample rather than the
    /// pattern-matched collection.
    pub is_control: bool,
}

impl Tweet {
    /// Whether the tweet is a retweet.
    pub fn is_retweet(&self) -> bool {
        self.retweet_of.is_some()
    }

    /// Encode to the wire-field value used by the `twitter/*` endpoints:
    /// `<id>|<author>|<secs>|<lang>|<hashtags>|<mentions>|<rt|->|<url,url>|<tok tok>`.
    pub fn encode(&self) -> String {
        use std::fmt::Write as _;
        // Single output buffer: the feeds encode millions of tweets per
        // campaign, so no per-token/per-url intermediate strings.
        let urls_len: usize = self.urls.iter().map(|u| u.len() + 1).sum();
        let mut out = String::with_capacity(48 + urls_len + self.tokens.len() * 6);
        let _ = write!(
            out,
            "{}|{}|{}|{}|{}|{}|",
            self.id.0,
            self.author.0,
            self.at.as_secs(),
            self.lang.code(),
            self.hashtags,
            self.mentions,
        );
        match self.retweet_of {
            Some(TweetId(id)) => {
                let _ = write!(out, "{id}");
            }
            None => out.push('-'),
        }
        out.push('|');
        for (i, u) in self.urls.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(u);
        }
        out.push('|');
        for (i, t) in self.tokens.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            let _ = write!(out, "{t}");
        }
        out
    }

    /// Decode a value produced by [`Tweet::encode`]. `is_control` is not on
    /// the wire (the endpoint implies it) and defaults to `false`.
    pub fn decode(s: &str) -> Option<Tweet> {
        let mut parts = s.split('|');
        let id = TweetId(parts.next()?.parse().ok()?);
        let author = TwitterUserId(parts.next()?.parse().ok()?);
        let at = SimTime::from_secs(parts.next()?.parse().ok()?);
        let lang = Lang::from_code(parts.next()?)?;
        let hashtags = parts.next()?.parse().ok()?;
        let mentions = parts.next()?.parse().ok()?;
        let rt = parts.next()?;
        let retweet_of = if rt == "-" {
            None
        } else {
            Some(TweetId(rt.parse().ok()?))
        };
        let urls_raw = parts.next()?;
        let urls = if urls_raw.is_empty() {
            Vec::new()
        } else {
            urls_raw.split(',').map(str::to_string).collect()
        };
        let toks_raw = parts.next()?;
        let tokens = if toks_raw.is_empty() {
            Vec::new()
        } else {
            let mut v = Vec::new();
            for t in toks_raw.split(' ') {
                v.push(t.parse().ok()?);
            }
            v
        };
        if parts.next().is_some() {
            return None;
        }
        Some(Tweet {
            id,
            author,
            at,
            lang,
            hashtags,
            mentions,
            retweet_of,
            urls,
            tokens,
            is_control: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Tweet {
        Tweet {
            id: TweetId(42),
            author: TwitterUserId(7),
            at: SimTime::from_secs(1_586_300_000),
            lang: Lang::Pt,
            hashtags: 2,
            mentions: 1,
            retweet_of: Some(TweetId(40)),
            urls: vec![
                "https://chat.whatsapp.com/AAAAAAAAAAAAAAAAAAAAAA".into(),
                "https://example.com/x".into(),
            ],
            tokens: vec![1, 5, 9],
            is_control: false,
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let t = sample();
        assert_eq!(Tweet::decode(&t.encode()), Some(t));
    }

    #[test]
    fn roundtrip_empty_urls_and_tokens() {
        let mut t = sample();
        t.urls.clear();
        t.tokens.clear();
        t.retweet_of = None;
        assert_eq!(Tweet::decode(&t.encode()), Some(t));
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(Tweet::decode(""), None);
        assert_eq!(Tweet::decode("1|2|3"), None);
        assert_eq!(Tweet::decode("x|2|3|en|0|0|-||"), None);
        assert_eq!(Tweet::decode("1|2|3|xx|0|0|-||"), None, "bad lang");
        let t = sample();
        assert_eq!(Tweet::decode(&format!("{}|extra", t.encode())), None);
    }

    #[test]
    fn lang_code_roundtrip() {
        for l in Lang::ALL {
            assert_eq!(Lang::from_code(l.code()), Some(l));
        }
        assert_eq!(Lang::from_code("zz"), None);
    }

    #[test]
    fn lang_index_is_stable() {
        for (i, l) in Lang::ALL.into_iter().enumerate() {
            assert_eq!(l.index(), i);
        }
    }

    #[test]
    fn retweet_flag() {
        let mut t = sample();
        assert!(t.is_retweet());
        t.retweet_of = None;
        assert!(!t.is_retweet());
    }
}
