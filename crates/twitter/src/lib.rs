//! # chatlens-twitter — the Twitter simulator
//!
//! The paper discovers messaging-platform groups *through* Twitter (§3.1):
//! it queries the **Search API** every hour (which returns matching tweets
//! from the past seven days) and consumes the **Streaming API** in real
//! time, merging both because the two feeds disagree. A **1% sample
//! stream** provides the control dataset.
//!
//! This crate provides:
//!
//! * [`tweet`] — the tweet model: author, time, language, hashtag/mention
//!   counts, retweet linkage, embedded URLs (as raw strings the collector
//!   must parse), and tokenized text for topic modeling.
//! * [`store`] — a time-indexed tweet store exposing the three feeds as
//!   transport endpoints (`twitter/search`, `twitter/stream`,
//!   `twitter/sample`) with the real APIs' quirks: 7-day search window,
//!   `since_id` incremental queries, pagination, per-feed *deterministic
//!   incompleteness* (a tweet missed by search is always missed by search,
//!   which is exactly why merging the feeds helps, §3.1).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod store;
pub mod tweet;

pub use store::{StoreStats, TweetStore};
pub use tweet::{Lang, Tweet, TweetId, TwitterUserId};
