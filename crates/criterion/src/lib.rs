//! Vendored offline shim of the `criterion` benchmarking API.
//!
//! Implements just the surface this workspace's benches use: benchmark
//! groups, `sample_size`, `throughput`, `bench_function`, `Bencher::iter`,
//! and the `criterion_group!` / `criterion_main!` macros. Instead of
//! criterion's full statistical machinery it times a calibrated batch and
//! reports median-of-samples ns/iter (plus throughput when configured) to
//! stdout — enough for coarse regression eyeballing in an offline CI.

use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group (elements or bytes per iter).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level benchmark driver; hand one to each `criterion_group!` target.
pub struct Criterion {
    /// Default number of timed samples per benchmark.
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _parent: self,
        }
    }
}

/// A named collection of benchmarks sharing sample-size and throughput
/// settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of timed samples for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Annotates subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Times `f` (which drives a [`Bencher`]) and prints one result line.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            ns_per_iter: 0.0,
        };
        f(&mut b);
        let label = format!("{}/{}", self.name, id.into());
        match self.throughput {
            Some(Throughput::Elements(n)) if b.ns_per_iter > 0.0 => {
                let per_sec = n as f64 * 1e9 / b.ns_per_iter;
                println!(
                    "{label:<48} {:>12.1} ns/iter {per_sec:>14.0} elem/s",
                    b.ns_per_iter
                );
            }
            Some(Throughput::Bytes(n)) if b.ns_per_iter > 0.0 => {
                let mb_per_sec = n as f64 * 1e9 / b.ns_per_iter / (1024.0 * 1024.0);
                println!(
                    "{label:<48} {:>12.1} ns/iter {mb_per_sec:>12.1} MiB/s",
                    b.ns_per_iter
                );
            }
            _ => println!("{label:<48} {:>12.1} ns/iter", b.ns_per_iter),
        }
        self
    }

    /// Ends the group (separator line, mirroring criterion's summary break).
    pub fn finish(self) {}
}

/// Per-benchmark timing driver handed to `bench_function` closures.
pub struct Bencher {
    sample_size: usize,
    ns_per_iter: f64,
}

impl Bencher {
    /// Runs `f` repeatedly and records the median per-iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: find an iteration count that takes ~1ms per sample,
        // so cheap closures aren't dominated by clock reads.
        let mut iters_per_sample: u64 = 1;
        loop {
            // lint:allow(D1) wall-clock measurement IS the bench harness's deliverable
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(f());
            }
            let elapsed = t0.elapsed();
            if elapsed >= Duration::from_millis(1) || iters_per_sample >= 1 << 20 {
                break;
            }
            iters_per_sample *= 4;
        }
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            // lint:allow(D1) wall-clock measurement IS the bench harness's deliverable
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(f());
            }
            samples.push(t0.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.ns_per_iter = samples[samples.len() / 2];
    }
}

/// Declares a function that runs each named benchmark with a fresh
/// [`Criterion`], mirroring criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes `--bench`; a test harness may pass filter
            // args. This shim runs everything regardless.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_and_prints() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.throughput(Throughput::Elements(1));
        let mut x = 0u64;
        g.bench_function("add", |b| b.iter(|| x = x.wrapping_add(1)));
        g.finish();
        assert!(x > 0);
    }
}
