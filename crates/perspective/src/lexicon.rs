//! The toxicity model: per-token weights and a logistic document score.

use chatlens_workload::Vocabulary;
use std::collections::HashMap;

/// Strongly toxic terms (drawn from the corpus vocabularies the paper's
/// Table 3 surfaces on Telegram's sex topics and Discord's hentai topic)
/// with their log-odds contributions.
const STRONG: &[(&str, f64)] = &[
    ("fuck", 3.6),
    ("pussy", 3.8),
    ("cum", 3.4),
    ("boobs", 3.2),
    ("butt", 1.8),
    ("hentai", 2.6),
    ("sex", 2.4),
];

/// Mildly suggestive terms that raise the score without dominating it.
const MILD: &[(&str, f64)] = &[
    ("girls", 1.2),
    ("girl", 1.1),
    ("xpro", 1.3),
    ("performer", 1.0),
    ("baby", 0.4),
    ("paradise", 0.3),
    ("tenshi", 0.3),
];

/// Per-token toxicity weights over a vocabulary, scoring documents with a
/// logistic model — a deterministic stand-in for Perspective's `TOXICITY`
/// probability.
#[derive(Debug, Clone)]
pub struct ToxicityLexicon {
    weights: HashMap<u16, f64>,
    /// Model intercept: an empty/benign document scores near this
    /// logit's sigmoid (default −4.0 → ~0.018).
    pub intercept: f64,
}

impl ToxicityLexicon {
    /// Build the lexicon against `vocab` (terms missing from the
    /// vocabulary are skipped).
    pub fn build(vocab: &Vocabulary) -> ToxicityLexicon {
        let mut weights = HashMap::new();
        for &(term, w) in STRONG.iter().chain(MILD) {
            if let Some(id) = vocab.id(term) {
                weights.insert(id, w);
            }
        }
        ToxicityLexicon {
            weights,
            intercept: -3.5,
        }
    }

    /// Weight of one token (0 for benign tokens).
    pub fn weight(&self, token: u16) -> f64 {
        self.weights.get(&token).copied().unwrap_or(0.0)
    }

    /// Number of weighted (non-benign) tokens.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether the lexicon carries no weights.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Score a document of token ids: `sigmoid(intercept + Σ weights)`,
    /// in `[0, 1]`.
    pub fn score(&self, tokens: &[u16]) -> f64 {
        let logit: f64 = self.intercept + tokens.iter().map(|&t| self.weight(t)).sum::<f64>();
        1.0 / (1.0 + (-logit).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lexicon() -> (Vocabulary, ToxicityLexicon) {
        let v = Vocabulary::build();
        let l = ToxicityLexicon::build(&v);
        (v, l)
    }

    #[test]
    fn builds_against_vocabulary() {
        let (_, l) = lexicon();
        assert!(l.len() >= 10, "lexicon size {}", l.len());
        assert!(!l.is_empty());
    }

    #[test]
    fn benign_documents_score_low() {
        let (v, l) = lexicon();
        let doc: Vec<u16> = ["join", "group", "link", "free", "crypto"]
            .iter()
            .filter_map(|w| v.id(w))
            .collect();
        let s = l.score(&doc);
        assert!(s < 0.05, "benign score {s}");
        assert!(l.score(&[]) < 0.05, "empty doc");
    }

    #[test]
    fn toxic_documents_score_high() {
        let (v, l) = lexicon();
        let doc: Vec<u16> = ["fuck", "pussy", "girl", "cum"]
            .iter()
            .filter_map(|w| v.id(w))
            .collect();
        assert_eq!(doc.len(), 4, "all terms in vocabulary");
        let s = l.score(&doc);
        assert!(s > 0.95, "toxic score {s}");
    }

    #[test]
    fn scores_are_probabilities_and_monotone() {
        let (v, l) = lexicon();
        let hentai = v.id("hentai").unwrap();
        let mut prev = l.score(&[]);
        for n in 1..6 {
            let doc = vec![hentai; n];
            let s = l.score(&doc);
            assert!((0.0..=1.0).contains(&s));
            assert!(s > prev, "more toxic tokens, higher score");
            prev = s;
        }
    }

    #[test]
    fn mild_terms_alone_stay_under_half() {
        let (v, l) = lexicon();
        let doc: Vec<u16> = ["girls", "baby"].iter().filter_map(|w| v.id(w)).collect();
        assert!(l.score(&doc) < 0.5);
    }
}
