//! The scoring API as a transport service, QPS-limited like the real
//! Perspective API's free tier.

use crate::lexicon::ToxicityLexicon;
use chatlens_platforms::wire::WireDoc;
use chatlens_simnet::fault::TokenBucket;
use chatlens_simnet::time::SimTime;
use chatlens_simnet::transport::{Request, Response, Service, Status};

/// Default sustained request rate (the real API's free tier is 1 QPS; we
/// grant a research quota).
pub const DEFAULT_QPS: f64 = 10.0;

/// The Perspective-style analyzer service. Mount under `perspective`;
/// it answers `perspective/analyze?tokens=<space-separated ids>` with a
/// `px-score` document carrying the toxicity probability.
pub struct PerspectiveService {
    lexicon: ToxicityLexicon,
    bucket: TokenBucket,
    /// Requests served (diagnostics).
    pub served: u64,
}

impl PerspectiveService {
    /// A service with the given lexicon and QPS quota.
    pub fn new(lexicon: ToxicityLexicon, qps: f64, start: SimTime) -> PerspectiveService {
        PerspectiveService {
            lexicon,
            bucket: TokenBucket::new((qps * 2.0).max(1.0), qps, start),
            served: 0,
        }
    }

    fn analyze(&mut self, now: SimTime, req: &Request) -> Response {
        // Dispatch times can regress across calls; the quota bucket never
        // imposes waits, so clamping to its refill cursor upholds the
        // bucket's monotonicity contract with identical refill math.
        let now = now.max(self.bucket.refilled_to());
        if self.bucket.available(now) < 1.0 {
            return Response::status(
                Status::RateLimited(1),
                WireDoc::new("px-quota").field("retry_after", 1u32).render(),
            );
        }
        self.bucket.acquire(now);
        let Some(raw) = req.param("tokens") else {
            return Response::status(Status::NotFound, "bad-request\nwhat: missing tokens");
        };
        let mut tokens = Vec::new();
        if !raw.is_empty() {
            for part in raw.split(' ') {
                match part.parse::<u16>() {
                    Ok(t) => tokens.push(t),
                    Err(_) => {
                        return Response::status(
                            Status::NotFound,
                            "bad-request\nwhat: bad token id",
                        )
                    }
                }
            }
        }
        self.served += 1;
        let score = self.lexicon.score(&tokens);
        Response::ok(
            WireDoc::new("px-score")
                .field("toxicity", format!("{score:.6}"))
                .render(),
        )
    }
}

impl Service for PerspectiveService {
    fn handle(&mut self, now: SimTime, req: &Request) -> Response {
        let op = req
            .endpoint
            .split_once('/')
            .map(|(_, rest)| rest)
            .unwrap_or("");
        match op {
            "analyze" => self.analyze(now, req),
            _ => Response::status(Status::NotFound, "not-found\nwhat: operation"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chatlens_simnet::time::SimDuration;
    use chatlens_workload::Vocabulary;

    fn service() -> (Vocabulary, PerspectiveService) {
        let v = Vocabulary::build();
        let lex = ToxicityLexicon::build(&v);
        (v, PerspectiveService::new(lex, 10.0, SimTime::EPOCH))
    }

    fn analyze(svc: &mut PerspectiveService, now: SimTime, tokens: &str) -> Response {
        svc.handle(
            now,
            &Request::new("perspective/analyze").with("tokens", tokens),
        )
    }

    #[test]
    fn scores_documents_over_the_wire() {
        let (v, mut svc) = service();
        let toxic = format!("{} {}", v.id("fuck").unwrap(), v.id("pussy").unwrap());
        let resp = analyze(&mut svc, SimTime::EPOCH, &toxic);
        assert_eq!(resp.status, Status::Ok);
        let doc = WireDoc::parse_as(&resp.body, "px-score").unwrap();
        let score: f64 = doc.req("toxicity").unwrap().parse().unwrap();
        assert!(score > 0.8, "score {score}");
        assert_eq!(svc.served, 1);
    }

    #[test]
    fn empty_document_is_benign() {
        let (_, mut svc) = service();
        let resp = analyze(&mut svc, SimTime::EPOCH, "");
        let doc = WireDoc::parse_as(&resp.body, "px-score").unwrap();
        let score: f64 = doc.req("toxicity").unwrap().parse().unwrap();
        assert!(score < 0.05);
    }

    #[test]
    fn quota_enforced_then_recovers() {
        let (_, mut svc) = service();
        let mut limited = 0;
        for _ in 0..100 {
            if matches!(
                analyze(&mut svc, SimTime::EPOCH, "1").status,
                Status::RateLimited(_)
            ) {
                limited += 1;
            }
        }
        assert!(limited > 50, "burst should trip the quota ({limited})");
        let later = SimTime::EPOCH + SimDuration::minutes(1);
        assert_eq!(analyze(&mut svc, later, "1").status, Status::Ok);
    }

    #[test]
    fn malformed_requests_rejected() {
        let (_, mut svc) = service();
        let resp = svc.handle(SimTime::EPOCH, &Request::new("perspective/analyze"));
        assert_eq!(resp.status, Status::NotFound);
        let resp = analyze(&mut svc, SimTime::EPOCH, "1 x 3");
        assert_eq!(resp.status, Status::NotFound);
        let resp = svc.handle(SimTime::EPOCH, &Request::new("perspective/nope"));
        assert_eq!(resp.status, Status::NotFound);
    }
}
