//! The scoring client: pushes collected tweets through the analyzer and
//! aggregates per-platform toxicity reports.

use crate::lexicon::ToxicityLexicon;
use crate::service::PerspectiveService;
use chatlens_core::Dataset;
use chatlens_platforms::id::PlatformKind;
use chatlens_platforms::wire::WireDoc;
use chatlens_simnet::time::{SimDuration, SimTime};
use chatlens_simnet::transport::{Client, Request, Router, Status};
use chatlens_twitter::Lang;
use chatlens_workload::Vocabulary;

/// Per-platform toxicity roll-up over the English sharing tweets.
#[derive(Debug, Clone)]
pub struct ToxicityReport {
    /// Platform measured.
    pub platform: PlatformKind,
    /// Tweets scored.
    pub scored: u64,
    /// Mean toxicity probability.
    pub mean: f64,
    /// Share of tweets above the 0.5 "likely toxic" threshold.
    pub toxic_share: f64,
    /// 90th-percentile score.
    pub p90: f64,
}

/// Score every English sharing tweet of every platform through the
/// Perspective-style API (paced at the service's QPS so the quota never
/// rejects), returning one report per platform.
///
/// Scoring goes over the wire on purpose: the future-work experiment is
/// about driving an external rate-limited API from the collection
/// pipeline, not about calling a local function.
pub fn score_dataset(ds: &Dataset, vocab: &Vocabulary, qps: f64) -> Vec<ToxicityReport> {
    let start = ds.window.start_time();
    let mut service = PerspectiveService::new(ToxicityLexicon::build(vocab), qps, start);
    let mut client = Client::plain(0x70C5, start);
    let mut reports = Vec::new();
    // Pace one request per 1/qps seconds of virtual time.
    let step = SimDuration::secs((1.0 / qps).ceil().max(1.0) as u64);
    let mut cursor = start;
    for kind in PlatformKind::ALL {
        let mut scores: Vec<f64> = Vec::new();
        for ct in ds.tweets_of(kind) {
            if ct.tweet.lang != Lang::En {
                continue;
            }
            cursor += step;
            let tokens: Vec<String> = ct.tweet.tokens.iter().map(u16::to_string).collect();
            let req = Request::new("perspective/analyze").with("tokens", tokens.join(" "));
            let mut router = Router::new();
            router.mount("perspective", &mut service);
            let Ok(resp) = client.call(&mut router, cursor, &req) else {
                continue;
            };
            if resp.status != Status::Ok {
                continue;
            }
            let Ok(doc) = WireDoc::parse_as(&resp.body, "px-score") else {
                continue;
            };
            if let Ok(score) = doc.req("toxicity").unwrap_or("0").parse::<f64>() {
                scores.push(score);
            }
        }
        scores.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let n = scores.len().max(1) as f64;
        let mean = scores.iter().sum::<f64>() / n;
        let toxic = scores.iter().filter(|&&s| s > 0.5).count() as f64 / n;
        let p90 = scores
            .get(((scores.len() as f64) * 0.9) as usize)
            .copied()
            .unwrap_or(0.0);
        reports.push(ToxicityReport {
            platform: kind,
            scored: scores.len() as u64,
            mean,
            toxic_share: toxic,
            p90,
        });
    }
    reports
}

/// The toxicity of each *virtual time instant* is irrelevant; re-export
/// the pacing start for callers that want to continue the clock.
pub fn pacing_start(ds: &Dataset) -> SimTime {
    ds.window.start_time()
}

#[cfg(test)]
mod tests {
    use super::*;
    use chatlens_core::run_study;
    use chatlens_workload::ScenarioConfig;
    use std::sync::OnceLock;

    fn dataset() -> &'static Dataset {
        static DS: OnceLock<Dataset> = OnceLock::new();
        DS.get_or_init(|| run_study(ScenarioConfig::tiny()))
    }

    #[test]
    fn telegram_is_the_most_toxic_platform() {
        // §4: Telegram's sex topics are 23% of its English tweets; Discord
        // has hentai servers (9%); WhatsApp is money-and-crypto spam. The
        // future-work experiment should find exactly that ordering.
        let vocab = Vocabulary::build();
        let reports = score_dataset(dataset(), &vocab, 50.0);
        assert_eq!(reports.len(), 3);
        let by = |k: PlatformKind| {
            reports
                .iter()
                .find(|r| r.platform == k)
                .expect("report present")
        };
        let wa = by(PlatformKind::WhatsApp);
        let tg = by(PlatformKind::Telegram);
        let dc = by(PlatformKind::Discord);
        assert!(wa.scored > 100 && tg.scored > 100 && dc.scored > 100);
        assert!(
            tg.toxic_share > dc.toxic_share,
            "TG {} vs DC {}",
            tg.toxic_share,
            dc.toxic_share
        );
        assert!(
            dc.toxic_share > wa.toxic_share,
            "DC {} vs WA {}",
            dc.toxic_share,
            wa.toxic_share
        );
        // Band: loose at the tiny fixture's scale, where one viral group
        // (usually crypto) dominates the English corpus and dilutes the
        // sex-topic share.
        assert!(
            (0.01..=0.40).contains(&tg.toxic_share),
            "TG {}",
            tg.toxic_share
        );
        assert!(wa.toxic_share < 0.05, "WA {}", wa.toxic_share);
    }

    #[test]
    fn reports_are_well_formed() {
        let vocab = Vocabulary::build();
        for r in score_dataset(dataset(), &vocab, 50.0) {
            assert!((0.0..=1.0).contains(&r.mean));
            assert!((0.0..=1.0).contains(&r.toxic_share));
            assert!((0.0..=1.0).contains(&r.p90));
            assert!(r.p90 + 1e-9 >= r.mean || r.toxic_share < 0.5);
        }
    }
}
