//! # chatlens-perspective — toxicity scoring (the paper's future work)
//!
//! §8 of the paper: *"we aim to … assess the prevalence of toxic content
//! shared within such groups (i.e., by leveraging Google's Perspective
//! API)"*. This crate implements that planned experiment against the
//! simulated ecosystem:
//!
//! * [`lexicon`] — a deterministic toxicity model: per-token weights over
//!   the workload vocabulary (the sex/hentai vocabularies of Table 3 are
//!   the high-toxicity mass), combined into a logistic per-document score
//!   in `[0, 1]` like Perspective's `TOXICITY` probability.
//! * [`service`] — the scoring API as a transport [`Service`]: one
//!   request per document, QPS-limited exactly like the real API's free
//!   tier, so a client that doesn't pace itself gets 429s.
//! * [`client`] — a paced scoring client plus [`client::score_dataset`],
//!   which pushes every collected English tweet through the API and
//!   aggregates per-platform toxicity reports.
//!
//! The result reproduces what the authors hypothesised they would find:
//! Telegram's tweet stream (23% sex topics) scores far above WhatsApp's,
//! with Discord in between (hentai servers, 9%).
//!
//! [`Service`]: chatlens_simnet::transport::Service

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod lexicon;
pub mod service;

pub use client::{score_dataset, ToxicityReport};
pub use lexicon::ToxicityLexicon;
pub use service::PerspectiveService;
