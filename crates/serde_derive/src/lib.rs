//! Vendored offline shim of serde's derive macros.
//!
//! Parses the token stream by hand (no `syn`/`quote` available offline),
//! supporting exactly what this workspace derives on: non-generic structs
//! with named fields, tuple fields, or no fields. `#[derive(Serialize)]`
//! emits a field-by-field `serialize_struct` impl; `#[derive(Deserialize)]`
//! expands to nothing (the workspace never deserializes — the trait import
//! still resolves against the shim `serde` crate's marker trait).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` for a plain struct.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_struct(input) {
        Ok(parsed) => render_impl(&parsed).parse().expect("generated impl parses"),
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("error tokens"),
    }
}

/// Derives `serde::Deserialize`: intentionally a no-op (see crate docs).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

struct Parsed {
    name: String,
    fields: Fields,
}

fn parse_struct(input: TokenStream) -> Result<Parsed, String> {
    let mut iter = input.into_iter().peekable();
    // Skip outer attributes (`#[...]`, including doc comments) and
    // visibility (`pub`, `pub(...)`).
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                iter.next(); // the bracketed attribute group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            _ => break,
        }
    }
    match iter.next() {
        Some(TokenTree::Ident(kw)) if kw.to_string() == "struct" => {}
        Some(TokenTree::Ident(kw)) if kw.to_string() == "enum" => {
            return Err("serde shim derive supports structs only, not enums".into());
        }
        other => return Err(format!("expected `struct`, found {other:?}")),
    }
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct name, found {other:?}")),
    };
    match iter.next() {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            Err("serde shim derive supports non-generic structs only".into())
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Parsed {
            name,
            fields: Fields::Named(parse_named_fields(g.stream())?),
        }),
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Ok(Parsed {
            name,
            fields: Fields::Tuple(count_tuple_fields(g.stream())),
        }),
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Parsed {
            name,
            fields: Fields::Unit,
        }),
        None => Ok(Parsed {
            name,
            fields: Fields::Unit,
        }),
        other => Err(format!("unexpected token after struct name: {other:?}")),
    }
}

fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        // Skip per-field attributes and visibility.
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                    iter.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    iter.next();
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            iter.next();
                        }
                    }
                }
                _ => break,
            }
        }
        match iter.next() {
            Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
            None => break,
            other => return Err(format!("expected field name, found {other:?}")),
        }
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field name, found {other:?}")),
        }
        // Skip the type: everything until a comma at angle-bracket depth 0.
        let mut angle_depth = 0i32;
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => angle_depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => angle_depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle_depth == 0 => {
                    iter.next();
                    break;
                }
                None => break,
                _ => {}
            }
            iter.next();
        }
    }
    Ok(fields)
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let mut angle_depth = 0i32;
    let mut count = 0usize;
    let mut saw_any = false;
    for tt in body {
        saw_any = true;
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => count += 1,
                _ => {}
            }
        }
    }
    // `(A, B)` has one top-level comma for two fields; a trailing comma
    // over-counts but `(A, B,)` is unidiomatic in this codebase.
    if saw_any {
        count + 1
    } else {
        0
    }
}

fn render_impl(parsed: &Parsed) -> String {
    let name = &parsed.name;
    let mut out = String::new();
    out.push_str("#[automatically_derived]\n");
    out.push_str(&format!("impl ::serde::Serialize for {name} {{\n"));
    out.push_str(
        "    fn serialize<__S: ::serde::Serializer>(&self, __serializer: __S)\n        \
         -> ::core::result::Result<__S::Ok, __S::Error> {\n",
    );
    match &parsed.fields {
        Fields::Named(fields) => {
            out.push_str(&format!(
                "        let mut __state = ::serde::Serializer::serialize_struct(\
                 __serializer, {name:?}, {})?;\n",
                fields.len()
            ));
            for f in fields {
                out.push_str(&format!(
                    "        ::serde::ser::SerializeStruct::serialize_field(\
                     &mut __state, {f:?}, &self.{f})?;\n"
                ));
            }
            out.push_str("        ::serde::ser::SerializeStruct::end(__state)\n");
        }
        Fields::Tuple(n) if *n == 1 => {
            out.push_str(&format!(
                "        ::serde::Serializer::serialize_newtype_struct(\
                 __serializer, {name:?}, &self.0)\n"
            ));
        }
        Fields::Tuple(n) => {
            out.push_str(&format!(
                "        let mut __state = ::serde::Serializer::serialize_tuple_struct(\
                 __serializer, {name:?}, {n})?;\n"
            ));
            for i in 0..*n {
                out.push_str(&format!(
                    "        ::serde::ser::SerializeTupleStruct::serialize_field(\
                     &mut __state, &self.{i})?;\n"
                ));
            }
            out.push_str("        ::serde::ser::SerializeTupleStruct::end(__state)\n");
        }
        Fields::Unit => {
            out.push_str(&format!(
                "        ::serde::Serializer::serialize_unit_struct(__serializer, {name:?})\n"
            ));
        }
    }
    out.push_str("    }\n}\n");
    out
}
