//! The ecosystem builder: three populated platforms plus the tweet store.

use crate::config::ScenarioConfig;
use crate::groups::{generate_groups, GroupMeta};
use crate::sharing::{generate_control_drafts, generate_share_drafts, Draft, DraftKind};
use crate::topics::Vocabulary;
use chatlens_platforms::id::{GroupId, PlatformKind};
use chatlens_platforms::platform::{AccountState, Platform};
use chatlens_simnet::fault::TokenBucketState;
use chatlens_simnet::rng::Rng;
use chatlens_simnet::time::StudyWindow;
use chatlens_twitter::TweetStore;
use std::collections::HashMap;

/// Twitter author-id block assigned to each tweet population, so
/// per-platform author pools are disjoint (the paper's per-platform user
/// counts overlap only marginally).
const AUTHOR_BLOCK: u32 = 50_000_000;

/// A fully built world: the three platforms, their ground-truth metadata,
/// and the tweet store — everything the collection campaign needs.
pub struct Ecosystem {
    /// The scenario this world was built from.
    pub config: ScenarioConfig,
    /// The collection window.
    pub window: StudyWindow,
    /// The token vocabulary behind every tweet's `tokens`.
    pub vocab: Vocabulary,
    /// The three platforms, indexed by [`PlatformKind::index`].
    pub platforms: [Platform; 3],
    /// Ground-truth group metadata, parallel to each platform's groups.
    pub metas: [Vec<GroupMeta>; 3],
    /// The tweet store (mount as `twitter` on the transport).
    pub twitter: TweetStore,
}

/// The campaign-mutated slice of an [`Ecosystem`], exported for
/// checkpointing. The world population is rebuilt deterministically from
/// the scenario seed on restore ([`Ecosystem::build`]), so a snapshot only
/// carries what the campaign changed: collector accounts, server-side
/// flood-control buckets, and which groups had histories materialized.
#[derive(Debug, Clone, PartialEq)]
pub struct EcosystemDelta {
    /// Collector-account states per platform (WhatsApp, Telegram, Discord).
    pub accounts: [Vec<AccountState>; 3],
    /// API flood-control bucket state per platform (`None` where absent).
    pub api_buckets: [Option<TokenBucketState>; 3],
    /// Groups with a materialized history, per platform, in the order the
    /// histories were installed (materialization allocates platform user
    /// ids, so restore must replay installs in this order).
    pub materialized: [Vec<GroupId>; 3],
}

impl Ecosystem {
    /// Build the world from a scenario. Deterministic: the same config
    /// yields an identical ecosystem.
    pub fn build(config: ScenarioConfig) -> Ecosystem {
        let window = StudyWindow::paper();
        let vocab = Vocabulary::build();
        let mut root = Rng::new(config.seed);
        let mut platforms = [
            Platform::new(PlatformKind::WhatsApp),
            Platform::new(PlatformKind::Telegram),
            Platform::new(PlatformKind::Discord),
        ];
        let mut metas: [Vec<GroupMeta>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        let mut drafts: Vec<Draft> = Vec::new();
        for kind in PlatformKind::ALL {
            let i = kind.index();
            let params = &config.platforms[i];
            // lint:allow(D11) per-platform label family: kind.name() ranges over the fixed PlatformKind table
            let mut rng = root.fork(kind.name());
            let n_groups = config.scaled(params.n_group_urls);
            metas[i] = generate_groups(&mut platforms[i], params, &window, n_groups, &mut rng);
            drafts.extend(generate_share_drafts(
                &platforms[i],
                &metas[i],
                params,
                &vocab,
                &window,
                config.scaled(params.n_tweet_authors),
                (i as u32 + 1) * AUTHOR_BLOCK,
                config.p_noise_url,
                &mut rng,
            ));
        }
        {
            let mut rng = root.fork("control");
            drafts.extend(generate_control_drafts(
                &config.control,
                config.scaled(config.control.n_tweets),
                &window,
                &vocab,
                4 * AUTHOR_BLOCK,
                &mut rng,
            ));
        }
        // Cross-platform co-shares: a sliver of sharing tweets advertise a
        // second group on a *different* platform. The paper's Table 2
        // counts such a tweet in both platforms' rows but once in its
        // total (the rows sum to 2,244,032 against a printed 2,234,128).
        {
            let mut rng = root.fork("cross-platform");
            for draft in &mut drafts {
                let own = match draft.kind {
                    DraftKind::Original { platform, .. } | DraftKind::Retweet { platform, .. } => {
                        platform
                    }
                    DraftKind::Control => continue,
                };
                if !rng.chance(config.p_cross_platform) {
                    continue;
                }
                let other = match rng.below(2) {
                    0 => (own + 1) % 3,
                    _ => (own + 2) % 3,
                };
                if metas[other].is_empty() {
                    continue;
                }
                // The co-shared group must already exist (and still be
                // alive) at the tweet's posting time — nobody can share an
                // invite to a group that hasn't been created yet.
                for _attempt in 0..8 {
                    let pick = rng.index(metas[other].len());
                    let group = platforms[other].group(metas[other][pick].id);
                    if group.is_alive(draft.tweet.at) {
                        draft.tweet.urls.push(group.invite.url());
                        break;
                    }
                }
            }
        }
        // Global time order with deterministic tie-breaking (draft index).
        let mut order: Vec<u32> = (0..drafts.len() as u32).collect();
        order.sort_by_key(|&i| (drafts[i as usize].tweet.at, i));
        let mut twitter = TweetStore::new(config.search_miss, config.stream_miss, config.seed);
        let mut original_ids: HashMap<(usize, u32, u32), chatlens_twitter::TweetId> =
            HashMap::new();
        for &i in &order {
            let draft = &drafts[i as usize];
            let mut tweet = draft.tweet.clone();
            match draft.kind {
                DraftKind::Original {
                    platform,
                    group,
                    ordinal,
                } => {
                    let id = twitter.push(tweet);
                    original_ids.insert((platform, group, ordinal), id);
                }
                DraftKind::Retweet {
                    platform,
                    group,
                    of_ordinal,
                } => {
                    // The original strictly precedes its retweets in time,
                    // so its id is already known.
                    tweet.retweet_of = Some(original_ids[&(platform, group, of_ordinal)]);
                    twitter.push(tweet);
                }
                DraftKind::Control => {
                    twitter.push(tweet);
                }
            }
        }
        Ecosystem {
            config,
            window,
            vocab,
            platforms,
            metas,
            twitter,
        }
    }

    /// Borrow one platform.
    pub fn platform(&self, kind: PlatformKind) -> &Platform {
        &self.platforms[kind.index()]
    }

    /// Mutably borrow one platform.
    pub fn platform_mut(&mut self, kind: PlatformKind) -> &mut Platform {
        &mut self.platforms[kind.index()]
    }

    /// Ground-truth metadata of one group.
    pub fn meta(&self, kind: PlatformKind, id: GroupId) -> &GroupMeta {
        &self.metas[kind.index()][id.0 as usize]
    }

    /// Export the campaign-mutated slice of this world for a checkpoint.
    pub fn export_delta(&self) -> EcosystemDelta {
        let [wa, tg, dc] = &self.platforms;
        EcosystemDelta {
            accounts: [
                wa.export_accounts(),
                tg.export_accounts(),
                dc.export_accounts(),
            ],
            api_buckets: [
                wa.api_bucket_state(),
                tg.api_bucket_state(),
                dc.api_bucket_state(),
            ],
            materialized: [
                wa.materialized_groups(),
                tg.materialized_groups(),
                dc.materialized_groups(),
            ],
        }
    }

    /// Re-apply a checkpointed [`EcosystemDelta`] to a freshly built world:
    /// restores accounts and flood-control buckets, and re-materializes
    /// exactly the groups the original run had materialized, in the
    /// original installation order (each group's content is a pure
    /// function of its own seed, but the platform user ids its members
    /// receive come from a shared counter, so the order matters).
    pub fn apply_delta(&mut self, delta: &EcosystemDelta) {
        for kind in PlatformKind::ALL {
            let i = kind.index();
            self.platforms[i].restore_accounts(delta.accounts[i].clone());
            self.platforms[i].restore_api_bucket(delta.api_buckets[i]);
            for &gid in &delta.materialized[i] {
                self.materialize_group(kind, gid);
            }
        }
    }

    /// Materialize a joined group's members and messages (idempotent).
    pub fn materialize_group(&mut self, kind: PlatformKind, id: GroupId) {
        let i = kind.index();
        let country = self.metas[i][id.0 as usize].country;
        crate::activity::materialize(
            &mut self.platforms[i],
            id,
            &self.config.platforms[i],
            &self.window,
            country,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Ecosystem {
        Ecosystem::build(ScenarioConfig::tiny())
    }

    #[test]
    fn build_produces_scaled_counts() {
        let eco = tiny();
        let cfg = &eco.config;
        for kind in PlatformKind::ALL {
            let expect = cfg.scaled(cfg.platform(kind).n_group_urls);
            assert_eq!(eco.platform(kind).groups.len() as u64, expect, "{kind}");
        }
        let stats = eco.twitter.stats();
        assert!(stats.matching > 0);
        assert!(stats.control > 0);
        // Tweet totals should land near the scaled targets.
        let target: u64 = PlatformKind::ALL
            .iter()
            .map(|&k| cfg.scaled(cfg.platform(k).n_tweets_target))
            .sum();
        let ratio = stats.matching as f64 / target as f64;
        assert!((0.5..=2.0).contains(&ratio), "tweet ratio {ratio}");
    }

    #[test]
    fn build_is_deterministic() {
        let a = tiny();
        let b = tiny();
        assert_eq!(a.twitter.stats(), b.twitter.stats());
        for kind in PlatformKind::ALL {
            let (pa, pb) = (a.platform(kind), b.platform(kind));
            assert_eq!(pa.groups.len(), pb.groups.len());
            for (ga, gb) in pa.groups.iter().zip(&pb.groups) {
                assert_eq!(ga.invite, gb.invite);
                assert_eq!(ga.created_at, gb.created_at);
                assert_eq!(ga.revoked_at, gb.revoked_at);
            }
        }
        // Spot-check tweet equality.
        for i in (0..a.twitter.tweets().len()).step_by(997) {
            assert_eq!(a.twitter.tweets()[i], b.twitter.tweets()[i]);
        }
    }

    #[test]
    fn retweet_links_resolve_to_earlier_tweets_with_same_url() {
        let eco = tiny();
        let mut checked = 0;
        for t in eco.twitter.tweets() {
            if t.is_control {
                continue;
            }
            if let Some(orig_id) = t.retweet_of {
                let orig = eco.twitter.get(orig_id).expect("original exists");
                assert!(orig.at < t.at, "original after retweet");
                assert!(!orig.is_retweet(), "retweet of a retweet");
                assert_eq!(orig.urls[0], t.urls[0], "url mismatch");
                checked += 1;
            }
        }
        assert!(checked > 100, "retweets checked: {checked}");
    }

    #[test]
    fn materialize_group_via_ecosystem() {
        let mut eco = tiny();
        let gid = eco.metas[0][0].id;
        assert!(eco
            .platform(PlatformKind::WhatsApp)
            .group(gid)
            .history
            .is_none());
        eco.materialize_group(PlatformKind::WhatsApp, gid);
        assert!(eco
            .platform(PlatformKind::WhatsApp)
            .group(gid)
            .history
            .is_some());
    }

    #[test]
    fn tweets_are_chronological() {
        let eco = tiny();
        let tweets = eco.twitter.tweets();
        assert!(tweets.windows(2).all(|w| w[0].at <= w[1].at));
    }
}
