//! Tweet generation: how group URLs get shared on Twitter (Fig 1–4) and
//! the control sample (§3.1).
//!
//! Each group's sharing plan is a burst of *original* tweets (the first at
//! the group's `first_share` instant, later ones spread over the following
//! days — Telegram URLs in particular get re-shared across several days,
//! §4) plus *retweets* attached to earlier originals at each platform's
//! retweet rate (Fig 3c). The generator emits [`Draft`]s; the ecosystem
//! builder sorts them globally by time, pushes them into the store, and
//! resolves retweet links to final tweet ids.

use crate::config::{ControlParams, PlatformParams};
use crate::groups::GroupMeta;
use crate::lang::LangProfile;
use crate::topics::{sample_lexicon_tokens, topics_for, topics_for_lang, TopicSampler, Vocabulary};
use chatlens_platforms::platform::Platform;
use chatlens_simnet::dist::Exponential;
use chatlens_simnet::rng::Rng;
use chatlens_simnet::time::{SimDuration, SimTime, StudyWindow};
use chatlens_twitter::{Lang, Tweet, TweetId, TwitterUserId};

/// What a draft tweet is, for retweet-link resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DraftKind {
    /// An original tweet; `ordinal` numbers originals within their group.
    Original {
        /// Platform index of the shared group.
        platform: usize,
        /// Group index within the platform.
        group: u32,
        /// Ordinal of this original within the group's originals.
        ordinal: u32,
    },
    /// A retweet of the group's original with the given ordinal.
    Retweet {
        /// Platform index of the shared group.
        platform: usize,
        /// Group index within the platform.
        group: u32,
        /// Ordinal of the retweeted original.
        of_ordinal: u32,
    },
    /// A control-sample tweet.
    Control,
}

/// A tweet waiting for global time-sorting and id assignment.
#[derive(Debug, Clone)]
pub struct Draft {
    /// The tweet content (id and `retweet_of` filled in later).
    pub tweet: Tweet,
    /// Draft role for link resolution.
    pub kind: DraftKind,
}

fn sample_feature_count(p1: f64, p2: f64, rng: &mut Rng) -> u8 {
    // P(>=1) = p1, P(>=2) = p2; two-or-more spreads uniformly over 2–4.
    let roll = rng.f64();
    if roll >= p1 {
        0
    } else if roll >= p2 {
        1
    } else {
        rng.range(2, 4) as u8
    }
}

/// Occasional unrelated URLs the extractor must ignore (§3.1's patterns
/// are validated, not trusted).
const NOISE_URLS: [&str; 4] = [
    "https://example.com/article",
    "https://youtu.be/dQw4w9WgXcQ",
    "https://bit.ly/2WhAtEv",
    "https://discord.com/developers",
];

/// Generate the sharing tweets for all of one platform's groups.
#[allow(clippy::too_many_arguments)]
pub fn generate_share_drafts(
    platform: &Platform,
    metas: &[GroupMeta],
    params: &PlatformParams,
    vocab: &Vocabulary,
    window: &StudyWindow,
    author_pool: u64,
    author_offset: u32,
    p_noise_url: f64,
    rng: &mut Rng,
) -> Vec<Draft> {
    let kind = platform.kind;
    let pidx = kind.index();
    let samplers: Vec<TopicSampler> = topics_for(kind)
        .iter()
        .map(|t| TopicSampler::new(t, vocab))
        .collect();
    // Languages with their own topic structure (§4: COVID-19 and politics
    // emerge only in the Spanish/Portuguese analyses).
    let lang_samplers: Vec<(Lang, Vec<TopicSampler>, chatlens_simnet::dist::Categorical)> =
        Lang::ALL
            .into_iter()
            .filter_map(|lang| {
                topics_for_lang(kind, lang).map(|topics| {
                    let weights: Vec<f64> = topics.iter().map(|t| t.weight).collect();
                    (
                        lang,
                        topics.iter().map(|t| TopicSampler::new(t, vocab)).collect(),
                        chatlens_simnet::dist::Categorical::new(&weights),
                    )
                })
            })
            .collect();
    let lang_profile = LangProfile::for_platform(kind);
    let end = window.end_time();
    let retweet_gap = Exponential::new(1.0 / (6.0 * 3_600.0)); // mean 6 hours
    let mut drafts = Vec::new();
    for meta in metas {
        let group = platform.group(meta.id);
        let n = meta.shares;
        let n_retweets = if n <= 1 {
            0
        } else {
            (((f64::from(n)) * params.features.p_retweet).round() as u32).min(n - 1)
        };
        let n_originals = n - n_retweets;
        // Original tweet times: first at first_share, then exponential
        // gaps. Casually re-shared URLs repeat every ~1.2 days; viral URLs
        // burn through their shares within an attention span of a few
        // days (bursts are local in time — attention decays, it does not
        // stretch to the end of the observation window).
        let remaining = (end - meta.first_share).as_secs().max(2) as f64;
        // URLs shared thousands of times are spam campaigns (the paper's
        // 14 Telegram URLs with >10K tweets were porn/crypto channels
        // promoted steadily for weeks); ordinary virality burns out in a
        // few days.
        let span = if n_originals > 500 {
            0.9 * remaining
        } else {
            (86_400.0 * rng.range(1, 8) as f64).min(0.9 * remaining)
        };
        let gap_mean = (1.2f64 * 86_400.0).min(span / f64::from(n_originals.max(1)));
        let original_gap = Exponential::new(1.0 / gap_mean.max(1.0));
        let mut original_times = Vec::with_capacity(n_originals as usize);
        let mut t = meta.first_share;
        for i in 0..n_originals {
            if i > 0 {
                t += SimDuration::secs(original_gap.sample(rng).ceil() as u64 + 1);
            }
            if t >= end {
                // Clamp to strictly more than a second before the horizon,
                // leaving room for retweets to land strictly after their
                // original.
                t = end
                    .checked_sub(SimDuration::secs(2 + rng.below(3_600)))
                    .expect("window end");
            }
            original_times.push(t);
        }
        let make_tweet = |at: SimTime, rng: &mut Rng| -> Tweet {
            // Tweets about a group lean toward its language, but plenty of
            // re-shares are written in the sharer's own language; the 0.5
            // coupling keeps per-platform marginals stable (Fig 4) while
            // preserving within-group coherence.
            let lang = if rng.chance(0.5) {
                meta.lang
            } else {
                lang_profile.sample(rng)
            };
            let tokens = if lang == Lang::En {
                samplers[meta.topic].sample_tokens(rng)
            } else if let Some((_, ls, dist)) = lang_samplers.iter().find(|(l, _, _)| *l == lang) {
                // Stable per-group language topic (a group talks about one
                // thing no matter who tweets it), weighted by the topic
                // set's shares via a group-keyed generator.
                let mut group_rng = Rng::new(0x0070_91C5 ^ u64::from(meta.id.0));
                let t = dist.sample(&mut group_rng);
                ls[t].sample_tokens(rng)
            } else {
                sample_lexicon_tokens(lang, vocab, rng)
            };
            let mut urls = vec![group.invite.url()];
            if rng.chance(p_noise_url) {
                urls.push(NOISE_URLS[rng.index(NOISE_URLS.len())].to_string());
            }
            Tweet {
                id: TweetId(0),
                author: TwitterUserId(author_offset + rng.below(author_pool.max(1)) as u32),
                at,
                lang,
                hashtags: sample_feature_count(
                    params.features.p_hashtag,
                    params.features.p_hashtag2,
                    rng,
                ),
                mentions: sample_feature_count(
                    params.features.p_mention,
                    params.features.p_mention2,
                    rng,
                ),
                retweet_of: None,
                urls,
                tokens,
                is_control: false,
            }
        };
        for (ordinal, &at) in original_times.iter().enumerate() {
            drafts.push(Draft {
                tweet: make_tweet(at, rng),
                kind: DraftKind::Original {
                    platform: pidx,
                    group: meta.id.0,
                    ordinal: ordinal as u32,
                },
            });
        }
        for _ in 0..n_retweets {
            // Retweets skew heavily toward the first original (the tweet
            // that "went viral").
            let of_ordinal = if n_originals <= 1 || rng.chance(0.6) {
                0
            } else {
                rng.below(u64::from(n_originals)) as u32
            };
            let base = original_times[of_ordinal as usize];
            let mut at = base + SimDuration::secs(retweet_gap.sample(rng).ceil() as u64 + 1);
            if at >= end {
                at = end.checked_sub(SimDuration::secs(1)).expect("window end");
            }
            // A retweet can never precede its original; the clamp above
            // keeps `at >= base` because `base < end`.
            let at = at
                .max(base + SimDuration::secs(1))
                .min(end.checked_sub(SimDuration::secs(1)).expect("window end"));
            drafts.push(Draft {
                tweet: make_tweet(at, rng),
                kind: DraftKind::Retweet {
                    platform: pidx,
                    group: meta.id.0,
                    of_ordinal,
                },
            });
        }
    }
    drafts
}

/// Generate the control (1% sample) tweet population.
pub fn generate_control_drafts(
    params: &ControlParams,
    n_tweets: u64,
    window: &StudyWindow,
    vocab: &Vocabulary,
    author_offset: u32,
    rng: &mut Rng,
) -> Vec<Draft> {
    let lang_profile = LangProfile::control();
    let span = (window.end_time() - window.start_time()).as_secs();
    let mut drafts = Vec::with_capacity(n_tweets as usize);
    for _ in 0..n_tweets {
        let at = window.start_time() + SimDuration::secs(rng.below(span));
        let lang = lang_profile.sample(rng);
        drafts.push(Draft {
            tweet: Tweet {
                id: TweetId(0),
                author: TwitterUserId(author_offset + rng.below(params.n_authors.max(1)) as u32),
                at,
                lang,
                hashtags: sample_feature_count(
                    params.features.p_hashtag,
                    params.features.p_hashtag2,
                    rng,
                ),
                mentions: sample_feature_count(
                    params.features.p_mention,
                    params.features.p_mention2,
                    rng,
                ),
                // Control retweets carry no resolvable original (the
                // original is outside the 1% sample with overwhelming
                // probability); the sentinel id 0 marks "a retweet".
                retweet_of: rng.chance(params.features.p_retweet).then_some(TweetId(0)),
                urls: Vec::new(),
                tokens: sample_lexicon_tokens(lang, vocab, rng),
                is_control: true,
            },
            kind: DraftKind::Control,
        });
    }
    drafts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScenarioConfig;
    use crate::groups::generate_groups;
    use chatlens_platforms::id::PlatformKind;

    fn drafts_for(
        kind: PlatformKind,
        n_groups: u64,
        seed: u64,
    ) -> (Platform, Vec<GroupMeta>, Vec<Draft>) {
        let cfg = ScenarioConfig::paper();
        let vocab = Vocabulary::build();
        let window = StudyWindow::paper();
        let mut platform = Platform::new(kind);
        let mut rng = Rng::new(seed);
        let metas = generate_groups(
            &mut platform,
            cfg.platform(kind),
            &window,
            n_groups,
            &mut rng,
        );
        let drafts = generate_share_drafts(
            &platform,
            &metas,
            cfg.platform(kind),
            &vocab,
            &window,
            cfg.platform(kind).n_tweet_authors,
            0,
            cfg.p_noise_url,
            &mut rng,
        );
        (platform, metas, drafts)
    }

    #[test]
    fn share_totals_match_plan() {
        let (_, metas, drafts) = drafts_for(PlatformKind::WhatsApp, 800, 1);
        let planned: u64 = metas.iter().map(|m| u64::from(m.shares)).sum();
        assert_eq!(drafts.len() as u64, planned);
    }

    #[test]
    fn retweet_rate_near_target() {
        let (_, _, drafts) = drafts_for(PlatformKind::Telegram, 1500, 2);
        let rts = drafts
            .iter()
            .filter(|d| matches!(d.kind, DraftKind::Retweet { .. }))
            .count() as f64
            / drafts.len() as f64;
        assert!((0.66..=0.81).contains(&rts), "retweet rate {rts}");
    }

    #[test]
    fn retweets_follow_their_originals() {
        let (_, _, drafts) = drafts_for(PlatformKind::Discord, 600, 3);
        use std::collections::HashMap;
        let mut original_time: HashMap<(u32, u32), SimTime> = HashMap::new();
        for d in &drafts {
            if let DraftKind::Original { group, ordinal, .. } = d.kind {
                original_time.insert((group, ordinal), d.tweet.at);
            }
        }
        for d in &drafts {
            if let DraftKind::Retweet {
                group, of_ordinal, ..
            } = d.kind
            {
                let orig = original_time[&(group, of_ordinal)];
                assert!(
                    d.tweet.at > orig,
                    "retweet at {} <= original {orig}",
                    d.tweet.at
                );
            }
        }
    }

    #[test]
    fn every_share_carries_the_invite_url() {
        let (platform, metas, drafts) = drafts_for(PlatformKind::WhatsApp, 300, 4);
        use std::collections::HashMap;
        let url_of: HashMap<u32, String> = metas
            .iter()
            .map(|m| (m.id.0, platform.group(m.id).invite.url()))
            .collect();
        for d in &drafts {
            let group = match d.kind {
                DraftKind::Original { group, .. } | DraftKind::Retweet { group, .. } => group,
                DraftKind::Control => unreachable!(),
            };
            assert!(d.tweet.urls.contains(&url_of[&group]));
        }
    }

    #[test]
    fn feature_rates_roughly_match() {
        let (_, _, drafts) = drafts_for(PlatformKind::Telegram, 2000, 5);
        let n = drafts.len() as f64;
        let hashtags = drafts.iter().filter(|d| d.tweet.hashtags >= 1).count() as f64 / n;
        let mentions = drafts.iter().filter(|d| d.tweet.mentions >= 1).count() as f64 / n;
        assert!((hashtags - 0.24).abs() < 0.03, "hashtags {hashtags}");
        assert!((mentions - 0.84).abs() < 0.03, "mentions {mentions}");
    }

    #[test]
    fn tweets_never_leave_the_collection_horizon() {
        let (_, _, drafts) = drafts_for(PlatformKind::Discord, 1000, 6);
        let w = StudyWindow::paper();
        let earliest = w.start.plus_days(-7).midnight();
        for d in &drafts {
            assert!(d.tweet.at >= earliest);
            assert!(d.tweet.at < w.end_time());
        }
    }

    #[test]
    fn english_tweets_use_topic_tokens() {
        let (_, metas, drafts) = drafts_for(PlatformKind::Discord, 1000, 7);
        let vocab = Vocabulary::build();
        use std::collections::HashMap;
        let topic_of: HashMap<u32, usize> = metas.iter().map(|m| (m.id.0, m.topic)).collect();
        let topics = topics_for(PlatformKind::Discord);
        let mut matched = 0u32;
        let mut english = 0u32;
        for d in &drafts {
            if d.tweet.lang != Lang::En {
                continue;
            }
            english += 1;
            let group = match d.kind {
                DraftKind::Original { group, .. } | DraftKind::Retweet { group, .. } => group,
                DraftKind::Control => continue,
            };
            let terms = topics[topic_of[&group]].terms;
            if d.tweet
                .tokens
                .iter()
                .any(|&t| terms.contains(&vocab.word(t)))
            {
                matched += 1;
            }
        }
        assert!(english > 100);
        let rate = f64::from(matched) / f64::from(english);
        assert!(rate > 0.9, "topic-token rate {rate}");
    }

    #[test]
    fn control_drafts_have_no_urls() {
        let cfg = ScenarioConfig::paper();
        let vocab = Vocabulary::build();
        let mut rng = Rng::new(8);
        let drafts = generate_control_drafts(
            &cfg.control,
            5_000,
            &StudyWindow::paper(),
            &vocab,
            1_000_000,
            &mut rng,
        );
        assert_eq!(drafts.len(), 5_000);
        assert!(drafts.iter().all(|d| d.tweet.urls.is_empty()));
        assert!(drafts.iter().all(|d| d.tweet.is_control));
        let rt = drafts.iter().filter(|d| d.tweet.is_retweet()).count() as f64 / 5_000.0;
        assert!((rt - 0.40).abs() < 0.03, "control retweet rate {rt}");
    }

    #[test]
    fn noise_urls_present_but_rare() {
        let (_, _, drafts) = drafts_for(PlatformKind::WhatsApp, 1500, 9);
        let noisy =
            drafts.iter().filter(|d| d.tweet.urls.len() > 1).count() as f64 / drafts.len() as f64;
        assert!((noisy - 0.05).abs() < 0.02, "noise rate {noisy}");
    }
}
