//! Topic vocabularies (Table 3) and the global token vocabulary.
//!
//! The paper runs LDA over the English tweets that share each platform's
//! group URLs and reports ten topics per platform with hand-assigned
//! labels. Here the causality is inverted: every group is *assigned* one of
//! its platform's topics (weighted by the tweet share Table 3 reports), and
//! the tweets sharing it draw their words from that topic's term
//! distribution plus a common filler pool. The analysis crate's LDA must
//! then *recover* the topics — same pipeline, synthetic corpus.

use chatlens_platforms::PlatformKind;
use chatlens_simnet::dist::Categorical;
use chatlens_simnet::rng::Rng;
use std::collections::HashMap;

/// One LDA-recoverable topic: label, tweet-share weight (Table 3's %), and
/// its characteristic terms (most-probable first).
#[derive(Debug, Clone)]
pub struct Topic {
    /// Hand-assigned label from Table 3.
    pub label: &'static str,
    /// Percentage of the platform's English tweets on this topic.
    pub weight: f64,
    /// Characteristic terms, most probable first.
    pub terms: &'static [&'static str],
}

/// The ten WhatsApp topics of Table 3.
pub fn whatsapp_topics() -> Vec<Topic> {
    vec![
        Topic {
            label: "Forex training",
            weight: 6.0,
            terms: &[
                "learn",
                "free",
                "forex",
                "training",
                "join",
                "trading",
                "text",
                "mini",
                "class",
                "animation",
            ],
        },
        Topic {
            label: "Earn money from home",
            weight: 8.0,
            terms: &[
                "home", "earn", "don", "just", "money", "using", "can", "start", "stay", "google",
            ],
        },
        Topic {
            label: "Instagram Followers Boosting",
            weight: 9.0,
            terms: &[
                "join",
                "followers",
                "instagram",
                "gain",
                "want",
                "money",
                "online",
                "group",
                "learn",
                "make",
            ],
        },
        Topic {
            label: "Cryptocurrencies",
            weight: 7.0,
            terms: &[
                "bitcoin", "ethereum", "crypto", "currency", "ads", "year", "like", "line",
                "people", "new",
            ],
        },
        Topic {
            label: "Earn money from home",
            weight: 13.0,
            terms: &[
                "make", "can", "money", "know", "daily", "home", "earn", "forex", "cash", "market",
            ],
        },
        Topic {
            label: "Cryptocurrencies",
            weight: 5.0,
            terms: &[
                "learn",
                "cryptocurrency",
                "make",
                "join",
                "days",
                "period",
                "another",
                "want",
                "day",
                "accumulate",
            ],
        },
        Topic {
            label: "WhatsApp group advertisement",
            weight: 30.0,
            terms: &[
                "join", "group", "whatsapp", "link", "follow", "click", "please", "chat", "open",
                "twitter",
            ],
        },
        Topic {
            label: "Making money",
            weight: 9.0,
            terms: &[
                "get", "never", "time", "actually", "income", "chat", "best", "taking", "account",
                "full",
            ],
        },
        Topic {
            label: "Nigeria-Related",
            weight: 6.0,
            terms: &[
                "will",
                "new",
                "retweet",
                "capital",
                "people",
                "now",
                "interested",
                "writing",
                "nigerian",
                "online",
            ],
        },
        Topic {
            label: "Cryptocurrencies",
            weight: 6.0,
            terms: &[
                "business", "ethereum", "free", "smart", "skills", "eth", "million", "join",
                "training", "webinar",
            ],
        },
    ]
}

/// The ten Telegram topics of Table 3.
pub fn telegram_topics() -> Vec<Topic> {
    vec![
        Topic {
            label: "Cryptocurrencies",
            weight: 9.0,
            terms: &[
                "bitcoin", "join", "sats", "get", "winners", "sex", "hours", "chat", "nice", "come",
            ],
        },
        Topic {
            label: "Cryptocurrencies",
            weight: 9.0,
            terms: &[
                "usdt",
                "giveaways",
                "oin",
                "winners",
                "ollow",
                "enter",
                "btc",
                "trc",
                "trx",
                "hours",
            ],
        },
        Topic {
            label: "Social Network Activity",
            weight: 11.0,
            terms: &[
                "follow", "like", "retweet", "giveaway", "tag", "join", "win", "twitter",
                "friends", "friend",
            ],
        },
        Topic {
            label: "Ask Me Anything/Quiz",
            weight: 8.0,
            terms: &[
                "ama", "may", "will", "utc", "quiz", "someone", "wallet", "don", "ust", "today",
            ],
        },
        Topic {
            label: "Advertising Telegram groups",
            weight: 14.0,
            terms: &[
                "free", "join", "just", "telegram", "money", "day", "channel", "don", "can", "baby",
            ],
        },
        Topic {
            label: "Sex",
            weight: 13.0,
            terms: &[
                "new",
                "worth",
                "user",
                "brand",
                "xpro",
                "performer",
                "smartphones",
                "girls",
                "boobs",
                "price",
            ],
        },
        Topic {
            label: "Giveaways",
            weight: 7.0,
            terms: &[
                "giving", "away", "will", "tmn", "link", "honor", "full", "butt", "video", "get",
            ],
        },
        Topic {
            label: "Sex",
            weight: 10.0,
            terms: &[
                "fuck", "want", "girl", "click", "show", "trading", "pussy", "powerful", "can",
                "cum",
            ],
        },
        Topic {
            label: "Advertising Telegram groups",
            weight: 11.0,
            terms: &[
                "telegram",
                "join",
                "group",
                "channel",
                "now",
                "below",
                "link",
                "get",
                "available",
                "opened",
            ],
        },
        Topic {
            label: "Referral Marketing",
            weight: 8.0,
            terms: &[
                "airdrop", "open", "https", "tokens", "wink", "referral", "token", "earn", "new",
                "good",
            ],
        },
    ]
}

/// The ten Discord topics of Table 3.
pub fn discord_topics() -> Vec<Topic> {
    vec![
        Topic {
            label: "Gaming",
            weight: 7.0,
            terms: &[
                "patreon",
                "free",
                "get",
                "today",
                "mystery",
                "public",
                "gaming",
                "gamedev",
                "indiegames",
                "alongside",
            ],
        },
        Topic {
            label: "Organizing online events",
            weight: 7.0,
            terms: &[
                "will", "may", "hosting", "week", "one", "time", "tonight", "don", "night", "last",
            ],
        },
        Topic {
            label: "Gaming",
            weight: 5.0,
            terms: &[
                "like", "oin", "alpha", "deal", "daily", "art", "lots", "battle", "raffle",
                "nintendo",
            ],
        },
        Topic {
            label: "Advertising Discord groups",
            weight: 33.0,
            terms: &[
                "discord", "join", "server", "link", "can", "visit", "want", "just", "new", "hey",
            ],
        },
        Topic {
            label: "Pokemon",
            weight: 7.0,
            terms: &[
                "united",
                "states",
                "venonat",
                "bite",
                "quick",
                "bug",
                "full",
                "fortnite",
                "pikacku",
                "confusion",
            ],
        },
        Topic {
            label: "Advertising Discord groups",
            weight: 10.0,
            terms: &[
                "giveaway", "follow", "retweet", "friends", "tag", "join", "discord", "enter",
                "fast", "winners",
            ],
        },
        Topic {
            label: "Tournaments",
            weight: 9.0,
            terms: &[
                "good",
                "live",
                "launching",
                "now",
                "tournament",
                "open",
                "next",
                "will",
                "free",
                "prize",
            ],
        },
        Topic {
            label: "Giveaways",
            weight: 8.0,
            terms: &[
                "giving",
                "est",
                "away",
                "awp",
                "will",
                "saturday",
                "friday",
                "coins",
                "many",
                "competition",
            ],
        },
        Topic {
            label: "Advertising Discord groups",
            weight: 4.0,
            terms: &[
                "discord", "join", "make", "sure", "ends", "chat", "token", "https", "music",
                "server",
            ],
        },
        Topic {
            label: "Hentai",
            weight: 9.0,
            terms: &[
                "join", "discord", "server", "come", "hentai", "now", "new", "paradise", "tenshi",
                "official",
            ],
        },
    ]
}

/// Topics for one platform.
pub fn topics_for(kind: PlatformKind) -> Vec<Topic> {
    match kind {
        PlatformKind::WhatsApp => whatsapp_topics(),
        PlatformKind::Telegram => telegram_topics(),
        PlatformKind::Discord => discord_topics(),
    }
}

/// Non-English topic sets. §4's closing remark: repeating the LDA analysis
/// in Spanish and Portuguese surfaces topics absent from English — the
/// COVID-19 pandemic (Spanish, WhatsApp and Telegram) and politics
/// (Spanish on Telegram, Portuguese on WhatsApp). The paper omits the
/// tables for space; these vocabularies reconstruct that analysis.
pub fn topics_for_lang(kind: PlatformKind, lang: chatlens_twitter::Lang) -> Option<Vec<Topic>> {
    use chatlens_twitter::Lang;
    match (kind, lang) {
        (PlatformKind::WhatsApp, Lang::Es) => Some(vec![
            Topic {
                label: "COVID-19",
                weight: 22.0,
                terms: &[
                    "covid",
                    "cuarentena",
                    "pandemia",
                    "salud",
                    "vacuna",
                    "virus",
                    "casos",
                    "medicos",
                ],
            },
            Topic {
                label: "Advertising WhatsApp groups (es)",
                weight: 34.0,
                terms: &[
                    "grupo",
                    "unete",
                    "enlace",
                    "amigos",
                    "entra",
                    "nuevo",
                    "chicos",
                    "bienvenidos",
                ],
            },
            Topic {
                label: "Jobs & money (es)",
                weight: 24.0,
                terms: &[
                    "dinero", "trabajo", "empleo", "casa", "ganar", "gratis", "negocio", "ingresos",
                ],
            },
            Topic {
                label: "Cryptocurrencies (es)",
                weight: 20.0,
                terms: &[
                    "bitcoin",
                    "cripto",
                    "inversion",
                    "ganancias",
                    "mercado",
                    "senales",
                    "euros",
                    "moneda",
                ],
            },
        ]),
        (PlatformKind::Telegram, Lang::Es) => Some(vec![
            Topic {
                label: "COVID-19",
                weight: 24.0,
                terms: &[
                    "covid",
                    "cuarentena",
                    "pandemia",
                    "salud",
                    "vacuna",
                    "virus",
                    "noticias",
                    "casos",
                ],
            },
            Topic {
                label: "Politics (es)",
                weight: 26.0,
                terms: &[
                    "politica",
                    "gobierno",
                    "elecciones",
                    "presidente",
                    "votar",
                    "partido",
                    "izquierda",
                    "derecha",
                ],
            },
            Topic {
                label: "Advertising Telegram channels (es)",
                weight: 30.0,
                terms: &[
                    "canal",
                    "unete",
                    "enlace",
                    "telegram",
                    "gratis",
                    "entra",
                    "nuevo",
                    "contenido",
                ],
            },
            Topic {
                label: "Cryptocurrencies (es)",
                weight: 20.0,
                terms: &[
                    "bitcoin",
                    "cripto",
                    "inversion",
                    "ganancias",
                    "senales",
                    "mercado",
                    "moneda",
                    "airdrop",
                ],
            },
        ]),
        (PlatformKind::WhatsApp, Lang::Pt) => Some(vec![
            Topic {
                label: "Politics (pt)",
                weight: 28.0,
                terms: &[
                    "politica",
                    "eleicoes",
                    "governo",
                    "presidente",
                    "voto",
                    "partido",
                    "brasil",
                    "congresso",
                ],
            },
            Topic {
                label: "Advertising WhatsApp groups (pt)",
                weight: 36.0,
                terms: &[
                    "grupo", "entre", "link", "amigos", "venha", "novo", "galera", "zap",
                ],
            },
            Topic {
                label: "Jobs & money (pt)",
                weight: 20.0,
                terms: &[
                    "dinheiro", "trabalho", "emprego", "casa", "ganhar", "gratis", "renda", "vagas",
                ],
            },
            Topic {
                label: "Football (pt)",
                weight: 16.0,
                terms: &[
                    "futebol",
                    "time",
                    "jogo",
                    "campeonato",
                    "gol",
                    "torcida",
                    "clube",
                    "copa",
                ],
            },
        ]),
        _ => None,
    }
}

/// English filler words mixed into every tweet; the analysis pipeline's
/// stopword list removes most of them, exactly as the paper removes stop
/// words before LDA (§4).
pub const FILLER: &[&str] = &[
    "the", "to", "a", "of", "and", "in", "for", "is", "on", "with", "this", "that", "you", "we",
    "are", "it", "be", "at", "my", "our",
];

/// Small per-language lexicons for non-English tweets (not topic-modeled —
/// the paper's LDA runs on English tweets only — but needed so the corpus
/// has realistic language variety for Fig 4).
pub fn lexicon_for(lang: chatlens_twitter::Lang) -> &'static [&'static str] {
    use chatlens_twitter::Lang;
    match lang {
        Lang::Es => &[
            "grupo", "unete", "enlace", "gratis", "dinero", "amigos", "nuevo", "canal", "entra",
            "hola", "juegos", "ahora",
        ],
        Lang::Pt => &[
            "grupo", "entre", "link", "gratis", "dinheiro", "amigos", "novo", "canal", "venha",
            "ola", "jogos", "agora",
        ],
        Lang::Ar => &[
            "مجموعة",
            "انضم",
            "رابط",
            "مجانا",
            "قناة",
            "جديد",
            "الان",
            "اصدقاء",
            "تعال",
            "مرحبا",
        ],
        Lang::Tr => &[
            "grup",
            "katil",
            "baglanti",
            "ucretsiz",
            "kanal",
            "yeni",
            "simdi",
            "arkadaslar",
            "gel",
            "merhaba",
        ],
        Lang::Ja => &[
            "サーバー",
            "参加",
            "リンク",
            "無料",
            "新しい",
            "今",
            "友達",
            "ゲーム",
            "こんにちは",
            "募集",
        ],
        Lang::In => &[
            "grup", "gabung", "tautan", "gratis", "saluran", "baru", "sekarang", "teman", "ayo",
            "halo",
        ],
        Lang::Hi => &[
            "समूह",
            "जुड़ें",
            "लिंक",
            "मुफ्त",
            "चैनल",
            "नया",
            "अभी",
            "दोस्त",
            "आओ",
            "नमस्ते",
        ],
        Lang::Fr => &[
            "groupe",
            "rejoindre",
            "lien",
            "gratuit",
            "canal",
            "nouveau",
            "maintenant",
            "amis",
            "viens",
            "salut",
        ],
        Lang::De => &[
            "gruppe",
            "beitreten",
            "link",
            "kostenlos",
            "kanal",
            "neu",
            "jetzt",
            "freunde",
            "komm",
            "hallo",
        ],
        Lang::Ru => &[
            "группа",
            "вступай",
            "ссылка",
            "бесплатно",
            "канал",
            "новый",
            "сейчас",
            "друзья",
            "заходи",
            "привет",
        ],
        Lang::Th => &[
            "กลุ่ม",
            "เข้าร่วม",
            "ลิงก์",
            "ฟรี",
            "ช่อง",
            "ใหม่",
            "ตอนนี้",
            "เพื่อน",
            "มา",
            "สวัสดี",
        ],
        Lang::Ko => &[
            "그룹",
            "참여",
            "링크",
            "무료",
            "채널",
            "새로운",
            "지금",
            "친구",
            "와",
            "안녕",
        ],
        _ => &[
            "link", "join", "new", "now", "chat", "hello", "free", "group", "come", "friends",
        ],
    }
}

/// The global token vocabulary: every topic term, filler word, and lexicon
/// word gets a stable `u16` id. Tweets carry token ids; the analysis crate
/// maps them back to strings for topic labeling.
#[derive(Debug, Clone)]
pub struct Vocabulary {
    words: Vec<String>,
    index: HashMap<String, u16>,
}

impl Vocabulary {
    /// Build the full vocabulary (deterministic order).
    pub fn build() -> Vocabulary {
        let mut v = Vocabulary {
            words: Vec::new(),
            index: HashMap::new(),
        };
        for kind in PlatformKind::ALL {
            for topic in topics_for(kind) {
                for term in topic.terms {
                    v.intern(term);
                }
            }
            for lang in chatlens_twitter::Lang::ALL {
                for topic in topics_for_lang(kind, lang).unwrap_or_default() {
                    for term in topic.terms {
                        v.intern(term);
                    }
                }
            }
        }
        for w in FILLER {
            v.intern(w);
        }
        for lang in chatlens_twitter::Lang::ALL {
            for w in lexicon_for(lang) {
                v.intern(w);
            }
        }
        v
    }

    fn intern(&mut self, word: &str) -> u16 {
        if let Some(&id) = self.index.get(word) {
            return id;
        }
        let id = u16::try_from(self.words.len()).expect("vocabulary fits in u16");
        self.words.push(word.to_string());
        self.index.insert(word.to_string(), id);
        id
    }

    /// Token id of `word`, if in the vocabulary.
    pub fn id(&self, word: &str) -> Option<u16> {
        self.index.get(word).copied()
    }

    /// Word behind a token id.
    pub fn word(&self, id: u16) -> &str {
        &self.words[usize::from(id)]
    }

    /// Vocabulary size.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the vocabulary is empty (never after `build`).
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// All words in id order.
    pub fn words(&self) -> impl Iterator<Item = &str> {
        self.words.iter().map(String::as_str)
    }
}

/// Samples tweet token vectors for a given topic: a geometric-ish rank
/// distribution over the topic's terms mixed with uniform filler.
#[derive(Debug, Clone)]
pub struct TopicSampler {
    term_ids: Vec<u16>,
    term_dist: Categorical,
    filler_ids: Vec<u16>,
    /// Probability each emitted token is a topic term (vs filler).
    pub p_topic_token: f64,
}

impl TopicSampler {
    /// Build a sampler for `topic` against `vocab`.
    pub fn new(topic: &Topic, vocab: &Vocabulary) -> TopicSampler {
        let term_ids: Vec<u16> = topic
            .terms
            .iter()
            .map(|t| vocab.id(t).expect("topic term interned"))
            .collect();
        // Rank-weighted: first terms are the most probable, matching how
        // LDA's top-terms lists are ordered.
        let weights: Vec<f64> = (0..term_ids.len())
            .map(|r| 1.0 / (1.0 + r as f64).powf(0.7))
            .collect();
        let filler_ids: Vec<u16> = FILLER
            .iter()
            .map(|w| vocab.id(w).expect("filler interned"))
            .collect();
        TopicSampler {
            term_ids,
            term_dist: Categorical::new(&weights),
            filler_ids,
            p_topic_token: 0.7,
        }
    }

    /// Sample a tweet's token vector (8–16 tokens).
    pub fn sample_tokens(&self, rng: &mut Rng) -> Vec<u16> {
        let len = rng.range(8, 16) as usize;
        (0..len)
            .map(|_| {
                if rng.chance(self.p_topic_token) {
                    self.term_ids[self.term_dist.sample(rng)]
                } else {
                    self.filler_ids[rng.index(self.filler_ids.len())]
                }
            })
            .collect()
    }
}

/// Sample non-English tweet tokens from a language lexicon.
pub fn sample_lexicon_tokens(
    lang: chatlens_twitter::Lang,
    vocab: &Vocabulary,
    rng: &mut Rng,
) -> Vec<u16> {
    let lex = lexicon_for(lang);
    let len = rng.range(6, 12) as usize;
    (0..len)
        .map(|_| {
            let w = lex[rng.index(lex.len())];
            vocab.id(w).expect("lexicon word interned")
        })
        .collect()
}

/// A per-platform categorical over its topics, weighted by Table 3's
/// tweet shares.
pub fn topic_categorical(kind: PlatformKind) -> Categorical {
    let weights: Vec<f64> = topics_for(kind).iter().map(|t| t.weight).collect();
    Categorical::new(&weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chatlens_twitter::Lang;

    #[test]
    fn ten_topics_per_platform_with_table3_weights() {
        for kind in PlatformKind::ALL {
            let topics = topics_for(kind);
            assert_eq!(topics.len(), 10, "{kind}");
            let total: f64 = topics.iter().map(|t| t.weight).sum();
            assert!((99.0..=101.0).contains(&total), "{kind} weights {total}");
            for t in &topics {
                assert_eq!(t.terms.len(), 10, "{kind}/{}", t.label);
            }
        }
    }

    #[test]
    fn table3_signature_terms_present() {
        let wa = whatsapp_topics();
        assert!(wa.iter().any(|t| t.terms.contains(&"forex")));
        assert!(wa.iter().any(|t| t.terms.contains(&"whatsapp")));
        let tg = telegram_topics();
        assert!(tg.iter().any(|t| t.terms.contains(&"airdrop")));
        assert!(tg.iter().any(|t| t.terms.contains(&"telegram")));
        let dc = discord_topics();
        assert!(dc.iter().any(|t| t.terms.contains(&"hentai")));
        assert!(dc.iter().any(|t| t.terms.contains(&"discord")));
    }

    #[test]
    fn vocabulary_roundtrip() {
        let v = Vocabulary::build();
        assert!(v.len() > 200, "vocab size {}", v.len());
        assert!(!v.is_empty());
        for (i, w) in v.words().enumerate() {
            assert_eq!(v.id(w), Some(i as u16), "word {w}");
        }
        assert_eq!(v.id("no-such-word"), None);
        assert_eq!(v.word(v.id("bitcoin").unwrap()), "bitcoin");
    }

    #[test]
    fn vocabulary_build_is_deterministic() {
        let a = Vocabulary::build();
        let b = Vocabulary::build();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.words().zip(b.words()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn topic_sampler_emits_topic_terms() {
        let v = Vocabulary::build();
        let topics = whatsapp_topics();
        let sampler = TopicSampler::new(&topics[0], &v); // Forex training
        let mut rng = Rng::new(1);
        let mut forex_seen = 0;
        for _ in 0..200 {
            let toks = sampler.sample_tokens(&mut rng);
            assert!((8..=16).contains(&toks.len()));
            if toks.iter().any(|&t| v.word(t) == "forex") {
                forex_seen += 1;
            }
        }
        assert!(forex_seen > 50, "forex appeared in {forex_seen}/200 tweets");
    }

    #[test]
    fn first_terms_more_frequent_than_last() {
        let v = Vocabulary::build();
        let topics = discord_topics();
        let sampler = TopicSampler::new(&topics[9], &v); // Hentai
        let mut rng = Rng::new(2);
        let (mut first, mut last) = (0u32, 0u32);
        for _ in 0..2000 {
            for &t in &sampler.sample_tokens(&mut rng) {
                if v.word(t) == "join" {
                    first += 1;
                }
                if v.word(t) == "official" {
                    last += 1;
                }
            }
        }
        assert!(first > last, "rank weighting broken: {first} vs {last}");
    }

    #[test]
    fn lexicon_sampling_all_langs() {
        let v = Vocabulary::build();
        let mut rng = Rng::new(3);
        for lang in Lang::ALL {
            let toks = sample_lexicon_tokens(lang, &v, &mut rng);
            assert!((6..=12).contains(&toks.len()), "{lang}");
        }
    }

    #[test]
    fn topic_categorical_prefers_heavy_topics() {
        // Discord topic 3 ("Advertising Discord groups", 33%) must dominate.
        let cat = topic_categorical(PlatformKind::Discord);
        let mut rng = Rng::new(4);
        let mut counts = [0u32; 10];
        for _ in 0..20_000 {
            counts[cat.sample(&mut rng)] += 1;
        }
        let max_idx = (0..10).max_by_key(|&i| counts[i]).unwrap();
        assert_eq!(max_idx, 3);
        let share = f64::from(counts[3]) / 20_000.0;
        assert!((share - 0.33).abs() < 0.02, "share {share}");
    }
}
