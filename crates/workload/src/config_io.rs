//! Scenario-config serialization: a compact, dependency-free JSON
//! serializer driven by the configs' `serde::Serialize` derives.
//!
//! The offline crate set includes `serde` but no format crate, so the
//! writer lives here. It covers the subset of the serde data model the
//! scenario types use (structs, arrays, tuples, primitives, strings, and
//! maps — checkpoint summaries carry a counters map) and rejects anything
//! else loudly — this is a config exporter, not a general JSON library.
//! Output is deterministic (field order = declaration order; map order =
//! the source `BTreeMap`'s key order), so exported scenarios diff cleanly.

use serde::ser::{self, Serialize};
use std::fmt;

/// Serialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError(String);

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json serialize: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

impl ser::Error for JsonError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        JsonError(msg.to_string())
    }
}

/// Serialize any `Serialize` value to a JSON string.
pub fn to_json<T: Serialize>(value: &T) -> Result<String, JsonError> {
    let mut out = String::new();
    value.serialize(Json { out: &mut out })?;
    Ok(out)
}

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Json<'a> {
    out: &'a mut String,
}

/// Sequence/struct body writer: tracks whether a comma is due.
struct Body<'a> {
    out: &'a mut String,
    first: bool,
    close: char,
}

impl Body<'_> {
    fn comma(&mut self) {
        if self.first {
            self.first = false;
        } else {
            self.out.push(',');
        }
    }
}

macro_rules! forward_int {
    ($($name:ident: $ty:ty),*) => {
        $(fn $name(self, v: $ty) -> Result<(), JsonError> {
            self.out.push_str(&v.to_string());
            Ok(())
        })*
    };
}

impl<'a> ser::Serializer for Json<'a> {
    type Ok = ();
    type Error = JsonError;
    type SerializeSeq = Body<'a>;
    type SerializeTuple = Body<'a>;
    type SerializeTupleStruct = Body<'a>;
    type SerializeTupleVariant = ser::Impossible<(), JsonError>;
    type SerializeMap = MapBody<'a>;
    type SerializeStruct = Body<'a>;
    type SerializeStructVariant = ser::Impossible<(), JsonError>;

    forward_int!(
        serialize_i8: i8, serialize_i16: i16, serialize_i32: i32, serialize_i64: i64,
        serialize_u8: u8, serialize_u16: u16, serialize_u32: u32, serialize_u64: u64
    );

    fn serialize_bool(self, v: bool) -> Result<(), JsonError> {
        self.out.push_str(if v { "true" } else { "false" });
        Ok(())
    }

    fn serialize_f32(self, v: f32) -> Result<(), JsonError> {
        self.serialize_f64(f64::from(v))
    }

    fn serialize_f64(self, v: f64) -> Result<(), JsonError> {
        if !v.is_finite() {
            return Err(JsonError(format!("non-finite float {v}")));
        }
        self.out.push_str(&format!("{v}"));
        Ok(())
    }

    fn serialize_char(self, v: char) -> Result<(), JsonError> {
        push_json_string(self.out, &v.to_string());
        Ok(())
    }

    fn serialize_str(self, v: &str) -> Result<(), JsonError> {
        push_json_string(self.out, v);
        Ok(())
    }

    fn serialize_bytes(self, _v: &[u8]) -> Result<(), JsonError> {
        Err(JsonError("bytes unsupported".into()))
    }

    fn serialize_none(self) -> Result<(), JsonError> {
        self.out.push_str("null");
        Ok(())
    }

    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<(), JsonError> {
        value.serialize(self)
    }

    fn serialize_unit(self) -> Result<(), JsonError> {
        self.out.push_str("null");
        Ok(())
    }

    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), JsonError> {
        self.serialize_unit()
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _idx: u32,
        variant: &'static str,
    ) -> Result<(), JsonError> {
        push_json_string(self.out, variant);
        Ok(())
    }

    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), JsonError> {
        value.serialize(self)
    }

    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        _idx: u32,
        _variant: &'static str,
        _value: &T,
    ) -> Result<(), JsonError> {
        Err(JsonError("newtype variants unsupported".into()))
    }

    fn serialize_seq(self, _len: Option<usize>) -> Result<Body<'a>, JsonError> {
        self.out.push('[');
        Ok(Body {
            out: self.out,
            first: true,
            close: ']',
        })
    }

    fn serialize_tuple(self, len: usize) -> Result<Body<'a>, JsonError> {
        self.serialize_seq(Some(len))
    }

    fn serialize_tuple_struct(
        self,
        _name: &'static str,
        len: usize,
    ) -> Result<Body<'a>, JsonError> {
        self.serialize_seq(Some(len))
    }

    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        _idx: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeTupleVariant, JsonError> {
        Err(JsonError("tuple variants unsupported".into()))
    }

    fn serialize_map(self, _len: Option<usize>) -> Result<Self::SerializeMap, JsonError> {
        self.out.push('{');
        Ok(MapBody {
            out: self.out,
            first: true,
        })
    }

    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<Body<'a>, JsonError> {
        self.out.push('{');
        Ok(Body {
            out: self.out,
            first: true,
            close: '}',
        })
    }

    fn serialize_struct_variant(
        self,
        _name: &'static str,
        _idx: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeStructVariant, JsonError> {
        Err(JsonError("struct variants unsupported".into()))
    }
}

/// Map body writer. Keys are rendered to a scratch buffer first so
/// non-string keys (integers, say) can be quoted — JSON object keys must
/// be strings.
struct MapBody<'a> {
    out: &'a mut String,
    first: bool,
}

impl ser::SerializeMap for MapBody<'_> {
    type Ok = ();
    type Error = JsonError;

    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), JsonError> {
        if self.first {
            self.first = false;
        } else {
            self.out.push(',');
        }
        let mut scratch = String::new();
        key.serialize(Json { out: &mut scratch })?;
        if scratch.starts_with('"') {
            self.out.push_str(&scratch);
        } else {
            push_json_string(self.out, &scratch);
        }
        self.out.push(':');
        Ok(())
    }

    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), JsonError> {
        value.serialize(Json { out: self.out })
    }

    fn end(self) -> Result<(), JsonError> {
        self.out.push('}');
        Ok(())
    }
}

impl ser::SerializeSeq for Body<'_> {
    type Ok = ();
    type Error = JsonError;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), JsonError> {
        self.comma();
        value.serialize(Json { out: self.out })
    }

    fn end(self) -> Result<(), JsonError> {
        self.out.push(self.close);
        Ok(())
    }
}

impl ser::SerializeTuple for Body<'_> {
    type Ok = ();
    type Error = JsonError;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), JsonError> {
        ser::SerializeSeq::serialize_element(self, value)
    }

    fn end(self) -> Result<(), JsonError> {
        ser::SerializeSeq::end(self)
    }
}

impl ser::SerializeTupleStruct for Body<'_> {
    type Ok = ();
    type Error = JsonError;

    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), JsonError> {
        ser::SerializeSeq::serialize_element(self, value)
    }

    fn end(self) -> Result<(), JsonError> {
        ser::SerializeSeq::end(self)
    }
}

impl ser::SerializeStruct for Body<'_> {
    type Ok = ();
    type Error = JsonError;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), JsonError> {
        self.comma();
        push_json_string(self.out, key);
        self.out.push(':');
        value.serialize(Json { out: self.out })
    }

    fn end(self) -> Result<(), JsonError> {
        self.out.push(self.close);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScenarioConfig;
    use serde::Serialize;

    #[test]
    fn scenario_config_serializes() {
        let json = to_json(&ScenarioConfig::paper()).unwrap();
        assert!(json.starts_with('{'));
        assert!(json.ends_with('}'));
        assert!(json.contains("\"seed\":20200408"));
        assert!(json.contains("\"n_group_urls\":45718"));
        assert!(json.contains("\"kind_weights\":[78,6,3,2,10,0.5,0.25,0.25,0]"));
        // Balanced braces/brackets (cheap structural check).
        let opens = json.matches('{').count() + json.matches('[').count();
        let closes = json.matches('}').count() + json.matches(']').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn serialization_is_deterministic() {
        let a = to_json(&ScenarioConfig::default()).unwrap();
        let b = to_json(&ScenarioConfig::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn strings_are_escaped() {
        #[derive(Serialize)]
        struct S {
            title: String,
        }
        let json = to_json(&S {
            title: "a\"b\\c\nd\u{1}".into(),
        })
        .unwrap();
        assert_eq!(json, "{\"title\":\"a\\\"b\\\\c\\nd\\u0001\"}");
    }

    #[test]
    fn options_and_unit() {
        #[derive(Serialize)]
        struct S {
            a: Option<u32>,
            b: Option<u32>,
        }
        let json = to_json(&S {
            a: Some(5),
            b: None,
        })
        .unwrap();
        assert_eq!(json, r#"{"a":5,"b":null}"#);
    }

    #[test]
    fn non_finite_floats_rejected() {
        #[derive(Serialize)]
        struct S {
            x: f64,
        }
        assert!(to_json(&S { x: f64::NAN }).is_err());
        assert!(to_json(&S { x: f64::INFINITY }).is_err());
    }

    #[test]
    fn maps_serialize_with_string_keys() {
        use std::collections::BTreeMap;
        #[derive(Serialize)]
        struct S {
            by_name: BTreeMap<String, u64>,
            by_id: BTreeMap<u32, bool>,
        }
        let json = to_json(&S {
            by_name: BTreeMap::from([("b".to_string(), 2), ("a".to_string(), 1)]),
            by_id: BTreeMap::from([(7, true)]),
        })
        .unwrap();
        // BTreeMap order, integer keys quoted.
        assert_eq!(json, r#"{"by_name":{"a":1,"b":2},"by_id":{"7":true}}"#);
    }

    #[test]
    fn empty_map_serializes() {
        let json = to_json(&std::collections::BTreeMap::<String, u8>::new()).unwrap();
        assert_eq!(json, "{}");
    }

    #[test]
    fn nested_arrays_and_bools() {
        #[derive(Serialize)]
        struct S {
            flags: [bool; 2],
            rows: Vec<Vec<u8>>,
        }
        let json = to_json(&S {
            flags: [true, false],
            rows: vec![vec![1, 2], vec![]],
        })
        .unwrap();
        assert_eq!(json, r#"{"flags":[true,false],"rows":[[1,2],[]]}"#);
    }
}
