//! # chatlens-workload — generative models calibrated to the paper
//!
//! Everything the paper *measured* about user behaviour is a distribution:
//! how many groups exist per platform, how often their URLs are shared on
//! Twitter (Fig 1–2), in which languages (Fig 4) and about which topics
//! (Table 3), how old groups are when shared (Fig 5), when invites die
//! (Fig 6), how memberships evolve (Fig 7), and how much gets posted inside
//! (Fig 8–9). This crate holds the generative models for all of it,
//! parameterised by [`config::ScenarioConfig`] whose defaults are
//! calibrated so the collection + analysis pipeline reproduces the paper's
//! published shapes.
//!
//! The split of responsibilities: `chatlens-platforms` is *mechanism*
//! (groups, invites, APIs), this crate is *policy* (how many, how big, how
//! fast), and `chatlens-core` is the *measurement instrument* pointed at
//! the result.
//!
//! [`ecosystem::Ecosystem::build`] assembles the full world: three
//! populated platforms and a tweet store, ready to be mounted on the
//! simulated transport.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod activity;
pub mod config;
pub mod config_io;
pub mod ecosystem;
pub mod groups;
pub mod lang;
pub mod population;
pub mod sharing;
pub mod topics;

pub use config::ScenarioConfig;
pub use ecosystem::Ecosystem;
pub use topics::Vocabulary;
