//! Scenario configuration.
//!
//! [`ScenarioConfig::paper`] encodes the calibration targets taken from the
//! paper's published numbers; [`ScenarioConfig::default`] is the same
//! scenario at 1/10 linear scale so the full campaign runs in seconds.
//! Every knob is plain data (serde-derived), so alternative scenarios are
//! easy to construct in benches and tests.

use serde::{Deserialize, Serialize};

/// Tweet-feature probabilities for one tweet population (Fig 3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TweetFeatureParams {
    /// P(tweet contains >= 1 hashtag).
    pub p_hashtag: f64,
    /// P(tweet contains >= 2 hashtags).
    pub p_hashtag2: f64,
    /// P(tweet contains >= 1 mention).
    pub p_mention: f64,
    /// P(tweet contains >= 2 mentions).
    pub p_mention2: f64,
    /// P(tweet is a retweet).
    pub p_retweet: f64,
}

/// Heavy-tailed "how many tweets share this URL" model (Fig 2): with
/// probability `p_once` exactly one tweet; otherwise `1 + floor(Pareto)`
/// capped at `cap`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShareCountParams {
    /// Fraction of URLs shared exactly once.
    pub p_once: f64,
    /// Pareto tail exponent for the rest (smaller = heavier).
    pub alpha: f64,
    /// Pareto scale (minimum extra shares).
    pub x_min: f64,
    /// Hard cap on shares per URL.
    pub cap: u32,
}

/// Group-age ("staleness", Fig 5) model: a same-day spike plus a log-normal
/// tail, capped by the platform's own age.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StalenessParams {
    /// Fraction of groups created the same day they are first shared.
    pub p_same_day: f64,
    /// Median age in days of the non-same-day groups.
    pub tail_median_days: f64,
    /// Log-normal sigma of the tail.
    pub tail_sigma: f64,
}

/// Invite-death model (Fig 6): an optional default TTL (Discord), an
/// "instant" component for URLs that die right after being shared, and a
/// slow manual-revocation hazard.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RevocationParams {
    /// Probability the invite carries the platform's default TTL.
    pub p_ttl: f64,
    /// The TTL in days (only meaningful when `p_ttl > 0`).
    pub ttl_days: f64,
    /// Probability the URL dies almost immediately after first being
    /// shared (stale links, instantly-regretted shares).
    pub p_instant: f64,
    /// Mean (exponential) of the instant component, days.
    pub instant_mean_days: f64,
    /// Probability the URL is eventually revoked manually.
    pub p_slow: f64,
    /// Mean (exponential) of the manual component, days.
    pub slow_mean_days: f64,
}

/// Initial-size and growth model (Fig 7).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SizeParams {
    /// Median initial member count (log-normal).
    pub median: f64,
    /// Log-normal sigma of the initial size.
    pub sigma: f64,
    /// Hard platform cap on members.
    pub cap: u32,
    /// Fraction of groups with positive net drift.
    pub p_grow: f64,
    /// Fraction with negative net drift (the rest are flat).
    pub p_shrink: f64,
    /// Scale of the daily relative drift (|delta| per day as a fraction of
    /// current size, log-normal median).
    pub drift_median: f64,
    /// Log-normal sigma of the daily relative drift.
    pub drift_sigma: f64,
    /// Mean online fraction (Fig 7b); 0 for platforms that don't report it.
    pub online_mean: f64,
    /// Std-dev of the online fraction across groups.
    pub online_sd: f64,
}

/// In-group activity model (Fig 8–9).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActivityParams {
    /// Median messages/day per group (log-normal).
    pub msgs_per_day_median: f64,
    /// Log-normal sigma of messages/day.
    pub msgs_per_day_sigma: f64,
    /// Hard cap on materialized messages per group (memory guard; the cap
    /// is far above anything the paper reports per group).
    pub max_messages_per_group: u64,
    /// Zipf exponent of the per-member posting distribution (higher =
    /// more concentrated; drives the top-1% shares of Fig 9b).
    pub sender_zipf: f64,
    /// Fraction of members who ever post (the rest are lurkers) — drives
    /// §5's active-member shares (59.4% WhatsApp, 14.6% Telegram, 65.8%
    /// Discord; Telegram's channels push its share down further).
    pub poster_fraction: f64,
    /// Exponent coupling a group's message rate to its size:
    /// `rate *= (size / size_median)^exp`. Bigger rooms talk more, which
    /// is what lets the long tail of senders in large groups dominate
    /// Fig 9b the way it does in the paper.
    pub msgs_size_exponent: f64,
    /// Member churn per year of group age: the poster pool includes past
    /// members, `pool = poster_fraction * members * (1 + churn * years)`
    /// (capped at 4x the current membership). Platforms whose full history
    /// is collectable (Telegram/Discord) accumulate one-time posters this
    /// way, which is what keeps most senders under 10 messages (Fig 9b).
    pub poster_churn_per_year: f64,
    /// Message-type weights in [`MessageKind::ALL`] order (Fig 8).
    ///
    /// [`MessageKind::ALL`]: chatlens_platforms::MessageKind::ALL
    pub kind_weights: [f64; 9],
}

/// Everything that varies per messaging platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformParams {
    /// Number of distinct group URLs discovered over the window, at scale
    /// 1.0 (Table 2).
    pub n_group_urls: u64,
    /// Number of tweets sharing them, at scale 1.0 (Table 2) — implied by
    /// `n_group_urls` and `shares`, retained as the calibration target.
    pub n_tweets_target: u64,
    /// Size of the tweeting-author pool, at scale 1.0 (Table 2 #Users).
    pub n_tweet_authors: u64,
    /// Number of groups the collector joins, at scale 1.0 (§3.3).
    pub join_budget: u64,
    /// Mean group-creators per group (1/mean groups-per-creator); the
    /// multi-creator tail is modelled in `population`.
    pub creators_per_group: f64,
    /// Fraction of Telegram chats that are broadcast channels (0 on other
    /// platforms).
    pub p_channel: f64,
    /// Fraction of ordinary Telegram *groups* whose admins hide the member
    /// list. Channels are always hidden, so the overall hidden share is
    /// `p_channel + (1 - p_channel) * p_member_list_hidden` — calibrated to
    /// §3.3's 76 of 100.
    pub p_member_list_hidden: f64,
    /// Telegram phone-number opt-in rate (§6: 0.68%).
    pub p_phone_visible: f64,
    /// Discord: fraction of users with >= 1 connected account (§6: 30%).
    pub p_linked_any: f64,
    /// Tweet features for this platform's sharing tweets.
    pub features: TweetFeatureParams,
    /// Share-count model.
    pub shares: ShareCountParams,
    /// Staleness model.
    pub staleness: StalenessParams,
    /// Revocation model.
    pub revocation: RevocationParams,
    /// Size/growth model.
    pub size: SizeParams,
    /// Activity model.
    pub activity: ActivityParams,
}

/// The control (1% sample) tweet population.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ControlParams {
    /// Number of control tweets at scale 1.0 (§3.1: 1,797,914).
    pub n_tweets: u64,
    /// Author-pool size at scale 1.0.
    pub n_authors: u64,
    /// Tweet features of the control population.
    pub features: TweetFeatureParams,
}

/// The top-level scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Root seed; every random decision in the scenario derives from it.
    pub seed: u64,
    /// Linear scale factor applied to population counts (1.0 = the paper's
    /// dataset sizes; the default scenario uses 0.1). Distribution *shapes*
    /// — sizes, rates, percentages — never scale.
    pub scale: f64,
    /// Per-platform parameters, indexed by
    /// [`PlatformKind::index`](chatlens_platforms::PlatformKind::index).
    pub platforms: [PlatformParams; 3],
    /// Control-sample parameters.
    pub control: ControlParams,
    /// Search API miss probability (per tweet, deterministic).
    pub search_miss: f64,
    /// Streaming API miss probability (per tweet, deterministic).
    pub stream_miss: f64,
    /// Probability a sharing tweet also carries an unrelated non-invite
    /// URL the extractor must ignore.
    pub p_noise_url: f64,
    /// Probability a sharing tweet also carries an invite to a group on a
    /// *different* platform ("join my Discord and my Telegram!"). These
    /// tweets are why Table 2's per-platform rows sum to more than its
    /// printed total.
    pub p_cross_platform: f64,
}

impl ScenarioConfig {
    /// The paper-calibrated scenario at full scale.
    pub fn paper() -> ScenarioConfig {
        let whatsapp = PlatformParams {
            n_group_urls: 45_718,
            n_tweets_target: 239_807,
            n_tweet_authors: 88_119,
            join_budget: 416,
            creators_per_group: 34_078.0 / 45_718.0,
            p_channel: 0.0,
            p_member_list_hidden: 0.0,
            p_phone_visible: 1.0, // WhatsApp always exposes phones
            p_linked_any: 0.0,
            features: TweetFeatureParams {
                p_hashtag: 0.13,
                p_hashtag2: 0.04,
                p_mention: 0.73,
                p_mention2: 0.20,
                p_retweet: 0.33,
            },
            shares: ShareCountParams {
                p_once: 0.50,
                alpha: 0.95,
                x_min: 1.0,
                cap: 500,
            },
            staleness: StalenessParams {
                p_same_day: 0.76,
                tail_median_days: 200.0,
                tail_sigma: 2.4,
            },
            revocation: RevocationParams {
                p_ttl: 0.0,
                ttl_days: 0.0,
                p_instant: 0.065,
                instant_mean_days: 0.2,
                p_slow: 0.30,
                slow_mean_days: 15.0,
            },
            size: SizeParams {
                median: 60.0,
                sigma: 1.0,
                cap: 257,
                // Direction probabilities run above Fig 7c's observed
                // shares because short observation spans and low-drift
                // groups read as "flat" through the daily monitor.
                p_grow: 0.58,
                p_shrink: 0.40,
                drift_median: 0.02,
                drift_sigma: 1.0,
                online_mean: 0.0,
                online_sd: 0.0,
            },
            activity: ActivityParams {
                msgs_per_day_median: 16.0,
                msgs_per_day_sigma: 1.2,
                max_messages_per_group: 500_000,
                sender_zipf: 0.7,
                poster_fraction: 0.72,
                msgs_size_exponent: 0.3,
                poster_churn_per_year: 0.0, // history starts at the join date

                // text, image, video, audio, sticker, document, contact,
                // location, service — Fig 8: WhatsApp is the multimedia-
                // heavy platform, stickers alone are 10%.
                kind_weights: [78.0, 6.0, 3.0, 2.0, 10.0, 0.5, 0.25, 0.25, 0.0],
            },
        };
        let telegram = PlatformParams {
            n_group_urls: 78_105,
            n_tweets_target: 1_224_540,
            n_tweet_authors: 398_816,
            join_budget: 100,
            creators_per_group: 1.0,
            p_channel: 0.35,
            p_member_list_hidden: 0.63, // overall: 0.35 + 0.65*0.63 ≈ 0.76
            p_phone_visible: 0.0068,
            p_linked_any: 0.0,
            features: TweetFeatureParams {
                p_hashtag: 0.24,
                p_hashtag2: 0.10,
                p_mention: 0.84,
                p_mention2: 0.14,
                p_retweet: 0.76,
            },
            shares: ShareCountParams {
                p_once: 0.50,
                alpha: 0.80,
                x_min: 1.0,
                cap: 15_000,
            },
            staleness: StalenessParams {
                p_same_day: 0.28,
                tail_median_days: 200.0,
                tail_sigma: 2.4,
            },
            revocation: RevocationParams {
                p_ttl: 0.0,
                ttl_days: 0.0,
                p_instant: 0.155,
                instant_mean_days: 0.2,
                p_slow: 0.15,
                slow_mean_days: 70.0,
            },
            size: SizeParams {
                median: 150.0,
                sigma: 2.0,
                cap: 200_000,
                p_grow: 0.58,
                p_shrink: 0.26,
                drift_median: 0.02,
                drift_sigma: 1.0,
                online_mean: 0.07,
                online_sd: 0.06,
            },
            activity: ActivityParams {
                msgs_per_day_median: 2.2,
                msgs_per_day_sigma: 2.0,
                max_messages_per_group: 500_000,
                sender_zipf: 1.15,
                poster_fraction: 0.30,
                msgs_size_exponent: 0.65,
                poster_churn_per_year: 1.0,
                kind_weights: [85.0, 5.0, 3.0, 1.0, 2.0, 1.0, 0.0, 0.0, 3.0],
            },
        };
        let discord = PlatformParams {
            n_group_urls: 227_712,
            n_tweets_target: 779_685,
            n_tweet_authors: 340_702,
            join_budget: 100,
            creators_per_group: 49_753.0 / 74_000.0,
            p_channel: 0.0,
            p_member_list_hidden: 0.0,
            p_phone_visible: 0.0,
            p_linked_any: 0.30,
            features: TweetFeatureParams {
                p_hashtag: 0.14,
                p_hashtag2: 0.07,
                p_mention: 0.68,
                p_mention2: 0.15,
                p_retweet: 0.50,
            },
            shares: ShareCountParams {
                p_once: 0.62,
                alpha: 1.10,
                x_min: 1.0,
                cap: 2_000,
            },
            staleness: StalenessParams {
                p_same_day: 0.27,
                tail_median_days: 170.0,
                tail_sigma: 2.4,
            },
            revocation: RevocationParams {
                p_ttl: 0.02,
                ttl_days: 1.0,
                p_instant: 0.64,
                instant_mean_days: 0.15,
                p_slow: 0.02,
                slow_mean_days: 30.0,
            },
            size: SizeParams {
                median: 60.0,
                sigma: 1.8,
                cap: 250_000,
                p_grow: 0.60,
                p_shrink: 0.21,
                drift_median: 0.02,
                drift_sigma: 1.0,
                online_mean: 0.30,
                online_sd: 0.18,
            },
            activity: ActivityParams {
                msgs_per_day_median: 17.0,
                msgs_per_day_sigma: 2.0,
                max_messages_per_group: 500_000,
                sender_zipf: 1.15,
                poster_fraction: 0.70,
                msgs_size_exponent: 0.4,
                poster_churn_per_year: 1.5,
                kind_weights: [96.0, 3.0, 0.4, 0.1, 0.3, 0.2, 0.0, 0.0, 0.0],
            },
        };
        ScenarioConfig {
            seed: 20200408,
            scale: 1.0,
            platforms: [whatsapp, telegram, discord],
            control: ControlParams {
                n_tweets: 1_797_914,
                n_authors: 1_200_000,
                features: TweetFeatureParams {
                    p_hashtag: 0.13,
                    p_hashtag2: 0.05,
                    p_mention: 0.76,
                    p_mention2: 0.12,
                    p_retweet: 0.40,
                },
            },
            search_miss: 0.12,
            stream_miss: 0.08,
            p_noise_url: 0.05,
            p_cross_platform: 0.0045,
        }
    }

    /// The paper scenario at a linear scale. Scales in `(0, 1]` shrink the
    /// paper's world; scales above 1 grow it (the `--scale 10x` preset),
    /// with join budgets clamped to the paper's absolute instrument
    /// budgets by [`join_budget_scaled`](Self::join_budget_scaled).
    pub fn at_scale(scale: f64) -> ScenarioConfig {
        assert!(
            scale > 0.0 && scale.is_finite(),
            "scale must be positive and finite"
        );
        ScenarioConfig {
            scale,
            ..ScenarioConfig::paper()
        }
    }

    /// A tiny scenario for unit/integration tests (~1% of the paper).
    pub fn tiny() -> ScenarioConfig {
        ScenarioConfig::at_scale(0.01)
    }

    /// Apply the linear scale to a full-scale count, keeping at least 1.
    pub fn scaled(&self, n: u64) -> u64 {
        (((n as f64) * self.scale).round() as u64).max(1)
    }

    /// Join budgets scale as scale^(1/4): the paper's 416/100/100 are
    /// absolute instrument budgets, and a linear scale-down would starve
    /// small scenarios of the statistical power Figs 8–9 need (joined-
    /// group metrics are dominated by a handful of very large groups).
    pub fn join_budget_scaled(&self, kind: chatlens_platforms::PlatformKind) -> u64 {
        let b = self.platform(kind).join_budget as f64;
        ((b * self.scale.powf(0.25)).round() as u64).clamp(1, self.platform(kind).join_budget)
    }

    /// Parameters of one platform.
    pub fn platform(&self, kind: chatlens_platforms::PlatformKind) -> &PlatformParams {
        &self.platforms[kind.index()]
    }
}

impl Default for ScenarioConfig {
    /// The paper scenario at 1/10 linear scale.
    fn default() -> Self {
        ScenarioConfig::at_scale(0.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chatlens_platforms::PlatformKind;

    #[test]
    fn paper_totals_match_table2() {
        let c = ScenarioConfig::paper();
        let urls: u64 = c.platforms.iter().map(|p| p.n_group_urls).sum();
        assert_eq!(urls, 351_535);
        // Table 2's per-platform tweet rows sum to 2,244,032 while its
        // printed total is 2,234,128 — tweets carrying URLs of more than
        // one platform are counted once in the paper's total. We target
        // the per-platform rows.
        let tweets: u64 = c.platforms.iter().map(|p| p.n_tweets_target).sum();
        assert_eq!(tweets, 2_244_032);
        let joined: u64 = c.platforms.iter().map(|p| p.join_budget).sum();
        assert_eq!(joined, 616);
    }

    #[test]
    fn default_is_tenth_scale() {
        let c = ScenarioConfig::default();
        assert!((c.scale - 0.1).abs() < 1e-12);
        assert_eq!(c.scaled(45_718), 4_572);
        assert_eq!(c.scaled(3), 1, "scaled counts never hit zero");
    }

    #[test]
    fn platform_lookup_by_kind() {
        let c = ScenarioConfig::paper();
        assert_eq!(c.platform(PlatformKind::WhatsApp).n_group_urls, 45_718);
        assert_eq!(c.platform(PlatformKind::Telegram).p_phone_visible, 0.0068);
        assert_eq!(c.platform(PlatformKind::Discord).p_linked_any, 0.30);
    }

    #[test]
    fn kind_weights_are_plausible_distributions() {
        for p in ScenarioConfig::paper().platforms {
            let total: f64 = p.activity.kind_weights.iter().sum();
            assert!((90.0..=110.0).contains(&total), "weights sum {total}");
            assert!(p.activity.kind_weights[0] >= 75.0, "text dominates");
        }
    }

    #[test]
    #[should_panic(expected = "scale must be")]
    fn rejects_zero_scale() {
        let _ = ScenarioConfig::at_scale(0.0);
    }

    #[test]
    fn discord_dies_young_others_dont() {
        let c = ScenarioConfig::paper();
        let dc = &c.platform(PlatformKind::Discord).revocation;
        // Nearly all Discord revocations land before the first daily
        // observation (67.4 of 68.4% in the paper): expired-on-arrival
        // invites dominate, plus a sliver of exact 1-day TTLs.
        assert!(dc.p_instant > 0.5);
        assert!(dc.p_ttl > 0.0);
        assert_eq!(c.platform(PlatformKind::WhatsApp).revocation.p_ttl, 0.0);
        assert_eq!(c.platform(PlatformKind::Telegram).revocation.p_ttl, 0.0);
    }
}
