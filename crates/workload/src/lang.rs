//! Language profiles (Fig 4).
//!
//! The paper reports the language mix of the tweets sharing each platform's
//! groups: English leads everywhere (26% WhatsApp, 35% Telegram, 47%
//! Discord), WhatsApp skews Spanish/Portuguese, Telegram Arabic/Turkish,
//! and Discord has a striking 27% Japanese share. These profiles drive the
//! per-group language assignment; a group's sharing tweets inherit its
//! language, so per-platform tweet-language marginals match the figure.

use chatlens_platforms::PlatformKind;
use chatlens_simnet::dist::Categorical;
use chatlens_simnet::rng::Rng;
use chatlens_twitter::Lang;

/// A language profile: weights over [`Lang::ALL`].
#[derive(Debug, Clone)]
pub struct LangProfile {
    dist: Categorical,
}

impl LangProfile {
    /// Build from `(lang, weight)` pairs; unlisted languages get weight 0.
    pub fn new(pairs: &[(Lang, f64)]) -> LangProfile {
        let mut weights = vec![0.0f64; Lang::ALL.len()];
        for &(lang, w) in pairs {
            weights[lang.index()] = w;
        }
        LangProfile {
            dist: Categorical::new(&weights),
        }
    }

    /// The tweet-language profile for `kind` (Fig 4).
    pub fn for_platform(kind: PlatformKind) -> LangProfile {
        match kind {
            // Fig 4: en 26, es 16, pt 14; the remainder spread over the
            // WhatsApp world's other big markets.
            PlatformKind::WhatsApp => LangProfile::new(&[
                (Lang::En, 26.0),
                (Lang::Es, 16.0),
                (Lang::Pt, 14.0),
                (Lang::In, 9.0),
                (Lang::Hi, 8.0),
                (Lang::Ar, 7.0),
                (Lang::Tr, 4.0),
                (Lang::Fr, 3.0),
                (Lang::De, 1.5),
                (Lang::Ru, 1.5),
                (Lang::Und, 4.0),
                (Lang::Other, 6.0),
            ]),
            // Fig 4: en 35, ar 15, tr 8.
            PlatformKind::Telegram => LangProfile::new(&[
                (Lang::En, 35.0),
                (Lang::Ar, 15.0),
                (Lang::Tr, 8.0),
                (Lang::Ru, 7.0),
                (Lang::Es, 6.0),
                (Lang::Pt, 4.0),
                (Lang::Hi, 4.0),
                (Lang::In, 4.0),
                (Lang::Fr, 2.0),
                (Lang::De, 2.0),
                (Lang::Und, 5.0),
                (Lang::Other, 8.0),
            ]),
            // Fig 4: en 47, ja 27.
            PlatformKind::Discord => LangProfile::new(&[
                (Lang::En, 47.0),
                (Lang::Ja, 27.0),
                (Lang::Es, 5.0),
                (Lang::Pt, 4.0),
                (Lang::Fr, 3.0),
                (Lang::De, 3.0),
                (Lang::Ru, 2.0),
                (Lang::Tr, 1.0),
                (Lang::Ko, 2.0),
                (Lang::Th, 1.0),
                (Lang::Und, 3.0),
                (Lang::Other, 2.0),
            ]),
        }
    }

    /// A global-Twitter-ish profile for the control sample.
    pub fn control() -> LangProfile {
        LangProfile::new(&[
            (Lang::En, 31.0),
            (Lang::Ja, 15.0),
            (Lang::Es, 9.0),
            (Lang::Pt, 7.0),
            (Lang::Ar, 6.0),
            (Lang::Tr, 4.0),
            (Lang::In, 5.0),
            (Lang::Hi, 3.0),
            (Lang::Fr, 3.0),
            (Lang::De, 2.0),
            (Lang::Ru, 2.0),
            (Lang::Ko, 3.0),
            (Lang::Th, 3.0),
            (Lang::Und, 3.0),
            (Lang::Other, 4.0),
        ])
    }

    /// Draw a language.
    pub fn sample(&self, rng: &mut Rng) -> Lang {
        Lang::ALL[self.dist.sample(rng)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn measure(profile: &LangProfile, n: u32) -> Vec<f64> {
        let mut rng = Rng::new(7);
        let mut counts = vec![0u32; Lang::ALL.len()];
        for _ in 0..n {
            counts[profile.sample(&mut rng).index()] += 1;
        }
        counts
            .into_iter()
            .map(|c| f64::from(c) / f64::from(n))
            .collect()
    }

    #[test]
    fn whatsapp_matches_fig4_top3() {
        let f = measure(&LangProfile::for_platform(PlatformKind::WhatsApp), 100_000);
        assert!((f[Lang::En.index()] - 0.26).abs() < 0.01);
        assert!((f[Lang::Es.index()] - 0.16).abs() < 0.01);
        assert!((f[Lang::Pt.index()] - 0.14).abs() < 0.01);
    }

    #[test]
    fn telegram_matches_fig4_top3() {
        let f = measure(&LangProfile::for_platform(PlatformKind::Telegram), 100_000);
        assert!((f[Lang::En.index()] - 0.35).abs() < 0.01);
        assert!((f[Lang::Ar.index()] - 0.15).abs() < 0.01);
        assert!((f[Lang::Tr.index()] - 0.08).abs() < 0.01);
    }

    #[test]
    fn discord_matches_fig4_top2() {
        let f = measure(&LangProfile::for_platform(PlatformKind::Discord), 100_000);
        assert!((f[Lang::En.index()] - 0.47).abs() < 0.01);
        assert!((f[Lang::Ja.index()] - 0.27).abs() < 0.01);
    }

    #[test]
    fn control_profile_samples_everything() {
        let f = measure(&LangProfile::control(), 100_000);
        assert!(f[Lang::En.index()] > 0.25);
        assert!(f.iter().filter(|&&x| x > 0.0).count() >= 12);
    }

    #[test]
    fn unlisted_language_never_sampled() {
        let profile = LangProfile::new(&[(Lang::En, 1.0)]);
        let mut rng = Rng::new(1);
        for _ in 0..1000 {
            assert_eq!(profile.sample(&mut rng), Lang::En);
        }
    }
}
