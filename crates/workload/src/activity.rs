//! Materialization of joined-group histories (Fig 8–9, Table 2/4/5 data).
//!
//! Only the groups the collector actually joins (§3.3: 416 + 100 + 100)
//! carry member lists and message logs; everything else stays cheap
//! metadata. Materialization is **deterministic per group**: it seeds its
//! own generator from the group's `activity_seed`, so joining the same
//! group in two runs (or twice in one run) yields the identical history.

use crate::config::PlatformParams;
use crate::population::{generic_countries, sample_discord_links};
use chatlens_platforms::group::{ChatKind, GroupHistory};
use chatlens_platforms::id::{GroupId, PlatformKind, UserId};
use chatlens_platforms::message::{Message, MessageKind};
use chatlens_platforms::phone::{CountryCode, PhoneNumber};
use chatlens_platforms::platform::Platform;
use chatlens_platforms::user::User;
use chatlens_simnet::dist::{Categorical, Poisson, Zipf};
use chatlens_simnet::rng::Rng;
use chatlens_simnet::time::{SimTime, StudyWindow, SECS_PER_DAY};

/// Materialize the member list and message history of `gid`, installing it
/// into the platform. `country` anchors member phone numbers (most members
/// share the group's region). Idempotent: a second call is a no-op.
pub fn materialize(
    platform: &mut Platform,
    gid: GroupId,
    params: &PlatformParams,
    window: &StudyWindow,
    country: CountryCode,
) {
    if platform.group(gid).history.is_some() {
        return;
    }
    let kind = platform.kind;
    let (created_at, msgs_per_day, chat_kind, seed, size_now, creator) = {
        let g = platform.group(gid);
        (
            g.created_at,
            g.msgs_per_day,
            g.chat_kind,
            g.activity_seed,
            g.sizes.size_on(window.end) as usize,
            g.creator,
        )
    };
    let mut rng = Rng::new(seed);
    let (countries, country_dist) = generic_countries();

    // ---- members --------------------------------------------------------
    // The creator is always a member; the rest are fresh platform users,
    // mostly from the group's own region.
    let mut members: Vec<UserId> = Vec::with_capacity(size_now);
    members.push(creator);
    for _ in 1..size_now.max(1) {
        let c = if rng.chance(0.8) {
            country
        } else {
            countries[country_dist.sample(&mut rng)]
        };
        let user = match kind {
            PlatformKind::WhatsApp => User::whatsapp(UserId(0), PhoneNumber::allocate(c, &mut rng)),
            PlatformKind::Telegram => User::telegram(
                UserId(0),
                PhoneNumber::allocate(c, &mut rng),
                rng.chance(params.p_phone_visible),
            ),
            PlatformKind::Discord => User::discord(
                UserId(0),
                sample_discord_links(params.p_linked_any, &mut rng),
            ),
        };
        members.push(platform.push_user(user));
    }

    // ---- messages -------------------------------------------------------
    // Channels are few-to-many: only the creator and a couple of admins
    // ever post (§2, §5 — the reason Telegram's active-member share is so
    // low). Groups/servers: every member may post, Zipf-concentrated.
    let age_years = (window.end_time() - created_at).as_days() as f64 / 365.0;
    let posters: Vec<UserId> = match chat_kind {
        ChatKind::Channel => {
            let admins = 1 + rng.below(3) as usize;
            members[..admins.min(members.len())].to_vec()
        }
        _ => {
            // Only a fraction of members ever post; the rest lurk (§5's
            // active-member shares). Long-lived groups also accumulate
            // *past* members who posted and left — without them every
            // sender in an old room would carry hundreds of messages,
            // where the paper sees 66–83% of senders under 10 (Fig 9b).
            let current =
                ((members.len() as f64) * params.activity.poster_fraction).ceil() as usize;
            let current = current.clamp(1, members.len());
            let churn_factor = 1.0 + params.activity.poster_churn_per_year * age_years;
            let pool = ((current as f64) * churn_factor.min(4.0 / params.activity.poster_fraction))
                .ceil() as usize;
            let mut pool_users: Vec<UserId> = members[..current].to_vec();
            for _ in current..pool {
                // Past members: real platform users (their profiles stay
                // fetchable) who are no longer in the member list.
                let c = if rng.chance(0.8) {
                    country
                } else {
                    countries[country_dist.sample(&mut rng)]
                };
                let user = match kind {
                    PlatformKind::WhatsApp => {
                        User::whatsapp(UserId(0), PhoneNumber::allocate(c, &mut rng))
                    }
                    PlatformKind::Telegram => User::telegram(
                        UserId(0),
                        PhoneNumber::allocate(c, &mut rng),
                        rng.chance(params.p_phone_visible),
                    ),
                    PlatformKind::Discord => User::discord(
                        UserId(0),
                        sample_discord_links(params.p_linked_any, &mut rng),
                    ),
                };
                pool_users.push(platform.push_user(user));
            }
            // Interleave past and present posters across the Zipf ranks so
            // activity is not an artifact of seniority ordering.
            rng.shuffle(&mut pool_users);
            pool_users
        }
    };
    let posters: &[UserId] = &posters;
    let sender_zipf = Zipf::new(posters.len(), params.activity.sender_zipf);
    let kind_dist = Categorical::new(&params.activity.kind_weights);
    // WhatsApp history is only ever visible from the join date (§3.3), so
    // generating it before the study horizon would be dead weight; the
    // API-based platforms return everything since creation.
    let gen_start = match kind {
        PlatformKind::WhatsApp => created_at.max(
            window
                .start
                .plus_days(-crate::groups::PRE_WINDOW_DAYS)
                .midnight(),
        ),
        _ => created_at,
    };
    let gen_end = window.end_time();
    let daily = Poisson::new(msgs_per_day.max(0.0));
    let mut messages: Vec<Message> = Vec::new();
    let mut day_start = gen_start.floor_day();
    'days: while day_start < gen_end {
        let n = daily.sample(&mut rng);
        let mut offsets: Vec<u64> = (0..n).map(|_| rng.below(SECS_PER_DAY)).collect();
        offsets.sort_unstable();
        for off in offsets {
            let at = day_start + chatlens_simnet::time::SimDuration::secs(off);
            if at < gen_start || at >= gen_end {
                continue;
            }
            messages.push(Message {
                sender: posters[sender_zipf.sample(&mut rng) - 1],
                at,
                kind: MessageKind::from_index(kind_dist.sample(&mut rng)),
            });
            if messages.len() as u64 >= params.activity.max_messages_per_group {
                break 'days;
            }
        }
        day_start += chatlens_simnet::time::SimDuration::days(1);
    }
    platform.install_history(gid, GroupHistory { members, messages });
}

/// The instant a group's history generation effectively begins (useful to
/// analyses that normalise message counts per day).
pub fn history_start(kind: PlatformKind, created_at: SimTime, window: &StudyWindow) -> SimTime {
    match kind {
        PlatformKind::WhatsApp => created_at.max(
            window
                .start
                .plus_days(-crate::groups::PRE_WINDOW_DAYS)
                .midnight(),
        ),
        _ => created_at,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScenarioConfig;
    use crate::groups::generate_groups;

    fn materialized(kind: PlatformKind, seed: u64) -> (Platform, GroupId) {
        let cfg = ScenarioConfig::paper();
        let window = StudyWindow::paper();
        let mut platform = Platform::new(kind);
        let mut rng = Rng::new(seed);
        let metas = generate_groups(&mut platform, cfg.platform(kind), &window, 30, &mut rng);
        let gid = metas[0].id;
        materialize(
            &mut platform,
            gid,
            cfg.platform(kind),
            &window,
            metas[0].country,
        );
        (platform, gid)
    }

    #[test]
    fn member_count_matches_size() {
        let (p, gid) = materialized(PlatformKind::Discord, 1);
        let g = p.group(gid);
        let expect = g.sizes.size_on(StudyWindow::paper().end) as usize;
        assert_eq!(g.history.as_ref().unwrap().members.len(), expect.max(1));
    }

    #[test]
    fn creator_is_first_member() {
        let (p, gid) = materialized(PlatformKind::WhatsApp, 2);
        let g = p.group(gid);
        assert_eq!(g.history.as_ref().unwrap().members[0], g.creator);
    }

    #[test]
    fn messages_chronological_and_bounded() {
        let (p, gid) = materialized(PlatformKind::Telegram, 3);
        let g = p.group(gid);
        let h = g.history.as_ref().unwrap();
        let end = StudyWindow::paper().end_time();
        assert!(h.messages.windows(2).all(|w| w[0].at <= w[1].at));
        for m in &h.messages {
            assert!(m.at >= g.created_at);
            assert!(m.at < end);
        }
    }

    #[test]
    fn senders_are_real_users() {
        // Senders include *past* members (churn), so they need not all be
        // in the current member list — but every sender must be a real
        // platform user with a fetchable profile, and current members must
        // contribute messages too.
        let (p, gid) = materialized(PlatformKind::Discord, 4);
        let h = p.group(gid).history.as_ref().unwrap();
        let members: std::collections::HashSet<_> = h.members.iter().collect();
        assert!(h
            .messages
            .iter()
            .all(|m| (m.sender.0 as usize) < p.users.len()));
        if !h.messages.is_empty() {
            assert!(
                h.messages.iter().any(|m| members.contains(&m.sender)),
                "current members should appear among senders"
            );
        }
    }

    #[test]
    fn channel_has_few_posters() {
        // Find a Telegram channel and check its poster diversity.
        let cfg = ScenarioConfig::paper();
        let window = StudyWindow::paper();
        let mut platform = Platform::new(PlatformKind::Telegram);
        let mut rng = Rng::new(5);
        let metas = generate_groups(
            &mut platform,
            cfg.platform(PlatformKind::Telegram),
            &window,
            200,
            &mut rng,
        );
        let channel = metas
            .iter()
            .find(|m| platform.group(m.id).chat_kind == ChatKind::Channel)
            .expect("a channel among 200 chats");
        materialize(
            &mut platform,
            channel.id,
            cfg.platform(PlatformKind::Telegram),
            &window,
            channel.country,
        );
        let h = platform.group(channel.id).history.as_ref().unwrap();
        let senders: std::collections::HashSet<_> = h.messages.iter().map(|m| m.sender).collect();
        assert!(senders.len() <= 3, "channel posters: {}", senders.len());
    }

    #[test]
    fn materialization_is_deterministic_and_idempotent() {
        let (p1, gid) = materialized(PlatformKind::WhatsApp, 6);
        let (mut p2, gid2) = materialized(PlatformKind::WhatsApp, 6);
        assert_eq!(gid, gid2);
        let h1 = p1.group(gid).history.as_ref().unwrap().clone();
        // Second materialize call must be a no-op.
        let cfg = ScenarioConfig::paper();
        let c = p2.group(gid2).history.as_ref().unwrap().members.len();
        materialize(
            &mut p2,
            gid2,
            cfg.platform(PlatformKind::WhatsApp),
            &StudyWindow::paper(),
            chatlens_platforms::phone::country_by_iso("BR").unwrap(),
        );
        let h2 = p2.group(gid2).history.as_ref().unwrap();
        assert_eq!(h2.members.len(), c);
        assert_eq!(h1.messages.len(), h2.messages.len());
        assert_eq!(h1.members.len(), h2.members.len());
    }

    #[test]
    fn message_kinds_follow_weights() {
        // WhatsApp: text ~78%, stickers ~10% (Fig 8).
        let cfg = ScenarioConfig::paper();
        let window = StudyWindow::paper();
        let mut platform = Platform::new(PlatformKind::WhatsApp);
        let mut rng = Rng::new(7);
        let metas = generate_groups(
            &mut platform,
            cfg.platform(PlatformKind::WhatsApp),
            &window,
            60,
            &mut rng,
        );
        let mut text = 0u64;
        let mut sticker = 0u64;
        let mut total = 0u64;
        for m in &metas {
            materialize(
                &mut platform,
                m.id,
                cfg.platform(PlatformKind::WhatsApp),
                &window,
                m.country,
            );
            for msg in &platform.group(m.id).history.as_ref().unwrap().messages {
                total += 1;
                match msg.kind {
                    MessageKind::Text => text += 1,
                    MessageKind::Sticker => sticker += 1,
                    _ => {}
                }
            }
        }
        assert!(total > 2_000, "messages generated: {total}");
        let text_share = text as f64 / total as f64;
        let sticker_share = sticker as f64 / total as f64;
        assert!((text_share - 0.78).abs() < 0.03, "text {text_share}");
        assert!(
            (sticker_share - 0.10).abs() < 0.02,
            "sticker {sticker_share}"
        );
    }

    #[test]
    fn whatsapp_history_starts_near_window() {
        let (p, gid) = materialized(PlatformKind::WhatsApp, 8);
        let g = p.group(gid);
        let horizon = StudyWindow::paper().start.plus_days(-7).midnight();
        for m in &g.history.as_ref().unwrap().messages {
            assert!(m.at >= horizon.max(g.created_at));
        }
    }

    #[test]
    fn history_start_helper() {
        let w = StudyWindow::paper();
        let old = chatlens_simnet::time::Date::new(2015, 1, 1).midnight();
        assert_eq!(
            history_start(PlatformKind::Telegram, old, &w),
            old,
            "API platforms expose everything"
        );
        assert_eq!(
            history_start(PlatformKind::WhatsApp, old, &w),
            w.start.plus_days(-7).midnight(),
            "WhatsApp history clipped to the horizon"
        );
    }
}
