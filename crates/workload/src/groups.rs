//! Group generation: creation dates (staleness, Fig 5), invite death
//! (Fig 6), initial sizes and growth timelines (Fig 7), plus topic,
//! language and creator assignment.

use crate::config::PlatformParams;
use crate::lang::LangProfile;
use crate::population::{
    generic_countries, sample_discord_links, whatsapp_creator_countries, CreatorModel,
};
use crate::topics::{topic_categorical, topics_for};
use chatlens_platforms::group::{ChatKind, Group, SizeTimeline};
use chatlens_platforms::id::{GroupId, PlatformKind, UserId};
use chatlens_platforms::invite::InviteCode;
use chatlens_platforms::phone::{CountryCode, PhoneNumber};
use chatlens_platforms::platform::Platform;
use chatlens_platforms::user::User;
use chatlens_simnet::dist::{Exponential, LogNormal};
use chatlens_simnet::rng::Rng;
use chatlens_simnet::time::{SimDuration, SimTime, StudyWindow, SECS_PER_DAY};
use chatlens_twitter::Lang;

/// Ground-truth attributes of a generated group that live outside the
/// platform state: the Twitter-side sharing plan and content assignment.
#[derive(Debug, Clone)]
pub struct GroupMeta {
    /// The group (same index as `Platform::groups`).
    pub id: GroupId,
    /// Instant of the first tweet sharing this group's URL (may precede
    /// the study window by up to the search API's 7-day horizon).
    pub first_share: SimTime,
    /// Total number of tweets that will share the URL (Fig 2).
    pub shares: u32,
    /// Index into `topics_for(kind)` (Table 3).
    pub topic: usize,
    /// Language of the sharing tweets (Fig 4).
    pub lang: Lang,
    /// Country anchor for the group's member phone numbers.
    pub country: CountryCode,
}

/// How many days before the window tweets may exist (the Search API's
/// 7-day lookback makes day-0 discovery see them, §3.1).
pub const PRE_WINDOW_DAYS: i64 = 7;

/// Sample the number of tweets sharing one URL (Fig 2's heavy tail).
pub fn sample_share_count(params: &crate::config::ShareCountParams, rng: &mut Rng) -> u32 {
    if rng.chance(params.p_once) {
        return 1;
    }
    // 1 + floor(Pareto): at least 2 shares on this branch.
    let pareto = chatlens_simnet::dist::Pareto::new(params.x_min, params.alpha);
    let extra = pareto.sample(rng).floor() as u64;
    (1 + extra).min(u64::from(params.cap)) as u32
}

/// Sample a group's age in days at its first share (Fig 5), capped by the
/// platform's own age at that moment.
pub fn sample_staleness_days(
    params: &crate::config::StalenessParams,
    max_age_days: u64,
    rng: &mut Rng,
) -> u64 {
    if rng.chance(params.p_same_day) {
        return 0;
    }
    let ln = LogNormal::from_median(params.tail_median_days, params.tail_sigma);
    (ln.sample(rng).round() as u64).clamp(1, max_age_days.max(1))
}

/// Sample when the invite dies, relative to its first share (Fig 6).
/// `None` = survives beyond the horizon.
pub fn sample_revocation_offset(
    params: &crate::config::RevocationParams,
    rng: &mut Rng,
) -> Option<SimDuration> {
    let roll = rng.f64();
    if roll < params.p_ttl {
        // Default TTL (Discord): the link dies exactly ttl_days after it
        // was minted, which for a link tweeted out is its share time.
        return Some(SimDuration::secs(
            (params.ttl_days * SECS_PER_DAY as f64) as u64,
        ));
    }
    if roll < params.p_ttl + params.p_instant {
        let exp = Exponential::new(1.0 / params.instant_mean_days.max(1e-6));
        return Some(SimDuration::secs(
            (exp.sample(rng) * SECS_PER_DAY as f64) as u64,
        ));
    }
    if roll < params.p_ttl + params.p_instant + params.p_slow {
        let exp = Exponential::new(1.0 / params.slow_mean_days.max(1e-6));
        return Some(SimDuration::secs(
            (exp.sample(rng) * SECS_PER_DAY as f64) as u64,
        ));
    }
    None
}

/// Build a group's daily size timeline covering the pre-window lead-in and
/// the whole study window. `median_boost` scales the initial-size median
/// (Telegram broadcast channels are an order of magnitude larger than
/// ordinary groups — they are what pushes Fig 7a's Telegram tail out).
pub fn sample_size_timeline(
    params: &crate::config::SizeParams,
    window: &StudyWindow,
    median_boost: f64,
    rng: &mut Rng,
) -> SizeTimeline {
    // Initial sizes stay strictly below the cap so a group first observed
    // at the limit still got there by *growing* (only ~5% of WhatsApp
    // groups sit at the 257 cap, §5).
    let initial = LogNormal::from_median(params.median * median_boost, params.sigma)
        .sample(rng)
        .round()
        .clamp(3.0, f64::from(params.cap) - 8.0) as u32;
    // Net drift direction for the whole window (Fig 7c: more groups grow
    // than shrink on every platform).
    let roll = rng.f64();
    let sign: f64 = if roll < params.p_grow {
        1.0
    } else if roll < params.p_grow + params.p_shrink {
        -1.0
    } else {
        0.0
    };
    let rate_dist = LogNormal::from_median(params.drift_median.max(1e-9), params.drift_sigma);
    let days = (PRE_WINDOW_DAYS as usize) + window.num_days() as usize + 1;
    let mut sizes = Vec::with_capacity(days);
    let mut size = f64::from(initial);
    for _ in 0..days {
        sizes.push(size.round().clamp(1.0, f64::from(params.cap)) as u32);
        // Flat groups stay exactly flat (Fig 7c has a visible plateau at
        // zero growth); moving groups get their drift plus mild churn.
        // Growth saturates as a group approaches its cap (a nearly-full
        // WhatsApp group bounces joiners), so only a sliver ever sits at
        // the limit — §5 reports ~5%.
        if sign != 0.0 {
            let headroom = (1.0 - size / f64::from(params.cap)).max(0.0);
            let drift = sign * size * rate_dist.sample(rng) * headroom.min(1.0);
            let churn = (rng.f64() - 0.5) * 2.0 * (size * 0.002 + 0.5);
            size = (size + drift + churn).clamp(1.0, f64::from(params.cap));
        }
    }
    SizeTimeline::new(window.start.plus_days(-PRE_WINDOW_DAYS), sizes)
}

/// Generate all of one platform's groups (and their creator users),
/// pushing them into `platform` and returning the per-group metadata the
/// sharing generator consumes.
pub fn generate_groups(
    platform: &mut Platform,
    params: &PlatformParams,
    window: &StudyWindow,
    n_groups: u64,
    rng: &mut Rng,
) -> Vec<GroupMeta> {
    let kind = platform.kind;
    let topics = topics_for(kind);
    let topic_dist = topic_categorical(kind);
    let lang_profile = LangProfile::for_platform(kind);
    let (creator_countries, creator_country_dist) = match kind {
        PlatformKind::WhatsApp => whatsapp_creator_countries(),
        _ => generic_countries(),
    };
    let creator_model = match kind {
        PlatformKind::WhatsApp => CreatorModel::whatsapp(),
        PlatformKind::Telegram => CreatorModel::telegram(),
        PlatformKind::Discord => CreatorModel::discord(),
    };
    // Creators and their group allotments.
    let counts = creator_model.assign(n_groups as usize, rng);
    let mut creator_of_group: Vec<(UserId, CountryCode)> = Vec::with_capacity(n_groups as usize);
    for &count in &counts {
        let country = creator_countries[creator_country_dist.sample(rng)];
        let user = match kind {
            PlatformKind::WhatsApp => {
                User::whatsapp(UserId(0), PhoneNumber::allocate(country, rng))
            }
            PlatformKind::Telegram => User::telegram(
                UserId(0),
                PhoneNumber::allocate(country, rng),
                rng.chance(params.p_phone_visible),
            ),
            PlatformKind::Discord => {
                User::discord(UserId(0), sample_discord_links(params.p_linked_any, rng))
            }
        };
        let uid = platform.push_user(user);
        for _ in 0..count {
            creator_of_group.push((uid, country));
        }
    }
    // Multi-group creators should not own consecutive share slots only:
    // shuffle the group→creator mapping.
    rng.shuffle(&mut creator_of_group);

    let release = platform.spec.release.midnight();
    let mut metas = Vec::with_capacity(n_groups as usize);
    for i in 0..n_groups {
        let (creator, country) = creator_of_group[i as usize];
        // First share: uniform over the lead-in plus the window.
        let day_offset = rng.range(0, (PRE_WINDOW_DAYS + window.num_days() as i64 - 1) as u64)
            as i64
            - PRE_WINDOW_DAYS;
        let share_day = window.start.plus_days(day_offset);
        let first_share = share_day.midnight() + SimDuration::secs(rng.below(SECS_PER_DAY));
        // Staleness caps at the platform's own age.
        let max_age = (first_share - release).as_days();
        let age_days = sample_staleness_days(&params.staleness, max_age, rng);
        let created_at = if age_days == 0 {
            // Same-day: created earlier on the share day.
            let into_day = first_share.seconds_into_day();
            first_share
                .checked_sub(SimDuration::secs(rng.below(into_day.max(1))))
                .expect("same-day creation stays in day")
        } else {
            first_share
                .checked_sub(SimDuration::days(age_days))
                .unwrap_or(release)
                .max(release)
        };
        let revoked_at =
            sample_revocation_offset(&params.revocation, rng).map(|off| first_share + off);
        let chat_kind = match kind {
            PlatformKind::Discord => ChatKind::Server,
            PlatformKind::Telegram if rng.chance(params.p_channel) => ChatKind::Channel,
            _ => ChatKind::Group,
        };
        // Telegram never exposes a channel's subscriber list; group admins
        // hide theirs at a rate chosen so the overall hidden share matches
        // §3.3 (member lists visible in only 24 of 100 joined chats).
        let member_list_hidden = match chat_kind {
            ChatKind::Channel => true,
            _ => rng.chance(params.p_member_list_hidden),
        };
        let size_boost = if chat_kind == ChatKind::Channel {
            8.0
        } else {
            1.0
        };
        let topic = topic_dist.sample(rng);
        let lang = lang_profile.sample(rng);
        let mut invite = InviteCode::generate(kind, rng);
        while platform.invite_taken(&invite.code) {
            invite = InviteCode::generate(kind, rng);
        }
        let online_frac = if params.size.online_mean <= 0.0 {
            0.0
        } else {
            (params.size.online_mean + params.size.online_sd * rng.normal()).clamp(0.005, 0.95)
        };
        let sizes = sample_size_timeline(&params.size, window, size_boost, rng);
        // Message rate couples to room size: a 10x bigger room talks more
        // (sub-linearly), which drives Fig 9's sender-volume tail. The
        // ratio is against the platform's base median, so giant broadcast
        // channels land at the high rates their subscriber counts imply.
        let size_ratio = f64::from(sizes.first()).max(1.0) / params.size.median.max(1.0);
        let msgs_per_day = LogNormal::from_median(
            params.activity.msgs_per_day_median,
            params.activity.msgs_per_day_sigma,
        )
        .sample(rng)
            * size_ratio.powf(params.activity.msgs_size_exponent);
        let title = format!("{} {}", topics[topic].label, i + 1);
        let gid = platform.push_group(Group {
            id: GroupId(0),
            platform: kind,
            chat_kind,
            title,
            creator,
            created_at,
            revoked_at,
            invite,
            member_list_hidden,
            online_frac: online_frac as f32,
            sizes,
            msgs_per_day,
            activity_seed: rng.next_u64(),
            history: None,
        });
        metas.push(GroupMeta {
            id: gid,
            first_share,
            shares: sample_share_count(&params.shares, rng),
            topic,
            lang,
            country,
        });
    }
    metas
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScenarioConfig;

    fn setup(kind: PlatformKind, n: u64) -> (Platform, Vec<GroupMeta>) {
        let cfg = ScenarioConfig::paper();
        let mut platform = Platform::new(kind);
        let mut rng = Rng::new(99);
        let window = StudyWindow::paper();
        let metas = generate_groups(&mut platform, cfg.platform(kind), &window, n, &mut rng);
        (platform, metas)
    }

    #[test]
    fn generates_requested_count() {
        let (p, metas) = setup(PlatformKind::WhatsApp, 2000);
        assert_eq!(p.groups.len(), 2000);
        assert_eq!(metas.len(), 2000);
        for (i, m) in metas.iter().enumerate() {
            assert_eq!(m.id, GroupId(i as u32));
        }
    }

    #[test]
    fn whatsapp_staleness_mostly_same_day() {
        let (p, metas) = setup(PlatformKind::WhatsApp, 4000);
        let same_day = metas
            .iter()
            .filter(|m| p.group(m.id).created_at.date() == m.first_share.date())
            .count() as f64
            / metas.len() as f64;
        assert!((same_day - 0.76).abs() < 0.04, "same-day {same_day}");
        let over_year = metas
            .iter()
            .filter(|m| p.group(m.id).age_days(m.first_share) > 365)
            .count() as f64
            / metas.len() as f64;
        assert!((over_year - 0.10).abs() < 0.04, "over-year {over_year}");
    }

    #[test]
    fn telegram_staleness_older() {
        let (p, metas) = setup(PlatformKind::Telegram, 4000);
        let over_year = metas
            .iter()
            .filter(|m| p.group(m.id).age_days(m.first_share) > 365)
            .count() as f64
            / metas.len() as f64;
        assert!((over_year - 0.29).abs() < 0.05, "over-year {over_year}");
    }

    #[test]
    fn creation_never_precedes_platform_release() {
        for kind in PlatformKind::ALL {
            let (p, _) = setup(kind, 1500);
            let release = p.spec.release.midnight();
            for g in &p.groups {
                assert!(
                    g.created_at >= release,
                    "{kind}: {} < release",
                    g.created_at
                );
            }
        }
    }

    #[test]
    fn revocation_never_precedes_first_share() {
        let (p, metas) = setup(PlatformKind::Discord, 2000);
        for m in &metas {
            if let Some(r) = p.group(m.id).revoked_at {
                assert!(r >= m.first_share);
            }
        }
    }

    #[test]
    fn discord_invites_mostly_die_within_hours() {
        let (p, metas) = setup(PlatformKind::Discord, 4000);
        let dead_fast = metas
            .iter()
            .filter(|m| {
                p.group(m.id)
                    .revoked_at
                    .is_some_and(|r| (r - m.first_share).as_secs() <= 86_400)
            })
            .count() as f64
            / metas.len() as f64;
        // p_instant (0.64, mean ~4h) plus the 1-day-TTL sliver.
        assert!(
            (dead_fast - 0.66).abs() < 0.04,
            "dead within a day: {dead_fast}"
        );
        let total_revoked = metas
            .iter()
            .filter(|m| p.group(m.id).revoked_at.is_some())
            .count() as f64
            / metas.len() as f64;
        assert!(
            (total_revoked - 0.68).abs() < 0.04,
            "revoked {total_revoked}"
        );
    }

    #[test]
    fn whatsapp_sizes_capped_at_257() {
        let (p, _) = setup(PlatformKind::WhatsApp, 2000);
        let t = StudyWindow::paper().end_time();
        let mut near_cap = 0;
        for g in &p.groups {
            assert!(g.size_at(t) <= 257);
            if g.size_at(t) >= 248 {
                near_cap += 1;
            }
        }
        // §5: only ~5% of WhatsApp groups reach the limit; growth
        // saturation keeps the pile-up at the cap small.
        let cap_share = f64::from(near_cap) / 2000.0;
        assert!((0.005..0.15).contains(&cap_share), "cap share {cap_share}");
    }

    #[test]
    fn share_counts_heavy_tailed() {
        let cfg = ScenarioConfig::paper();
        let mut rng = Rng::new(5);
        let params = &cfg.platform(PlatformKind::Telegram).shares;
        let n = 40_000;
        let counts: Vec<u32> = (0..n)
            .map(|_| sample_share_count(params, &mut rng))
            .collect();
        let once = counts.iter().filter(|&&c| c == 1).count() as f64 / n as f64;
        assert!((once - 0.50).abs() < 0.02, "share-once {once}");
        let mean = counts.iter().map(|&c| f64::from(c)).sum::<f64>() / n as f64;
        // Telegram's paper mean is 15.7 tweets/URL; the truncated Pareto
        // fit is noisy, so accept a broad band.
        assert!((8.0..=25.0).contains(&mean), "mean shares {mean}");
        assert!(counts.iter().any(|&c| c > 1000), "tail should reach 1000+");
    }

    #[test]
    fn telegram_channel_and_hidden_list_rates() {
        let (p, _) = setup(PlatformKind::Telegram, 4000);
        let channels = p
            .groups
            .iter()
            .filter(|g| g.chat_kind == ChatKind::Channel)
            .count() as f64
            / 4000.0;
        assert!((channels - 0.35).abs() < 0.03, "channels {channels}");
        let hidden = p.groups.iter().filter(|g| g.member_list_hidden).count() as f64 / 4000.0;
        assert!((hidden - 0.76).abs() < 0.03, "hidden {hidden}");
    }

    #[test]
    fn online_fraction_by_platform() {
        let (wa, _) = setup(PlatformKind::WhatsApp, 500);
        assert!(wa.groups.iter().all(|g| g.online_frac == 0.0));
        let (dc, _) = setup(PlatformKind::Discord, 2000);
        let over_half = dc.groups.iter().filter(|g| g.online_frac > 0.5).count() as f64 / 2000.0;
        assert!(
            (0.05..=0.25).contains(&over_half),
            "DC >50% online: {over_half}"
        );
        let (tg, _) = setup(PlatformKind::Telegram, 2000);
        let tg_over_half = tg.groups.iter().filter(|g| g.online_frac > 0.5).count();
        assert!(tg_over_half < 20, "TG >50% online: {tg_over_half}");
    }

    #[test]
    fn growth_direction_mix() {
        let (p, _) = setup(PlatformKind::Discord, 3000);
        let w = StudyWindow::paper();
        let (mut grew, mut shrank) = (0, 0);
        for g in &p.groups {
            let first = g.sizes.size_on(w.start);
            let last = g.sizes.size_on(w.end);
            if last > first {
                grew += 1;
            } else if last < first {
                shrank += 1;
            }
        }
        let grew = f64::from(grew) / 3000.0;
        let shrank = f64::from(shrank) / 3000.0;
        assert!((grew - 0.54).abs() < 0.12, "grew {grew}");
        assert!((shrank - 0.19).abs() < 0.12, "shrank {shrank}");
        assert!(grew > shrank);
    }

    #[test]
    fn first_share_spans_leadin_and_window() {
        let (_, metas) = setup(PlatformKind::Telegram, 3000);
        let w = StudyWindow::paper();
        let before = metas
            .iter()
            .filter(|m| m.first_share < w.start_time())
            .count();
        let within = metas.iter().filter(|m| w.contains(m.first_share)).count();
        assert!(before > 0, "some shares pre-window (7-day search horizon)");
        assert!(within > before * 3, "most shares inside the window");
        assert!(metas.iter().all(|m| m.first_share < w.end_time()));
    }
}
