//! Population models: group creators, phone-number countries, Discord
//! connected accounts, and tweet-author pools.

use chatlens_platforms::phone::{country_by_iso, CountryCode, COUNTRIES};
use chatlens_platforms::user::LinkedPlatform;
use chatlens_simnet::dist::Categorical;
use chatlens_simnet::rng::Rng;

/// WhatsApp group-creator country weights (§5, "Group Countries"): Brazil
/// 7,718 groups, Nigeria 4,719, Indonesia 3,430, India 2,731, Saudi Arabia
/// 2,574, Mexico 2,081, Argentina 1,366, remainder spread across the rest
/// of the table.
pub fn whatsapp_creator_countries() -> (Vec<CountryCode>, Categorical) {
    let named: [(&str, f64); 7] = [
        ("BR", 7_718.0),
        ("NG", 4_719.0),
        ("ID", 3_430.0),
        ("IN", 2_731.0),
        ("SA", 2_574.0),
        ("MX", 2_081.0),
        ("AR", 1_366.0),
    ];
    let named_total: f64 = named.iter().map(|(_, w)| w).sum();
    // 34,078 creators total; the rest spread over the remaining countries.
    let remainder = 34_078.0 - named_total;
    let mut countries = Vec::new();
    let mut weights = Vec::new();
    for (iso, w) in named {
        countries.push(country_by_iso(iso).expect("country in table"));
        weights.push(w);
    }
    let others: Vec<CountryCode> = COUNTRIES
        .iter()
        .copied()
        .filter(|c| !named.iter().any(|(iso, _)| *iso == c.iso))
        .collect();
    let per_other = remainder / others.len() as f64;
    for c in others {
        countries.push(c);
        weights.push(per_other);
    }
    (countries, Categorical::new(&weights))
}

/// A generic member-country sampler (uniform-ish with a mild tilt toward
/// the big WhatsApp markets) for platforms where the paper reports no
/// country distribution.
pub fn generic_countries() -> (Vec<CountryCode>, Categorical) {
    let countries: Vec<CountryCode> = COUNTRIES.to_vec();
    let weights: Vec<f64> = countries
        .iter()
        .map(|c| match c.iso {
            "BR" | "IN" | "ID" | "US" => 2.0,
            _ => 1.0,
        })
        .collect();
    (countries, Categorical::new(&weights))
}

/// How many groups each creator creates (§5, "Group Creators"): the vast
/// majority create one (92.7% on WhatsApp, 95.9% on Discord), a few create
/// two to four, and a thin tail creates dozens (61 was the Discord max).
///
/// `p_single` and `p_few` are tuned per platform so that
/// `groups / distinct creators` lands near the paper's ratio.
#[derive(Debug, Clone, Copy)]
pub struct CreatorModel {
    /// Fraction of creators with exactly one group.
    pub p_single: f64,
    /// Fraction with 2–4 groups (uniform).
    pub p_few: f64,
    /// The rest create 5–`max_groups` (log-spaced heavy tail).
    pub max_groups: u32,
}

impl CreatorModel {
    /// WhatsApp's creator model (92.7% single; ratio 45,718/34,078 ≈ 1.34).
    pub fn whatsapp() -> CreatorModel {
        CreatorModel {
            p_single: 0.927,
            p_few: 0.053,
            max_groups: 28,
        }
    }

    /// Discord's creator model (95.9% single, but a heavier far tail —
    /// one user created 61 groups).
    pub fn discord() -> CreatorModel {
        CreatorModel {
            p_single: 0.927,
            p_few: 0.045,
            max_groups: 61,
        }
    }

    /// Telegram: creator info is only known for joined groups, each of
    /// which had a distinct creator (§5).
    pub fn telegram() -> CreatorModel {
        CreatorModel {
            p_single: 1.0,
            p_few: 0.0,
            max_groups: 1,
        }
    }

    /// Sample one creator's group count.
    pub fn sample(&self, rng: &mut Rng) -> u32 {
        let roll = rng.f64();
        if roll < self.p_single {
            1
        } else if roll < self.p_single + self.p_few {
            rng.range(2, 4) as u32
        } else {
            // Log-uniform between 5 and max: dense near 5, thin near max.
            let lo = 5.0f64.ln();
            let hi = f64::from(self.max_groups.max(5)).ln();
            (lo + rng.f64() * (hi - lo)).exp().round() as u32
        }
    }

    /// Produce per-creator group counts covering exactly `n_groups`
    /// groups; the final creator's count is truncated to fit.
    pub fn assign(&self, n_groups: usize, rng: &mut Rng) -> Vec<u32> {
        let mut counts = Vec::new();
        let mut covered = 0usize;
        while covered < n_groups {
            let k = self.sample(rng).min((n_groups - covered) as u32);
            counts.push(k);
            covered += k as usize;
        }
        counts
    }
}

/// Conditional per-platform link rates for Discord users who have at least
/// one connected account, derived from Table 5 (each rate divided by the
/// 30% any-link rate), in [`LinkedPlatform::ALL`] order.
pub const LINK_RATES_GIVEN_ANY: [f64; 11] = [
    0.204 / 0.30, // Twitch
    0.122 / 0.30, // Steam
    0.089 / 0.30, // Twitter
    0.080 / 0.30, // Spotify
    0.066 / 0.30, // YouTube
    0.052 / 0.30, // Battlenet
    0.037 / 0.30, // Xbox
    0.030 / 0.30, // Reddit
    0.024 / 0.30, // League of Legends
    0.006 / 0.30, // Skype
    0.005 / 0.30, // Facebook
];

/// Sample a Discord user's connected accounts: with probability `p_any`
/// the user has >= 1 link, each platform drawn independently at its
/// conditional rate (with a weighted fallback so "has links" users never
/// end up with zero).
pub fn sample_discord_links(p_any: f64, rng: &mut Rng) -> Vec<LinkedPlatform> {
    if !rng.chance(p_any) {
        return Vec::new();
    }
    let mut links: Vec<LinkedPlatform> = LinkedPlatform::ALL
        .into_iter()
        .zip(LINK_RATES_GIVEN_ANY)
        .filter(|&(_, rate)| rng.chance(rate))
        .map(|(p, _)| p)
        .collect();
    if links.is_empty() {
        // Conditional draw came up empty: fall back to one link weighted
        // by the conditional rates.
        let dist = Categorical::new(&LINK_RATES_GIVEN_ANY);
        links.push(LinkedPlatform::ALL[dist.sample(rng)]);
    }
    links
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whatsapp_countries_brazil_leads() {
        let (countries, dist) = whatsapp_creator_countries();
        let mut rng = Rng::new(1);
        let mut br = 0;
        let mut ng = 0;
        let n = 50_000;
        for _ in 0..n {
            match countries[dist.sample(&mut rng)].iso {
                "BR" => br += 1,
                "NG" => ng += 1,
                _ => {}
            }
        }
        let br_share = f64::from(br) / f64::from(n);
        let ng_share = f64::from(ng) / f64::from(n);
        assert!(
            (br_share - 7_718.0 / 34_078.0).abs() < 0.01,
            "BR {br_share}"
        );
        assert!(
            (ng_share - 4_719.0 / 34_078.0).abs() < 0.01,
            "NG {ng_share}"
        );
    }

    #[test]
    fn creator_assign_covers_exactly() {
        let mut rng = Rng::new(2);
        for model in [CreatorModel::whatsapp(), CreatorModel::discord()] {
            let counts = model.assign(10_000, &mut rng);
            assert_eq!(counts.iter().map(|&c| c as usize).sum::<usize>(), 10_000);
            assert!(counts.iter().all(|&c| c >= 1));
        }
    }

    #[test]
    fn whatsapp_creator_ratio_near_paper() {
        let mut rng = Rng::new(3);
        let counts = CreatorModel::whatsapp().assign(45_718, &mut rng);
        let ratio = 45_718.0 / counts.len() as f64;
        // Paper: 45,718 groups / 34,078 creators = 1.34.
        assert!((ratio - 1.34).abs() < 0.15, "ratio {ratio}");
        let single = counts.iter().filter(|&&c| c == 1).count() as f64 / counts.len() as f64;
        assert!((single - 0.927).abs() < 0.02, "single share {single}");
        assert!(counts.iter().all(|&c| c <= 28));
    }

    #[test]
    fn telegram_creators_all_single() {
        let mut rng = Rng::new(4);
        let counts = CreatorModel::telegram().assign(100, &mut rng);
        assert_eq!(counts.len(), 100);
        assert!(counts.iter().all(|&c| c == 1));
    }

    #[test]
    fn discord_links_rates() {
        let mut rng = Rng::new(5);
        let n = 100_000;
        let mut any = 0u32;
        let mut twitch = 0u32;
        let mut facebook = 0u32;
        for _ in 0..n {
            let links = sample_discord_links(0.30, &mut rng);
            if !links.is_empty() {
                any += 1;
            }
            if links.contains(&LinkedPlatform::Twitch) {
                twitch += 1;
            }
            if links.contains(&LinkedPlatform::Facebook) {
                facebook += 1;
            }
        }
        let any_rate = f64::from(any) / f64::from(n);
        assert!((any_rate - 0.30).abs() < 0.01, "any {any_rate}");
        let twitch_rate = f64::from(twitch) / f64::from(n);
        assert!((twitch_rate - 0.204).abs() < 0.02, "twitch {twitch_rate}");
        let fb_rate = f64::from(facebook) / f64::from(n);
        assert!(fb_rate < 0.02, "facebook {fb_rate}");
    }

    #[test]
    fn linked_users_always_have_at_least_one() {
        let mut rng = Rng::new(6);
        for _ in 0..10_000 {
            let links = sample_discord_links(1.0, &mut rng);
            assert!(!links.is_empty());
        }
    }

    #[test]
    fn no_links_when_p_zero() {
        let mut rng = Rng::new(7);
        for _ in 0..100 {
            assert!(sample_discord_links(0.0, &mut rng).is_empty());
        }
    }
}
